"""Parallel window and nearest-neighbour queries on the SVM machine.

The paper closes with: "we want to integrate the spatial join in a larger
framework for parallel spatial query processing where also other
operations such as neighbor and window queries are efficiently supported"
(section 5).  This module builds that framework piece with the same
machinery as the parallel join:

* **task creation** — the subtrees under root entries qualifying for the
  query, ordered by the local plane-sweep order (window queries) or by
  minimum distance (nearest-neighbour queries);
* **dynamic task assignment** — a shared FCFS queue, the join's winner;
* **task execution** — each simulated processor traverses its subtrees
  through its path buffer, LRU buffer, optionally the SVM global buffer,
  and the shared disk array.

For k-nearest-neighbour queries the processors share a *pruning bound*
(the distance of the k-th best candidate so far) through shared virtual
memory: updates are latched and charged the synchronisation cost, reads
are free — the SVM advantage the paper's architecture discussion is about.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..buffer.global_buffer import GlobalDirectory
from ..buffer.local import ProcessorBufferManager
from ..geometry.rect import Rect
from ..rtree.entry import Entry
from ..rtree.node import Node
from ..rtree.pagestore import PageStore
from ..sim.engine import Environment
from ..sim.machine import KSR1_CONFIG, Machine, MachineConfig
from ..sim.metrics import ProcessorTimes
from ..sim.resources import Lock, Store
from ..storage.disk import DEFAULT_DISK, DiskParams
from ..storage.diskarray import DiskArray

__all__ = [
    "ParallelQueryConfig",
    "ParallelQueryResult",
    "parallel_window_query",
    "parallel_knn",
    "prepare_tree",
]


@dataclass(frozen=True)
class ParallelQueryConfig:
    """Machine setup for one parallel query run."""

    processors: int = 8
    disks: int = 8
    total_buffer_pages: int = 800
    use_global_buffer: bool = True
    machine: MachineConfig = KSR1_CONFIG
    disk_params: DiskParams = DEFAULT_DISK


@dataclass
class ParallelQueryResult:
    """Entries found, plus the usual machine measurements."""

    entries_by_processor: list[list[Entry]]
    metrics: object
    times: ProcessorTimes

    @property
    def entries(self) -> list[Entry]:
        return [e for chunk in self.entries_by_processor for e in chunk]

    def oid_set(self) -> set:
        return {e.oid for e in self.entries}

    @property
    def disk_accesses(self) -> int:
        return self.metrics.disk_accesses

    @property
    def response_time(self) -> float:
        return self.times.response_time


def prepare_tree(tree) -> PageStore:
    """Sort node entries and paginate a single tree (tree id 0)."""
    page_store = PageStore()
    for node in tree.nodes():
        node.sort_entries_by_xl()
    page_store.add_tree(0, tree)
    return page_store


class _QueryRun:
    """Shared plumbing of window and kNN runs."""

    def __init__(self, tree, config: ParallelQueryConfig, page_store: Optional[PageStore]):
        if config.processors < 1:
            raise ValueError("need at least one processor")
        self.tree = tree
        self.config = config
        self.env = Environment()
        self.machine = Machine(self.env, config.machine)
        self.metrics = self.machine.metrics
        self.disks = DiskArray(self.env, config.disks, config.disk_params, self.metrics)
        self.store = page_store or prepare_tree(tree)
        directory = (
            GlobalDirectory(self.machine) if config.use_global_buffer else None
        )
        per_processor = max(1, config.total_buffer_pages // config.processors)
        self.managers = [
            ProcessorBufferManager(
                proc_id=p,
                machine=self.machine,
                disk_array=self.disks,
                lru_capacity=per_processor,
                tree_heights=self.store.tree_heights(),
                directory=directory,
            )
            for p in range(config.processors)
        ]
        self.queue = Store(self.env, name="query-tasks")
        self.times = ProcessorTimes(config.processors)
        self.entries_by_processor: list[list[Entry]] = [
            [] for _ in range(config.processors)
        ]

    def access(self, p: int, node: Node) -> Generator:
        yield from self.managers[p].access(
            0, self.store.depth(0, node), node.page_id, self.store.kind(node.page_id)
        )

    def run(self, processor_body) -> ParallelQueryResult:
        for p in range(self.config.processors):
            self.env.process(processor_body(p), name=f"Q{p}")
        self.env.run()
        return ParallelQueryResult(
            entries_by_processor=self.entries_by_processor,
            metrics=self.metrics,
            times=self.times,
        )


# ------------------------------------------------------------- window query
def parallel_window_query(
    tree,
    window: Rect,
    config: ParallelQueryConfig,
    page_store: Optional[PageStore] = None,
) -> ParallelQueryResult:
    """All data entries intersecting *window*, computed in parallel.

    Subtrees under qualifying root entries are the tasks; a shared dynamic
    queue feeds them to the processors in plane-sweep order.
    """
    run = _QueryRun(tree, config, page_store)
    if tree.size > 0:
        root = tree.root
        if root.is_leaf:
            tasks = [root]
        else:
            # xl-sorted entries => plane-sweep task order; descend a level
            # while there are fewer subtrees than processors (the join's
            # task-creation rule, section 3.1).  Pages skipped by the
            # descent were inspected during task creation, like the join's.
            tasks = [e.child for e in root.entries if e.intersects(window)]
            while (
                tasks
                and len(tasks) < config.processors
                and not tasks[0].is_leaf
            ):
                tasks = [
                    entry.child
                    for node in tasks
                    for entry in node.entries
                    if entry.intersects(window)
                ]
        for task in tasks:
            run.queue.put(task)
    run.queue.close()
    cpu_test = run.config.machine.cpu_rect_test_time

    def processor(p: int) -> Generator:
        # The root page itself is inspected by every processor (it holds
        # the task entries); charge one access each, like the join does
        # implicitly via task creation on processor 0.
        if tree.size > 0 and not tree.root.is_leaf:
            yield from run.access(p, tree.root)
        while True:
            subtree = yield run.queue.get()
            if subtree is None:
                break
            started = run.env.now
            stack = [subtree]
            while stack:
                node = stack.pop()
                yield from run.access(p, node)
                tests = len(node.entries)
                yield run.env.timeout(tests * cpu_test)
                if node.is_leaf:
                    for entry in node.entries:
                        if entry.intersects(window):
                            run.entries_by_processor[p].append(entry)
                else:
                    for entry in reversed(node.entries):
                        if entry.intersects(window):
                            stack.append(entry.child)
            run.times.busy[p] += run.env.now - started
            run.times.finish[p] = run.env.now
        return None

    return run.run(processor)


# ---------------------------------------------------------------------- kNN
def parallel_knn(
    tree,
    x: float,
    y: float,
    k: int,
    config: ParallelQueryConfig,
    page_store: Optional[PageStore] = None,
) -> ParallelQueryResult:
    """The k nearest data entries to ``(x, y)``, computed in parallel.

    Each subtree task runs a best-first search pruned by a *shared* bound:
    the k-th best distance found by anyone so far.  Bound updates go
    through an SVM latch (synchronisation cost); reads are free.  The
    final merge keeps the global k best, so the result equals the
    sequential :func:`repro.rtree.query.nearest_neighbors`.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    run = _QueryRun(tree, config, page_store)
    if tree.size > 0:
        root = tree.root
        if root.is_leaf:
            run.queue.put(root)
        else:
            children = sorted(
                root.entries, key=lambda e: _distance(e, x, y)
            )
            for entry in children:
                run.queue.put(entry.child)
    run.queue.close()

    # Shared pruning state: the k best (distance, sequence, entry) found
    # anywhere, plus the latch guarding updates.
    best: list[tuple[float, int, Entry]] = []  # max-heap via negated dist
    latch = Lock(run.env, name="knn-bound")
    counter = [0]
    cpu_test = run.config.machine.cpu_rect_test_time
    sync = run.config.machine.sync_time

    def bound() -> float:
        if len(best) < k:
            return float("inf")
        return -best[0][0]

    def offer(entry: Entry, distance: float) -> Generator:
        """Insert a candidate into the shared top-k under the latch."""
        yield latch.acquire()
        try:
            yield run.env.timeout(sync)
            if len(best) < k:
                heapq.heappush(best, (-distance, counter[0], entry))
                counter[0] += 1
            elif distance < -best[0][0]:
                heapq.heapreplace(best, (-distance, counter[0], entry))
                counter[0] += 1
        finally:
            latch.release()

    def processor(p: int) -> Generator:
        if tree.size > 0 and not tree.root.is_leaf:
            yield from run.access(p, tree.root)
        while True:
            subtree = yield run.queue.get()
            if subtree is None:
                break
            started = run.env.now
            heap: list[tuple[float, int, Node]] = [(0.0, 0, subtree)]
            tiebreak = 1
            while heap:
                node_distance, _, node = heapq.heappop(heap)
                if node_distance > bound():
                    continue  # pruned by the shared bound (free SVM read)
                yield from run.access(p, node)
                yield run.env.timeout(len(node.entries) * cpu_test)
                if node.is_leaf:
                    for entry in node.entries:
                        distance = _distance(entry, x, y)
                        if distance <= bound():
                            yield from offer(entry, distance)
                else:
                    for entry in node.entries:
                        distance = _distance(entry, x, y)
                        if distance <= bound():
                            heapq.heappush(heap, (distance, tiebreak, entry.child))
                            tiebreak += 1
            run.times.busy[p] += run.env.now - started
            run.times.finish[p] = run.env.now
        return None

    result = run.run(processor)
    # Deterministic global top-k: ascending distance, insertion order ties.
    ordered = sorted(best, key=lambda item: (-item[0], item[1]))
    result.entries_by_processor = [[entry for _, _, entry in ordered]]
    return result


def _distance(item, x: float, y: float) -> float:
    dx = max(item.xl - x, x - item.xu, 0.0)
    dy = max(item.yl - y, y - item.yu, 0.0)
    return (dx * dx + dy * dy) ** 0.5
