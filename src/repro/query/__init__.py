"""Parallel spatial query processing beyond the join (paper future work)."""

from .batch import multi_window_query
from .parallel import (
    ParallelQueryConfig,
    ParallelQueryResult,
    parallel_knn,
    parallel_window_query,
    prepare_tree,
)

__all__ = [
    "ParallelQueryConfig",
    "ParallelQueryResult",
    "parallel_window_query",
    "parallel_knn",
    "prepare_tree",
    "multi_window_query",
]
