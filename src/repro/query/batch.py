"""Shared-traversal evaluation of a *batch* of window queries.

The serving engine's micro-batcher (:mod:`repro.service.batcher`) coalesces
window queries that arrive close together in time; this module supplies the
execution side: **one** R*-tree traversal answers the whole batch.  At each
directory node the batch is narrowed to the windows that intersect the
node's entries, so subtrees relevant to no window are pruned once for the
entire batch and directory pages shared by several windows are inspected
once instead of once per query — the page-sharing effect the paper's
global buffer achieves across processors, obtained here across queries.
"""

from __future__ import annotations

from typing import Sequence

from ..rtree.entry import Entry

__all__ = ["multi_window_query"]


def multi_window_query(tree, windows: Sequence) -> list[list[Entry]]:
    """Answer all *windows* against *tree* in a single traversal.

    Returns one entry list per window, positionally aligned with the
    input.  Each list equals what :func:`repro.rtree.query.window_query`
    returns for that window alone (as a set of entries; the visit order
    may differ because the traversal is driven by the union of windows).
    """
    if hasattr(tree, "multi_window"):  # flat packed backend
        return tree.multi_window(windows)
    results: list[list[Entry]] = [[] for _ in windows]
    if not windows or tree.size == 0:
        return results
    # (node, indices of windows that may have entries under it)
    stack: list[tuple[object, list[int]]] = [
        (tree.root, list(range(len(windows))))
    ]
    while stack:
        node, active = stack.pop()
        if node.is_leaf:
            for entry in node.entries:
                for index in active:
                    if entry.intersects(windows[index]):
                        results[index].append(entry)
        else:
            for entry in node.entries:
                surviving = [
                    index for index in active if entry.intersects(windows[index])
                ]
                if surviving:
                    stack.append((entry.child, surviving))
    return results
