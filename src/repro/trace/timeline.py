"""Compact text rendering of an event stream for debugging.

:func:`render_timeline` turns a list of events into an aligned, filterable
text timeline; :func:`steal_timeline` pre-filters to the reassignment
events (the "who helped whom, when" view of the paper's section 3.4).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .events import EventKind, TraceEvent

__all__ = ["render_timeline", "steal_timeline", "format_event"]

#: The reassignment story: requests, takes, grants, denials, buddies.
STEAL_KINDS = (
    EventKind.STEAL_REQUESTED,
    EventKind.STEAL_TAKE,
    EventKind.STEAL_GRANTED,
    EventKind.STEAL_DENIED,
    EventKind.BUDDY_FORMED,
)


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_event(event: TraceEvent) -> str:
    """One aligned timeline line for *event*."""
    proc = f"P{event.proc}" if event.proc >= 0 else "--"
    payload = " ".join(
        f"{key}={_format_value(value)}" for key, value in event.data.items()
    )
    return (
        f"{event.time:>12.6f}  {proc:<4} {event.kind.value:<16} {payload}"
    ).rstrip()


def render_timeline(
    events: Iterable[TraceEvent],
    *,
    kinds: Optional[Sequence[EventKind]] = None,
    procs: Optional[Sequence[int]] = None,
    start: float = float("-inf"),
    end: float = float("inf"),
    limit: Optional[int] = None,
) -> str:
    """Render *events* as text, optionally filtered.

    ``kinds``/``procs`` restrict to those event kinds / processors,
    ``start``/``end`` to a simulated-time window, ``limit`` to the first
    *limit* matching lines (a trailing ellipsis line reports the cut).
    """
    kind_set = set(kinds) if kinds is not None else None
    proc_set = set(procs) if procs is not None else None
    lines: list[str] = []
    skipped = 0
    for event in events:
        if kind_set is not None and event.kind not in kind_set:
            continue
        if proc_set is not None and event.proc not in proc_set:
            continue
        if not (start <= event.time <= end):
            continue
        if limit is not None and len(lines) >= limit:
            skipped += 1
            continue
        lines.append(format_event(event))
    if skipped:
        lines.append(f"... {skipped} more event(s) suppressed")
    return "\n".join(lines)


def steal_timeline(events: Iterable[TraceEvent], **kwargs) -> str:
    """The reassignment subset of the timeline (steals and buddies)."""
    return render_timeline(events, kinds=STEAL_KINDS, **kwargs)
