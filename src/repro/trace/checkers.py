"""Invariant checkers over the simulation event stream.

Each checker is an event sink (so it can run online during a simulation)
that accumulates violations and renders a final :class:`Verdict`.  The
four lawfulness properties the paper's measurements silently rely on:

* :class:`TaskConservationChecker` — every pair of subtrees created during
  the join is executed **exactly once**, by exactly one processor, and the
  executing processor actually owned the pair at the time; nothing is
  still pending when the run ends.
* :class:`StealSoundnessChecker` — stolen pairs leave the victim and
  arrive at the thief (no duplication, no loss in transit); the stolen
  level respects the configured :class:`~repro.join.reassign.ReassignLevel`;
  with reassignment off, no steal happens at all.
* :class:`BufferCoherenceChecker` — a local LRU hit names a page that was
  resident in that processor's buffer; a remote (global-buffer) fetch
  names the processor the directory registered for the page; pages are
  registered to at most one owner at a time.
* :class:`ClockMonotonicityChecker` — simulated time never runs backwards,
  globally and per processor, and sequence numbers are strictly monotone.

Plus :class:`DiskAccountingChecker`: every disk completion matches an
enqueue, pages land on ``page_id % num_disks``, and per-disk service
intervals never overlap (each simulated disk serves one request at a
time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .events import EventKind, TraceEvent

__all__ = [
    "Verdict",
    "InvariantViolation",
    "InvariantChecker",
    "TaskConservationChecker",
    "StealSoundnessChecker",
    "BufferCoherenceChecker",
    "DiskAccountingChecker",
    "ClockMonotonicityChecker",
    "ServiceAccountingChecker",
    "ResilienceAccountingChecker",
    "ShardAccountingChecker",
    "default_checkers",
    "service_checkers",
    "run_checkers",
]

#: Cap on stored violation messages per checker (counts keep accumulating).
MAX_STORED_VIOLATIONS = 25


class InvariantViolation(AssertionError):
    """Raised by :meth:`TraceHandle.verify` when any checker failed."""


@dataclass
class Verdict:
    """Outcome of one checker over one event stream."""

    checker: str
    ok: bool
    violations: list[str] = field(default_factory=list)
    violation_count: int = 0
    stats: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        state = "ok" if self.ok else f"{self.violation_count} violations"
        inner = ", ".join(f"{k}={v}" for k, v in self.stats.items())
        return f"{self.checker}: {state}" + (f" ({inner})" if inner else "")

    def __repr__(self) -> str:
        return f"<Verdict {self.summary()}>"


class InvariantChecker:
    """Base class: an event sink with a verdict."""

    name = "invariant"

    def __init__(self) -> None:
        self.violations: list[str] = []
        self.violation_count = 0
        self.events_seen = 0

    # -- sink protocol -------------------------------------------------------
    def handle(self, event: TraceEvent) -> None:
        self.events_seen += 1
        self.observe(event)

    def observe(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def _violate(self, message: str) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_STORED_VIOLATIONS:
            self.violations.append(message)

    # -- verdict -------------------------------------------------------------
    def finish(self) -> Verdict:
        self.at_end()
        return Verdict(
            checker=self.name,
            ok=self.violation_count == 0,
            violations=list(self.violations),
            violation_count=self.violation_count,
            stats=self.stats(),
        )

    def at_end(self) -> None:
        """Final checks once the stream is complete (override as needed)."""

    def stats(self) -> dict[str, int]:
        return {"events": self.events_seen}


def _pair_key(event: TraceEvent) -> tuple[int, int]:
    return (event.data["r"], event.data["s"])


class TaskConservationChecker(InvariantChecker):
    """Created-exactly-once, executed-exactly-once pair accounting.

    Tracks a small state machine per pair key ``(r_page, s_page)``:
    ``resident(owner) -> dequeued(owner) -> executing(owner) -> done``
    with a ``transit(victim -> thief)`` detour while a steal is in flight.
    """

    name = "task-conservation"

    def __init__(self) -> None:
        super().__init__()
        self._state: dict[tuple[int, int], tuple[str, int]] = {}
        self._executions: dict[tuple[int, int], int] = {}
        self._task_keys: set[tuple[int, int]] = set()
        self._created = 0

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind is EventKind.TASK_CREATED:
            self._task_keys.add(_pair_key(event))
            return
        if kind is EventKind.PAIR_ENQUEUED:
            self._on_enqueue(event)
        elif kind is EventKind.STEAL_TAKE:
            self._on_take(event)
        elif kind is EventKind.PAIR_DEQUEUED:
            self._expect(event, "resident", "dequeued")
        elif kind is EventKind.EXEC_START:
            key = _pair_key(event)
            self._executions[key] = self._executions.get(key, 0) + 1
            if self._executions[key] > 1:
                self._violate(
                    f"pair {key} executed {self._executions[key]} times "
                    f"(second time on P{event.proc} at t={event.time:.6f})"
                )
            self._expect(event, "dequeued", "executing")
        elif kind is EventKind.EXEC_END:
            self._expect(event, "executing", "done")

    def _on_enqueue(self, event: TraceEvent) -> None:
        key = _pair_key(event)
        state = self._state.get(key)
        if state is None:
            self._created += 1
        elif state[0] == "transit":
            if state[1] != event.proc:
                self._violate(
                    f"stolen pair {key} arrived at P{event.proc}, "
                    f"but was taken for P{state[1]}"
                )
        else:
            self._violate(
                f"pair {key} enqueued at P{event.proc} while already "
                f"{state[0]} (owner P{state[1]}) — duplicated work"
            )
        self._state[key] = ("resident", event.proc)

    def _on_take(self, event: TraceEvent) -> None:
        key = _pair_key(event)
        thief = event.data.get("thief", -1)
        state = self._state.get(key)
        if state is None or state[0] != "resident" or state[1] != event.proc:
            self._violate(
                f"steal took pair {key} from P{event.proc}, "
                f"but its state there was {state}"
            )
        self._state[key] = ("transit", thief)

    def _expect(self, event: TraceEvent, want: str, then: str) -> None:
        key = _pair_key(event)
        state = self._state.get(key)
        if state is None or state[0] != want or state[1] != event.proc:
            self._violate(
                f"{event.kind.value} of pair {key} on P{event.proc} "
                f"expected state ({want}, P{event.proc}), found {state}"
            )
        self._state[key] = (then, event.proc)

    def at_end(self) -> None:
        leftover = [k for k, (s, _) in self._state.items() if s != "done"]
        for key in leftover[:MAX_STORED_VIOLATIONS]:
            self._violate(
                f"pair {key} never finished (final state {self._state[key]})"
            )
        self.violation_count += max(0, len(leftover) - MAX_STORED_VIOLATIONS)
        for key in self._task_keys:
            if self._executions.get(key, 0) != 1:
                self._violate(
                    f"task pair {key} executed "
                    f"{self._executions.get(key, 0)} times (expected 1)"
                )

    def stats(self) -> dict[str, int]:
        return {
            "pairs_created": self._created,
            "pairs_executed": sum(
                1 for s, _ in self._state.values() if s == "done"
            ),
            "tasks": len(self._task_keys),
        }


class StealSoundnessChecker(InvariantChecker):
    """Steals conserve work and respect the reassignment policy."""

    name = "steal-soundness"

    def __init__(self) -> None:
        super().__init__()
        self._policy_level: Optional[str] = None
        self._task_level: Optional[int] = None
        self._transit: dict[tuple[int, int], tuple[int, int]] = {}
        self._pending: dict[tuple[int, int, int], int] = {}
        self._steals = 0
        self._pairs_moved = 0

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind is EventKind.RUN_START:
            self._policy_level = event.data.get("reassign_level")
            self._task_level = event.data.get("task_level")
        elif kind is EventKind.STEAL_TAKE:
            self._on_take(event)
        elif kind is EventKind.STEAL_GRANTED:
            self._on_granted(event)
        elif kind is EventKind.PAIR_ENQUEUED:
            key = _pair_key(event)
            expected = self._transit.pop(key, None)
            if expected is not None and expected[1] != event.proc:
                self._violate(
                    f"pair {key} stolen for P{expected[1]} "
                    f"landed on P{event.proc}"
                )

    def _on_take(self, event: TraceEvent) -> None:
        key = _pair_key(event)
        victim, thief = event.proc, event.data.get("thief", -1)
        level = event.data.get("level")
        self._pairs_moved += 1
        if self._policy_level == "none":
            self._violate(
                f"steal of pair {key} although reassignment is disabled"
            )
        elif self._policy_level == "root" and level != self._task_level:
            self._violate(
                f"steal of pair {key} at level {level}, but the policy "
                f"only allows the task level {self._task_level}"
            )
        if victim == thief:
            self._violate(f"P{thief} stole pair {key} from itself")
        if key in self._transit:
            self._violate(f"pair {key} stolen twice without arriving")
        self._transit[key] = (victim, thief)
        slot = (victim, thief, level)
        self._pending[slot] = self._pending.get(slot, 0) + 1

    def _on_granted(self, event: TraceEvent) -> None:
        self._steals += 1
        thief = event.proc
        victim = event.data.get("victim")
        level = event.data.get("level")
        count = event.data.get("count")
        slot = (victim, thief, level)
        taken = self._pending.pop(slot, 0)
        if taken != count:
            self._violate(
                f"steal grant P{victim}->P{thief} level {level} reports "
                f"{count} pairs, but {taken} were taken"
            )

    def at_end(self) -> None:
        for key, (victim, thief) in list(self._transit.items())[
            :MAX_STORED_VIOLATIONS
        ]:
            self._violate(
                f"pair {key} stolen from P{victim} for P{thief} "
                f"never arrived"
            )
        self.violation_count += max(
            0, len(self._transit) - MAX_STORED_VIOLATIONS
        )

    def stats(self) -> dict[str, int]:
        return {"steals": self._steals, "pairs_moved": self._pairs_moved}


class BufferCoherenceChecker(InvariantChecker):
    """Local hits are resident; remote fetches match the directory."""

    name = "buffer-coherence"

    def __init__(self) -> None:
        super().__init__()
        self._resident: dict[int, set[int]] = {}
        self._directory: dict[int, int] = {}
        self._lru_hits = 0
        self._remote_fetches = 0

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        data = event.data
        if kind is EventKind.BUFFER_INSERT:
            self._resident.setdefault(event.proc, set()).add(data["page"])
        elif kind is EventKind.BUFFER_EVICT:
            pages = self._resident.get(event.proc, set())
            if data["page"] not in pages:
                self._violate(
                    f"P{event.proc} evicted page {data['page']} "
                    f"it never held"
                )
            pages.discard(data["page"])
        elif kind is EventKind.BUFFER_HIT:
            if data.get("source") == "lru":
                self._lru_hits += 1
                if data["page"] not in self._resident.get(event.proc, set()):
                    self._violate(
                        f"P{event.proc} LRU hit on page {data['page']} "
                        f"that is not resident there"
                    )
        elif kind is EventKind.REMOTE_FETCH:
            self._remote_fetches += 1
            page, owner = data["page"], data["owner"]
            registered = self._directory.get(page)
            if registered != owner:
                self._violate(
                    f"P{event.proc} remote-fetched page {page} from "
                    f"P{owner}, but the directory registers "
                    f"{'nobody' if registered is None else f'P{registered}'}"
                )
            if owner == event.proc:
                self._violate(
                    f"P{event.proc} remote-fetched page {page} from itself"
                )
        elif kind is EventKind.PAGE_REGISTERED:
            page = data["page"]
            previous = self._directory.get(page)
            if previous is not None and previous != event.proc:
                self._violate(
                    f"page {page} registered to P{event.proc} while still "
                    f"registered to P{previous}"
                )
            self._directory[page] = event.proc
        elif kind is EventKind.PAGE_DEREGISTERED:
            page = data["page"]
            if self._directory.get(page) != event.proc:
                self._violate(
                    f"P{event.proc} deregistered page {page} it does "
                    f"not own in the directory"
                )
            self._directory.pop(page, None)

    def stats(self) -> dict[str, int]:
        return {
            "lru_hits": self._lru_hits,
            "remote_fetches": self._remote_fetches,
            "registered_at_end": len(self._directory),
        }


class DiskAccountingChecker(InvariantChecker):
    """Disk requests pair up, land on the right disk, and never overlap."""

    name = "disk-accounting"

    def __init__(self) -> None:
        super().__init__()
        self._num_disks: Optional[int] = None
        self._outstanding: dict[tuple[int, int, int], int] = {}
        self._busy_until: dict[int, float] = {}
        self._reads = 0

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        data = event.data
        if kind is EventKind.RUN_START:
            self._num_disks = data.get("disks")
        elif kind is EventKind.DISK_ENQUEUE:
            slot = (event.proc, data["page"], data["disk"])
            self._outstanding[slot] = self._outstanding.get(slot, 0) + 1
            if (
                self._num_disks is not None
                and data["disk"] != data["page"] % self._num_disks
            ):
                self._violate(
                    f"page {data['page']} enqueued on disk {data['disk']}, "
                    f"expected {data['page'] % self._num_disks}"
                )
        elif kind is EventKind.DISK_COMPLETE:
            self._reads += 1
            slot = (event.proc, data["page"], data["disk"])
            if self._outstanding.get(slot, 0) < 1:
                self._violate(
                    f"disk completion without enqueue: P{event.proc} "
                    f"page {data['page']} disk {data['disk']}"
                )
            else:
                self._outstanding[slot] -= 1
                if self._outstanding[slot] == 0:
                    del self._outstanding[slot]
            start = data.get("start", event.time)
            busy_until = self._busy_until.get(data["disk"], 0.0)
            if start < busy_until - 1e-12:
                self._violate(
                    f"disk {data['disk']} started serving page "
                    f"{data['page']} at {start:.6f} while busy until "
                    f"{busy_until:.6f}"
                )
            self._busy_until[data["disk"]] = event.time

    def at_end(self) -> None:
        for (proc, page, disk), count in list(self._outstanding.items())[
            :MAX_STORED_VIOLATIONS
        ]:
            self._violate(
                f"{count} disk request(s) of P{proc} for page {page} on "
                f"disk {disk} never completed"
            )
        self.violation_count += max(
            0, len(self._outstanding) - MAX_STORED_VIOLATIONS
        )

    def stats(self) -> dict[str, int]:
        return {"disk_reads": self._reads}


class ClockMonotonicityChecker(InvariantChecker):
    """Time flows forward: global and per-processor, seq strictly rises."""

    name = "clock-monotonicity"

    def __init__(self) -> None:
        super().__init__()
        self._last_time = float("-inf")
        self._last_seq = -1
        self._per_proc: dict[int, float] = {}

    def observe(self, event: TraceEvent) -> None:
        if event.seq <= self._last_seq:
            self._violate(
                f"sequence number {event.seq} after {self._last_seq}"
            )
        self._last_seq = event.seq
        if event.time < self._last_time - 1e-12:
            self._violate(
                f"global clock ran backwards: {event.time:.9f} after "
                f"{self._last_time:.9f} (event #{event.seq})"
            )
        self._last_time = max(self._last_time, event.time)
        if event.proc >= 0:
            last = self._per_proc.get(event.proc, float("-inf"))
            if event.time < last - 1e-12:
                self._violate(
                    f"P{event.proc} clock ran backwards: {event.time:.9f} "
                    f"after {last:.9f} (event #{event.seq})"
                )
            self._per_proc[event.proc] = max(last, event.time)

    def stats(self) -> dict[str, int]:
        return {"processors_seen": len(self._per_proc)}


class ServiceAccountingChecker(InvariantChecker):
    """Request and cache accounting of the serving engine (repro.service).

    Over a service trace (the ``SVC_*`` event kinds) two ledgers must
    balance:

    * **requests** — every submitted request is either admitted or
      rejected; every admitted request reaches exactly one terminal state
      (completed, timeout, cancelled, error, shed); nothing is still in
      flight when the engine stops.
    * **cache** — every lookup is a hit or a miss (``hits + misses ==
      lookups``); inserts only follow misses; evictions and expirations
      never exceed inserts; and the number of admitted cacheable requests
      matches the number of lookups, up to requests that timed out or were
      cancelled before their (synchronous) lookup ran.
    """

    name = "service_accounting"

    _TERMINAL = {
        EventKind.SVC_REQUEST_COMPLETED,
        EventKind.SVC_REQUEST_TIMEOUT,
        EventKind.SVC_REQUEST_CANCELLED,
        EventKind.SVC_REQUEST_ERROR,
        EventKind.SVC_REQUEST_SHED,
    }

    def __init__(self) -> None:
        super().__init__()
        self.submitted = 0
        self.admitted = 0
        self.admitted_cacheable = 0
        self.rejected = 0
        self.completed = 0
        self.timeouts = 0
        self.cancelled = 0
        self.errors = 0
        self.shed = 0
        self.stale_served = 0
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.inserts = 0
        self.evictions = 0
        self.expirations = 0
        self.batches = 0
        self.batched_requests = 0
        self.stopped = False

    # -- stream ---------------------------------------------------------------
    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == EventKind.SVC_REQUEST_SUBMITTED:
            self.submitted += 1
        elif kind == EventKind.SVC_REQUEST_ADMITTED:
            self.admitted += 1
            if event.data.get("cache"):
                self.admitted_cacheable += 1
        elif kind == EventKind.SVC_REQUEST_REJECTED:
            self.rejected += 1
        elif kind == EventKind.SVC_REQUEST_COMPLETED:
            self.completed += 1
            if event.data.get("stale"):
                self.stale_served += 1
        elif kind == EventKind.SVC_REQUEST_TIMEOUT:
            self.timeouts += 1
        elif kind == EventKind.SVC_REQUEST_CANCELLED:
            self.cancelled += 1
        elif kind == EventKind.SVC_REQUEST_ERROR:
            self.errors += 1
        elif kind == EventKind.SVC_REQUEST_SHED:
            self.shed += 1
        elif kind == EventKind.SVC_CACHE_HIT:
            self.hits += 1
        elif kind == EventKind.SVC_CACHE_MISS:
            self.misses += 1
        elif kind == EventKind.SVC_CACHE_STALE_HIT:
            self.stale_hits += 1
        elif kind == EventKind.SVC_CACHE_INSERT:
            self.inserts += 1
            if self.inserts > self.misses:
                self._violate(
                    f"cache insert #{self.inserts} without a preceding miss "
                    f"(misses so far: {self.misses})"
                )
        elif kind == EventKind.SVC_CACHE_EVICT:
            self.evictions += 1
        elif kind == EventKind.SVC_CACHE_EXPIRE:
            self.expirations += 1
        elif kind == EventKind.SVC_BATCH_EXECUTED:
            self.batches += 1
            size = int(event.data.get("size", 0))
            self.batched_requests += size
            if size < 1:
                self._violate(f"batch executed with size {size} < 1")
        elif kind == EventKind.SVC_ENGINE_STOP:
            self.stopped = True

    # -- final reconciliation -------------------------------------------------
    def at_end(self) -> None:
        if self.submitted != self.admitted + self.rejected:
            self._violate(
                f"submitted ({self.submitted}) != admitted ({self.admitted}) "
                f"+ rejected ({self.rejected})"
            )
        terminal = (
            self.completed + self.timeouts + self.cancelled + self.errors
            + self.shed
        )
        if self.stopped and terminal != self.admitted:
            self._violate(
                f"admitted ({self.admitted}) != terminal outcomes ({terminal}) "
                "after engine stop — requests lost or double-counted"
            )
        if self.stale_served > self.stale_hits:
            self._violate(
                f"stale responses served ({self.stale_served}) exceed stale "
                f"cache reads ({self.stale_hits})"
            )
        if self.evictions + self.expirations > self.inserts:
            self._violate(
                f"evictions ({self.evictions}) + expirations "
                f"({self.expirations}) exceed inserts ({self.inserts})"
            )
        lookups = self.hits + self.misses
        missing = self.admitted_cacheable - lookups
        # A request that timed out / was cancelled before its first
        # (synchronous) step never consulted the cache; anything else must.
        if missing < 0 or missing > self.timeouts + self.cancelled:
            self._violate(
                f"cache lookups ({lookups}) do not reconcile with admitted "
                f"cacheable requests ({self.admitted_cacheable}); "
                f"discrepancy {missing} exceeds timeouts ({self.timeouts}) "
                f"+ cancellations ({self.cancelled})"
            )

    def stats(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "shed": self.shed,
            "stale_served": self.stale_served,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_stale_hits": self.stale_hits,
            "cache_inserts": self.inserts,
            "cache_evictions": self.evictions,
            "cache_expirations": self.expirations,
            "batches": self.batches,
        }


class ResilienceAccountingChecker(InvariantChecker):
    """Every injected fault is recovered or surfaced — never silently lost.

    The fault injector emits one ``FLT_INJECT_*`` event per injection
    (parent-side, so even a hard-crashed child cannot hide one), and the
    supervision layer emits the ``SUP_*`` recovery ledger.  The two must
    reconcile:

    * every faulted worker call (``FLT_INJECT_CRASH``/``HANG``/call-keyed
      ``SLOW_IO``) is **closed**: it either completed anyway
      (``SUP_CALL_OK``), failed explicitly (``SUP_CALL_FAILED``) or was
      abandoned by a cancelled awaiter (``SUP_CALL_ABANDONED``);
    * every explicit failure of a call is **answered**: the retry layer
      either retried it (``SUP_CALL_RETRY``) or gave up on it
      (``SUP_CALL_GIVEUP``) — an unanswered failure is a request left
      hanging;
    * retries respect their deadline budget: a ``SUP_CALL_RETRY`` whose
      ``remaining_s`` is negative scheduled work past the request's
      admission timeout;
    * give-ups surface: the stream cannot contain more give-ups than
      error/timeout/cancellation outcomes (one batch give-up may surface
      as several request errors, never zero);
    * every injected page corruption is detected and repaired
      (``FLT_INJECT_CORRUPT`` == ``SUP_PAGE_CORRUPT_DETECTED`` ==
      ``SUP_PAGE_REPAIRED``, also per page id);
    * circuit-breaker transitions are lawful per class:
      closed→open, open→half-open, half-open→open|closed;
    * worker supervision is lawful: a pid reported crashed
      (``SUP_WORKER_CRASH_DETECTED``) cannot crash again unless the pid
      re-entered the pool via ``SUP_WORKER_RESPAWNED``, and the
      ``restarts`` counter carried by ``SUP_POOL_RESTARTED`` increases
      strictly monotonically per pool (the ``pool`` label; one stream
      can carry many pools — the sharded tier runs one per replica).

    On a healthy stream (no ``FLT_*``/``SUP_*`` events at all) every rule
    is vacuously satisfied, so the checker can ride on any service run.
    """

    name = "resilience-accounting"

    _CALL_FAULTS = {
        EventKind.FLT_INJECT_CRASH,
        EventKind.FLT_INJECT_HANG,
        EventKind.FLT_INJECT_SLOW_IO,
    }
    _CALL_CLOSERS = {
        EventKind.SUP_CALL_OK,
        EventKind.SUP_CALL_FAILED,
        EventKind.SUP_CALL_ABANDONED,
    }
    _BREAKER_EDGES = {
        ("closed", EventKind.SUP_BREAKER_OPEN),
        ("open", EventKind.SUP_BREAKER_HALF_OPEN),
        ("half-open", EventKind.SUP_BREAKER_OPEN),
        ("half-open", EventKind.SUP_BREAKER_CLOSED),
    }
    _BREAKER_STATE = {
        EventKind.SUP_BREAKER_OPEN: "open",
        EventKind.SUP_BREAKER_HALF_OPEN: "half-open",
        EventKind.SUP_BREAKER_CLOSED: "closed",
    }

    def __init__(self) -> None:
        super().__init__()
        self._faulted: set = set()
        self._closed: set = set()
        self._unanswered: dict = {}  # call id -> open SUP_CALL_FAILED count
        self.injected_calls = 0
        self.calls_ok = 0
        self.calls_failed = 0
        self.calls_abandoned = 0
        self.retries = 0
        self.giveups = 0
        self.corruptions = 0
        self.detections = 0
        self.repairs = 0
        self._corrupt_pages: dict = {}
        self._detected_pages: dict = {}
        self._repaired_pages: dict = {}
        self._breaker_state: dict = {}
        self.breaker_transitions = 0
        self.surfaced = 0  # error + timeout + cancellation outcomes
        self.worker_crashes = 0
        self.worker_respawns = 0
        self.pool_restarts = 0
        self._crashed_pids: set = set()
        self._last_restart_count: dict = {}  # pool label -> last counter

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        data = event.data
        if kind in self._CALL_FAULTS:
            call = data.get("call")
            if call is not None:  # disk-seam SLOW_IO is page-, not call-keyed
                self.injected_calls += 1
                self._faulted.add(call)
        elif kind in self._CALL_CLOSERS:
            call = data.get("call")
            self._closed.add(call)
            if kind is EventKind.SUP_CALL_OK:
                self.calls_ok += 1
            elif kind is EventKind.SUP_CALL_ABANDONED:
                self.calls_abandoned += 1
            else:
                self.calls_failed += 1
                self._unanswered[call] = self._unanswered.get(call, 0) + 1
        elif kind is EventKind.SUP_CALL_RETRY:
            self.retries += 1
            self._answer(data.get("call"))
            remaining = data.get("remaining_s")
            if remaining is not None and remaining < 0:
                self._violate(
                    f"retry of call {data.get('call')} scheduled with "
                    f"{remaining:.6f}s remaining — past its deadline budget"
                )
        elif kind is EventKind.SUP_CALL_GIVEUP:
            self.giveups += 1
            self._answer(data.get("call"))
        elif kind is EventKind.FLT_INJECT_CORRUPT:
            self.corruptions += 1
            page = data.get("page")
            self._corrupt_pages[page] = self._corrupt_pages.get(page, 0) + 1
        elif kind is EventKind.SUP_PAGE_CORRUPT_DETECTED:
            self.detections += 1
            page = data.get("page")
            self._detected_pages[page] = self._detected_pages.get(page, 0) + 1
        elif kind is EventKind.SUP_PAGE_REPAIRED:
            self.repairs += 1
            page = data.get("page")
            self._repaired_pages[page] = self._repaired_pages.get(page, 0) + 1
        elif kind in self._BREAKER_STATE:
            self.breaker_transitions += 1
            cls = data.get("cls", "?")
            current = self._breaker_state.get(cls, "closed")
            if (current, kind) not in self._BREAKER_EDGES:
                self._violate(
                    f"breaker[{cls}] transitioned {current} -> "
                    f"{self._BREAKER_STATE[kind]} — not a lawful edge"
                )
            self._breaker_state[cls] = self._BREAKER_STATE[kind]
        elif kind is EventKind.SUP_WORKER_CRASH_DETECTED:
            self.worker_crashes += 1
            pid = data.get("pid")
            if pid in self._crashed_pids:
                self._violate(
                    f"worker pid {pid} reported crashed twice without a "
                    f"respawn in between"
                )
            self._crashed_pids.add(pid)
        elif kind is EventKind.SUP_WORKER_RESPAWNED:
            self.worker_respawns += 1
            # Respawns carry the *new* pid; discarding handles OS pid reuse,
            # which is the only way a crashed pid can lawfully crash again.
            self._crashed_pids.discard(data.get("pid"))
        elif kind is EventKind.SUP_POOL_RESTARTED:
            self.pool_restarts += 1
            count = data.get("restarts")
            if count is not None:
                pool = data.get("pool", "")
                last = self._last_restart_count.get(pool, 0)
                if count <= last:
                    self._violate(
                        f"pool {pool!r} restart counter went {last} "
                        f"-> {count}; restarts must increase strictly"
                    )
                self._last_restart_count[pool] = count
        elif kind in (
            EventKind.SVC_REQUEST_ERROR,
            EventKind.SVC_REQUEST_TIMEOUT,
            EventKind.SVC_REQUEST_CANCELLED,
        ):
            self.surfaced += 1

    def _answer(self, call) -> None:
        open_failures = self._unanswered.get(call, 0)
        if open_failures <= 0:
            self._violate(
                f"retry/give-up for call {call} without an open "
                f"SUP_CALL_FAILED"
            )
            return
        if open_failures == 1:
            del self._unanswered[call]
        else:
            self._unanswered[call] = open_failures - 1

    def at_end(self) -> None:
        lost = sorted(
            c for c in self._faulted - self._closed if c is not None
        )
        for call in lost[:MAX_STORED_VIOLATIONS]:
            self._violate(
                f"injected fault on call {call} was never closed "
                f"(no SUP_CALL_OK/FAILED/ABANDONED) — silently lost"
            )
        self.violation_count += max(0, len(lost) - MAX_STORED_VIOLATIONS)
        unanswered = sorted(k for k in self._unanswered if k is not None)
        for call in unanswered[:MAX_STORED_VIOLATIONS]:
            self._violate(
                f"failure of call {call} never answered by a retry or "
                f"give-up"
            )
        self.violation_count += max(
            0, len(unanswered) - MAX_STORED_VIOLATIONS
        )
        if self.giveups > self.surfaced:
            self._violate(
                f"give-ups ({self.giveups}) exceed surfaced "
                f"error/timeout/cancellation outcomes ({self.surfaced}) — "
                f"a give-up vanished"
            )
        if self.detections != self.corruptions:
            self._violate(
                f"injected corruptions ({self.corruptions}) != detections "
                f"({self.detections})"
            )
        if self.repairs != self.detections:
            self._violate(
                f"detections ({self.detections}) != repairs ({self.repairs})"
            )
        for page, count in self._corrupt_pages.items():
            if self._repaired_pages.get(page, 0) != count:
                self._violate(
                    f"page {page}: {count} corruption(s) injected but "
                    f"{self._repaired_pages.get(page, 0)} repair(s)"
                )

    def stats(self) -> dict[str, int]:
        return {
            "injected_calls": self.injected_calls,
            "calls_ok": self.calls_ok,
            "calls_failed": self.calls_failed,
            "calls_abandoned": self.calls_abandoned,
            "retries": self.retries,
            "giveups": self.giveups,
            "corruptions": self.corruptions,
            "repairs": self.repairs,
            "breaker_transitions": self.breaker_transitions,
            "worker_crashes": self.worker_crashes,
            "worker_respawns": self.worker_respawns,
            "pool_restarts": self.pool_restarts,
        }


class RecoveryAccountingChecker(InvariantChecker):
    """Lease/journal accounting: grants = completions + orphans-requeued,
    and no result row lost or double-counted.

    The recovery layer (:mod:`repro.recovery`) emits one ``LSE_*`` event
    per lease transition and ``JNL_*`` events for the durable journal;
    the fault injector emits the task-kill / torn-append sabotage ledger.
    The streams must reconcile:

    * every lease is **granted once** and **closed exactly once** —
      completed (``LSE_COMPLETED``) or expired (``LSE_EXPIRED``); a lease
      still active when the stream ends leaked ownership;
    * renewals (``LSE_RENEWED``) only touch active leases;
    * every expired *primary* lease requeues its task exactly once
      (``LSE_REQUEUED``) — that is the "grants = completions +
      orphans-requeued" ledger; split leases (buddy-steal claims on the
      same task) expire with their attempt and need no requeue of their
      own;
    * at most one primary completion per task — a second would commit the
      task's rows twice; late duplicates must surface as
      ``LSE_DUP_DROPPED``, which in turn is lawful only for a task whose
      rows were already committed or replayed;
    * a task may be **replayed from the journal** (``JNL_REPLAYED``) or
      completed live, never both in one run;
    * the final result size carried by ``RUN_END`` (``candidates``)
      equals committed rows + replayed rows — no row lost, none counted
      twice;
    * every injected task kill (``FLT_INJECT_TASK_KILL``) is *detected*:
      the killed processor's leases expire (at least as many expiries on
      that proc as kills);
    * journal scans are self-consistent: the per-scan ``torn`` counts of
      ``JNL_SCANNED`` sum to the ``JNL_TORN_DETECTED`` events emitted
      (torn injections, ``FLT_INJECT_TORN_APPEND``, are counted as stats
      — they only become *detectable* once some later run scans the
      file).

    On a stream without recovery events every rule is vacuous, so the
    checker rides in the default set.
    """

    name = "recovery-accounting"

    def __init__(self) -> None:
        super().__init__()
        self._lease_state: dict = {}  # lease id -> "active"|"completed"|"expired"
        self._lease_split: dict = {}
        self._lease_proc: dict = {}
        self._pending_requeues: dict = {}  # task -> expired primaries not yet requeued
        self._completed_tasks: dict = {}  # task -> rows (primary completions)
        self._replayed_tasks: dict = {}  # task -> rows
        self._kills_by_proc: dict = {}
        self._expiries_by_proc: dict = {}
        self.grants = 0
        self.renewals = 0
        self.completions = 0
        self.expirations = 0
        self.requeues = 0
        self.dup_dropped = 0
        self.task_kills = 0
        self.torn_injected = 0
        self.torn_detected = 0
        self.journal_appends = 0
        self.journal_scans = 0
        self._scanned_torn_total = 0
        self._run_end_candidates: Optional[int] = None

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        data = event.data
        if kind is EventKind.LSE_GRANTED:
            self.grants += 1
            lease = data.get("lease")
            if lease in self._lease_state:
                self._violate(f"lease {lease} granted twice")
            self._lease_state[lease] = "active"
            self._lease_split[lease] = bool(data.get("split"))
            self._lease_proc[lease] = event.proc
        elif kind is EventKind.LSE_RENEWED:
            self.renewals += 1
            lease = data.get("lease")
            if self._lease_state.get(lease) != "active":
                self._violate(
                    f"lease {lease} renewed while "
                    f"{self._lease_state.get(lease, 'never granted')}"
                )
        elif kind is EventKind.LSE_COMPLETED:
            self.completions += 1
            lease = data.get("lease")
            task = data.get("task")
            if self._lease_state.get(lease) != "active":
                self._violate(
                    f"lease {lease} completed while "
                    f"{self._lease_state.get(lease, 'never granted')}"
                )
            self._lease_state[lease] = "completed"
            if not data.get("split"):
                if task in self._completed_tasks:
                    self._violate(
                        f"task {task} completed twice (rows committed "
                        f"twice) — exactly-once violated"
                    )
                if task in self._replayed_tasks:
                    self._violate(
                        f"task {task} completed live after being replayed "
                        f"from the journal — rows double-counted"
                    )
                self._completed_tasks[task] = data.get("rows", 0)
        elif kind is EventKind.LSE_EXPIRED:
            self.expirations += 1
            lease = data.get("lease")
            task = data.get("task")
            if self._lease_state.get(lease) != "active":
                self._violate(
                    f"lease {lease} expired while "
                    f"{self._lease_state.get(lease, 'never granted')}"
                )
            self._lease_state[lease] = "expired"
            proc = self._lease_proc.get(lease, event.proc)
            self._expiries_by_proc[proc] = self._expiries_by_proc.get(proc, 0) + 1
            if not data.get("split"):
                self._pending_requeues[task] = (
                    self._pending_requeues.get(task, 0) + 1
                )
        elif kind is EventKind.LSE_REQUEUED:
            self.requeues += 1
            task = data.get("task")
            pending = self._pending_requeues.get(task, 0)
            if pending <= 0:
                self._violate(
                    f"task {task} requeued without an expired primary lease"
                )
            else:
                self._pending_requeues[task] = pending - 1
        elif kind is EventKind.LSE_DUP_DROPPED:
            self.dup_dropped += 1
            task = data.get("task")
            if (
                task not in self._completed_tasks
                and task not in self._replayed_tasks
            ):
                self._violate(
                    f"duplicate result for task {task} dropped, but no "
                    f"first copy was ever committed or replayed"
                )
        elif kind is EventKind.JNL_REPLAYED:
            task = data.get("task")
            if task in self._completed_tasks:
                self._violate(
                    f"task {task} replayed from the journal after "
                    f"completing live — rows double-counted"
                )
            if task in self._replayed_tasks:
                self._violate(f"task {task} replayed twice")
            self._replayed_tasks[task] = data.get("rows", 0)
        elif kind is EventKind.JNL_APPENDED:
            self.journal_appends += 1
        elif kind is EventKind.JNL_SCANNED:
            self.journal_scans += 1
            self._scanned_torn_total += data.get("torn", 0)
        elif kind is EventKind.JNL_TORN_DETECTED:
            self.torn_detected += 1
        elif kind is EventKind.FLT_INJECT_TASK_KILL:
            self.task_kills += 1
            self._kills_by_proc[event.proc] = (
                self._kills_by_proc.get(event.proc, 0) + 1
            )
        elif kind is EventKind.FLT_INJECT_TORN_APPEND:
            self.torn_injected += 1
        elif kind is EventKind.RUN_END:
            if "candidates" in data:
                self._run_end_candidates = data["candidates"]

    def at_end(self) -> None:
        leaked = sorted(
            lease
            for lease, state in self._lease_state.items()
            if state == "active"
        )
        for lease in leaked[:MAX_STORED_VIOLATIONS]:
            self._violate(
                f"lease {lease} still active at end of stream — never "
                f"completed nor expired"
            )
        self.violation_count += max(0, len(leaked) - MAX_STORED_VIOLATIONS)
        for task, pending in sorted(self._pending_requeues.items()):
            if pending > 0:
                self._violate(
                    f"task {task}: {pending} expired primary lease(s) "
                    f"never requeued — the orphan is lost"
                )
        for proc, kills in sorted(self._kills_by_proc.items()):
            expiries = self._expiries_by_proc.get(proc, 0)
            if expiries < kills:
                self._violate(
                    f"P{proc}: {kills} injected task kill(s) but only "
                    f"{expiries} lease expiries — a kill went undetected"
                )
        if self.journal_scans and self._scanned_torn_total != self.torn_detected:
            self._violate(
                f"journal scans report {self._scanned_torn_total} torn "
                f"record(s) but {self.torn_detected} were traced"
            )
        if self._run_end_candidates is not None and (
            self._completed_tasks or self._replayed_tasks
        ):
            accounted = sum(self._completed_tasks.values()) + sum(
                self._replayed_tasks.values()
            )
            if accounted != self._run_end_candidates:
                self._violate(
                    f"RUN_END reports {self._run_end_candidates} result "
                    f"rows but the lease/journal ledger accounts for "
                    f"{accounted} — rows lost or double-counted"
                )

    def stats(self) -> dict[str, int]:
        return {
            "grants": self.grants,
            "completions": self.completions,
            "expirations": self.expirations,
            "requeues": self.requeues,
            "renewals": self.renewals,
            "dup_dropped": self.dup_dropped,
            "replayed": len(self._replayed_tasks),
            "task_kills": self.task_kills,
            "torn_injected": self.torn_injected,
            "torn_detected": self.torn_detected,
            "journal_appends": self.journal_appends,
        }


class ShardAccountingChecker(InvariantChecker):
    """Routing and fan-out accounting of the sharded tier (repro.shard).

    The router announces the topology up front — one ``SHD_SHARD_UP``
    per (shard, tree) carrying the shard's stored-content bounding box —
    and every later event carries the request's geometry, so the checker
    can *recompute* each routing decision offline and compare:

    * **fan-out matches geometry** — a window request's routed shard set
      equals the shards whose content box intersects the window; a join
      request's equals the shards where both trees' content boxes
      overlap each other (and the window, if any); a kNN request's
      candidate set is every shard storing the tree, and each candidate
      is either queried or explicitly skipped;
    * **sub-requests settle exactly once** — every
      ``SHD_SUBREQUEST_SENT`` is closed by exactly one of
      ``SHD_SUBREQUEST_DONE`` / ``SHD_FAILOVER`` (which must be followed
      by another send) / ``SHD_SUBREQUEST_FAILED``, at most one DONE per
      (request, shard), and nothing is still open at end of stream;
    * **kNN pruning is lawful** — a ``SHD_SHARD_SKIPPED`` must carry
      ``mindist`` strictly above the ``kth`` bound it was pruned
      against (an equal-distance shard could hold a tie that wins by
      oid order, so it may never be skipped);
    * **merges conserve rows** — a join merge reports zero duplicate
      pairs and exactly the sum of its parts (the reference-point rule
      makes shard contributions disjoint); window and kNN merges never
      exceed their parts (boundary replicas lawfully collapse).

    On a stream without ``SHD_*`` events every rule is vacuous, so the
    checker rides in the default set like the other accounting checkers.
    """

    name = "shard-accounting"

    def __init__(self) -> None:
        super().__init__()
        self._content: dict = {}  # (shard, tree) -> bbox tuple or None
        self._shards_by_tree: dict = {}  # tree -> set of storing shards
        self._routed: dict = {}  # req -> (cls, frozenset of shards)
        self._sub: dict = {}  # (req, shard) -> [sent, done, failover, failed]
        self._rows: dict = {}  # req -> rows summed over DONE events
        self._touched: dict = {}  # req -> shards sent or skipped (kNN law)
        self.shards_up = 0
        self.routed = 0
        self.subrequests = 0
        self.completions = 0
        self.failovers = 0
        self.failures = 0
        self.skips = 0
        self.merges = 0
        self.duplicates = 0

    # -- geometry (closed-interval, identical to Rect.intersects) -------------
    @staticmethod
    def _intersects(a, b) -> bool:
        return not (
            a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1]
        )

    def _storing(self, tree) -> set:
        return self._shards_by_tree.get(tree, set())

    def _expected_window(self, tree, box) -> set:
        return {
            shard
            for shard in self._storing(tree)
            if self._intersects(self._content[(shard, tree)], box)
        }

    def _expected_join(self, tree_r, tree_s, box) -> set:
        expected = set()
        for shard in self._storing(tree_r) & self._storing(tree_s):
            mbr_r = self._content[(shard, tree_r)]
            mbr_s = self._content[(shard, tree_s)]
            if not self._intersects(mbr_r, mbr_s):
                continue
            if box is not None and not (
                self._intersects(mbr_r, box) and self._intersects(mbr_s, box)
            ):
                continue
            expected.add(shard)
        return expected

    # -- stream ---------------------------------------------------------------
    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        data = event.data
        if kind is EventKind.SHD_SHARD_UP:
            self.shards_up += 1
            shard, tree = data.get("shard"), data.get("tree")
            if data.get("empty"):
                self._content[(shard, tree)] = None
            else:
                self._content[(shard, tree)] = (
                    data.get("xl"), data.get("yl"),
                    data.get("xu"), data.get("yu"),
                )
                self._shards_by_tree.setdefault(tree, set()).add(shard)
        elif kind is EventKind.SHD_REQUEST_ROUTED:
            self.routed += 1
            req, cls = data.get("req"), data.get("cls")
            raw = data.get("shards", "")
            actual = frozenset(int(s) for s in raw.split(",") if s != "")
            self._routed[req] = (cls, actual)
            expected = None
            if cls == "window":
                expected = self._expected_window(
                    data.get("tree"),
                    (data.get("xl"), data.get("yl"),
                     data.get("xu"), data.get("yu")),
                )
            elif cls == "join":
                box = None
                if data.get("wxl") is not None:
                    box = (data.get("wxl"), data.get("wyl"),
                           data.get("wxu"), data.get("wyu"))
                expected = self._expected_join(
                    data.get("tree_r"), data.get("tree_s"), box
                )
            elif cls == "knn":
                # Every shard storing the tree is a candidate; pruning
                # happens per shard and is ledgered by SKIPPED events.
                expected = self._storing(data.get("tree"))
            if expected is not None and actual != expected:
                self._violate(
                    f"request {req} ({cls}) routed to shards "
                    f"{sorted(actual)} but its geometry overlaps "
                    f"{sorted(expected)}"
                )
        elif kind is EventKind.SHD_SUBREQUEST_SENT:
            self.subrequests += 1
            req, shard = data.get("req"), data.get("shard")
            entry = self._sub.setdefault((req, shard), [0, 0, 0, 0])
            entry[0] += 1
            if entry[0] - (entry[1] + entry[2] + entry[3]) > 1:
                self._violate(
                    f"request {req} shard {shard}: overlapping attempts "
                    f"(send before the previous attempt settled)"
                )
            routed = self._routed.get(req)
            if routed is not None and shard not in routed[1]:
                self._violate(
                    f"request {req}: sub-request sent to shard {shard} "
                    f"outside its routed set {sorted(routed[1])}"
                )
            self._touched.setdefault(req, set()).add(shard)
        elif kind is EventKind.SHD_SUBREQUEST_DONE:
            self.completions += 1
            req, shard = data.get("req"), data.get("shard")
            entry = self._sub.setdefault((req, shard), [0, 0, 0, 0])
            entry[1] += 1
            if entry[1] > 1:
                self._violate(
                    f"request {req} shard {shard}: sub-request completed "
                    f"twice — rows would merge twice"
                )
            self._rows[req] = self._rows.get(req, 0) + data.get("rows", 0)
        elif kind is EventKind.SHD_FAILOVER:
            self.failovers += 1
            req, shard = data.get("req"), data.get("shard")
            entry = self._sub.setdefault((req, shard), [0, 0, 0, 0])
            entry[2] += 1
        elif kind is EventKind.SHD_SUBREQUEST_FAILED:
            self.failures += 1
            req, shard = data.get("req"), data.get("shard")
            entry = self._sub.setdefault((req, shard), [0, 0, 0, 0])
            entry[3] += 1
            if entry[1]:
                self._violate(
                    f"request {req} shard {shard}: failed after completing"
                )
        elif kind is EventKind.SHD_SHARD_SKIPPED:
            self.skips += 1
            req, shard = data.get("req"), data.get("shard")
            bound, kth = data.get("mindist"), data.get("kth")
            if bound is None or kth is None or not bound > kth:
                self._violate(
                    f"request {req} shard {shard}: skipped with mindist "
                    f"{bound} not strictly above the k-th bound {kth} — an "
                    f"equal-distance tie could have been pruned"
                )
            self._touched.setdefault(req, set()).add(shard)
        elif kind is EventKind.SHD_MERGED:
            self.merges += 1
            req, cls = data.get("req"), data.get("cls")
            rows = data.get("rows", 0)
            parts = data.get("parts", 0)
            duplicates = data.get("duplicates", 0)
            self.duplicates += duplicates
            if cls == "join":
                if duplicates:
                    self._violate(
                        f"request {req}: join merge dropped {duplicates} "
                        f"duplicate pair(s) — reference-point elimination "
                        f"failed"
                    )
                if rows != parts:
                    self._violate(
                        f"request {req}: join merged {rows} rows from "
                        f"{parts} shard rows — rows lost or invented"
                    )
            elif rows > parts:
                self._violate(
                    f"request {req} ({cls}): merged {rows} rows out of "
                    f"only {parts} shard rows"
                )
            routed = self._routed.get(req)
            if cls == "knn" and routed is not None:
                touched = self._touched.get(req, set())
                if touched != routed[1]:
                    self._violate(
                        f"request {req} (knn): candidates "
                        f"{sorted(routed[1])} but only {sorted(touched)} "
                        f"were queried or explicitly skipped"
                    )

    # -- final reconciliation -------------------------------------------------
    def at_end(self) -> None:
        dangling = sorted(
            (req, shard)
            for (req, shard), e in self._sub.items()
            if e[0] != e[1] + e[2] + e[3]
        )
        for req, shard in dangling[:MAX_STORED_VIOLATIONS]:
            entry = self._sub[(req, shard)]
            self._violate(
                f"request {req} shard {shard}: {entry[0]} send(s) vs "
                f"{entry[1]} done + {entry[2]} failover(s) + {entry[3]} "
                f"failure(s) — a sub-request never settled"
            )
        self.violation_count += max(0, len(dangling) - MAX_STORED_VIOLATIONS)

    def stats(self) -> dict[str, int]:
        return {
            "shards_up": self.shards_up,
            "requests_routed": self.routed,
            "subrequests": self.subrequests,
            "completions": self.completions,
            "failovers": self.failovers,
            "failures": self.failures,
            "knn_skips": self.skips,
            "merges": self.merges,
            "duplicates": self.duplicates,
        }


def _conformance_checkers() -> list[InvariantChecker]:
    """Spec-compiled protocol monitors (one per registered spec).

    Imported lazily: :mod:`repro.analysis.protocol` subclasses
    :class:`InvariantChecker`, so a module-level import here would be a
    cycle.  Each monitor is vacuous on streams without its protocol's
    events, so the full set rides on every run.
    """
    from ..analysis.protocol import conformance_checkers

    return conformance_checkers()


def default_checkers() -> list[InvariantChecker]:
    """One fresh instance of every standard checker."""
    return [
        TaskConservationChecker(),
        StealSoundnessChecker(),
        BufferCoherenceChecker(),
        DiskAccountingChecker(),
        ClockMonotonicityChecker(),
        # Vacuous without FLT_*/SUP_* events, so it rides on every run and
        # bites only when fault injection is active.
        ResilienceAccountingChecker(),
        # Likewise vacuous without LSE_*/JNL_* recovery events.
        RecoveryAccountingChecker(),
        # And vacuous without SHD_* sharded-routing events.
        ShardAccountingChecker(),
        *_conformance_checkers(),
    ]


def recovery_checkers() -> list[InvariantChecker]:
    """Fresh checkers for a recovery-enabled (lease/journal) join run.

    Task conservation is deliberately absent: under injected kills a dead
    processor lawfully abandons pending pairs and a requeued orphan
    lawfully re-enqueues the same page-id pairs, both of which the
    exactly-once semantics of :class:`RecoveryAccountingChecker` cover at
    the task level instead.
    """
    return [
        StealSoundnessChecker(),
        BufferCoherenceChecker(),
        DiskAccountingChecker(),
        ClockMonotonicityChecker(),
        ResilienceAccountingChecker(),
        RecoveryAccountingChecker(),
        *_conformance_checkers(),
    ]


def service_checkers() -> list[InvariantChecker]:
    """Fresh checkers for a serving-engine (wall-clock) event stream.

    Covers the sharded tier too: the router speaks the same ``SVC_*``
    protocol, adds the ``SHD_*`` routing ledger, and settles its
    failover re-leases through ``LSE_*`` events — all three reconciled
    here (the latter two vacuously on unsharded streams).
    """
    return [
        ServiceAccountingChecker(),
        ResilienceAccountingChecker(),
        ClockMonotonicityChecker(),
        ShardAccountingChecker(),
        RecoveryAccountingChecker(),
        *_conformance_checkers(),
    ]


def run_checkers(
    events: Iterable[TraceEvent],
    checkers: Optional[list[InvariantChecker]] = None,
) -> list[Verdict]:
    """Replay *events* through *checkers* (default: all standard ones)."""
    active = checkers if checkers is not None else default_checkers()
    for event in events:
        for checker in active:
            checker.handle(event)
    return [checker.finish() for checker in active]
