"""Event sinks: where emitted :class:`TraceEvent` objects go.

A sink is anything with ``handle(event)`` (and optionally ``close()``).
The invariant checkers of :mod:`repro.trace.checkers` are sinks too, so
they can run *online* during a simulation; :func:`run_checkers` replays a
recorded event list through them after the fact instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Protocol, Union, runtime_checkable

from .events import TraceEvent

__all__ = ["TraceSink", "ListSink", "JSONLSink", "read_jsonl"]


@runtime_checkable
class TraceSink(Protocol):
    """Anything that consumes a stream of trace events."""

    def handle(self, event: TraceEvent) -> None: ...


class ListSink:
    """Keep every event in memory (the default recording sink)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<ListSink {len(self.events)} events>"


class JSONLSink:
    """Append events to a file as one JSON object per line.

    Accepts a path (opened and owned by the sink) or an already-open
    text-mode file object (left open on :meth:`close`).
    """

    def __init__(self, target: Union[str, Path, IO[str]]):
        if isinstance(target, (str, Path)):
            self.path: Path | None = Path(target)
            self._file: IO[str] = self.path.open("w", encoding="utf-8")
            self._owns_file = True
        else:
            self.path = None
            self._file = target
            self._owns_file = False
        self.written = 0

    def handle(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_json_dict(), separators=(",", ":")))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __repr__(self) -> str:
        where = self.path or "<stream>"
        return f"<JSONLSink {where} {self.written} events>"


def read_jsonl(source: Union[str, Path, Iterable[str]]) -> list[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` objects."""
    if isinstance(source, (str, Path)):
        with Path(source).open("r", encoding="utf-8") as handle:
            return [
                TraceEvent.from_json_dict(json.loads(line))
                for line in handle
                if line.strip()
            ]
    return [
        TraceEvent.from_json_dict(json.loads(line))
        for line in source
        if line.strip()
    ]
