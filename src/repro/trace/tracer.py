"""The event bus the instrumented simulator emits into.

Design goal: **near-zero cost when tracing is off**.  Every instrumented
site is written as::

    if tracer.enabled:
        tracer.emit(EventKind.BUFFER_HIT, proc=p, page=page_id)

With the shared :data:`NULL_TRACER` the whole site costs one attribute
read and a falsy branch — no event object, no payload dict, no sink
dispatch.  With a live :class:`Tracer` each emit stamps the event with the
simulation clock and a monotone sequence number and fans it out to every
sink (recording sinks, a JSONL writer, online invariant checkers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .events import EventKind, TraceEvent
from .sinks import TraceSink

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "TraceConfig"]


class Tracer:
    """Stamps events with (seq, simulated time) and fans them out."""

    __slots__ = ("enabled", "sinks", "_clock", "_seq")

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sinks: Iterable[TraceSink] = (),
    ):
        self.enabled = True
        self.sinks: list[TraceSink] = list(sinks)
        self._clock = clock or (lambda: 0.0)
        self._seq = 0

    def emit(self, kind: EventKind, proc: int = -1, **data) -> None:
        event = TraceEvent(self._seq, self._clock(), kind, proc, data)
        self._seq += 1
        for sink in self.sinks:
            sink.handle(event)

    @property
    def events_emitted(self) -> int:
        return self._seq

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:
        return f"<Tracer {self._seq} events, {len(self.sinks)} sinks>"


class NullTracer(Tracer):
    """The off switch: ``enabled`` is False and ``emit`` is a no-op.

    Instrumented sites guard on ``tracer.enabled``, so the null tracer is
    never actually asked to emit; the no-op is defence in depth.
    """

    __slots__ = ()

    def __init__(self):
        super().__init__()
        self.enabled = False

    def emit(self, kind: EventKind, proc: int = -1, **data) -> None:
        return None


#: Shared do-nothing tracer; the default everywhere tracing is optional.
NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class TraceConfig:
    """How a traced run records and verifies its event stream.

    ``keep_events``  — record events in memory (``result.trace.events``);
    ``checkers``     — run the standard invariant checkers online;
    ``jsonl_path``   — additionally stream events to this JSONL file.
    """

    keep_events: bool = True
    checkers: bool = True
    jsonl_path: Optional[str] = None
