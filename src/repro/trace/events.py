"""Typed simulation events.

Every observable step of a simulated parallel join — task life cycle,
steals, buffer traffic, disk service — is one :class:`TraceEvent`: a
monotone sequence number, the simulated time it happened, the event kind,
the processor it happened on (-1 for machine-global events) and a small
payload dict of ints/floats/strings.  Events are cheap plain data; all
interpretation lives in the checkers (:mod:`repro.trace.checkers`) and the
timeline renderer (:mod:`repro.trace.timeline`).

Pairs of subtree nodes are identified by the page ids of their two nodes
(``r``/``s`` payload keys).  A pair is created exactly once during a join
(each node has a unique parent, so a child pair has a unique producing
parent pair), which is what makes the page-id pair a sound conservation
key.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["EventKind", "TraceEvent"]


class EventKind(str, enum.Enum):
    """All event types the instrumented simulator emits."""

    # run framing
    RUN_START = "run_start"
    RUN_END = "run_end"

    # task life cycle (phase 1/2)
    TASK_CREATED = "task_created"
    TASK_ASSIGNED = "task_assigned"

    # per-pair work accounting (phase 3)
    PAIR_ENQUEUED = "pair_enqueued"
    PAIR_DEQUEUED = "pair_dequeued"
    EXEC_START = "exec_start"
    EXEC_END = "exec_end"

    # task reassignment (section 3.4)
    STEAL_REQUESTED = "steal_requested"
    STEAL_TAKE = "steal_take"
    STEAL_GRANTED = "steal_granted"
    STEAL_DENIED = "steal_denied"
    BUDDY_FORMED = "buddy_formed"

    # buffer hierarchy (section 3.2 / 4.2)
    BUFFER_HIT = "buffer_hit"
    BUFFER_MISS = "buffer_miss"
    BUFFER_INSERT = "buffer_insert"
    BUFFER_EVICT = "buffer_evict"
    REMOTE_FETCH = "remote_fetch"
    LOAD_WAIT = "load_wait"
    PAGE_REGISTERED = "page_registered"
    PAGE_DEREGISTERED = "page_deregistered"

    # disk array (section 4.2)
    DISK_ENQUEUE = "disk_enqueue"
    DISK_COMPLETE = "disk_complete"

    # simulation kernel
    PROC_SPAWNED = "proc_spawned"
    PROC_FINISHED = "proc_finished"

    # serving engine (repro.service) — wall-clock events, proc is always -1
    SVC_ENGINE_START = "svc_engine_start"
    SVC_ENGINE_STOP = "svc_engine_stop"
    SVC_REQUEST_SUBMITTED = "svc_request_submitted"
    SVC_REQUEST_ADMITTED = "svc_request_admitted"
    SVC_REQUEST_REJECTED = "svc_request_rejected"
    SVC_REQUEST_COMPLETED = "svc_request_completed"
    SVC_REQUEST_TIMEOUT = "svc_request_timeout"
    SVC_REQUEST_CANCELLED = "svc_request_cancelled"
    SVC_REQUEST_ERROR = "svc_request_error"
    SVC_BATCH_EXECUTED = "svc_batch_executed"
    SVC_CACHE_HIT = "svc_cache_hit"
    SVC_CACHE_MISS = "svc_cache_miss"
    SVC_CACHE_INSERT = "svc_cache_insert"
    SVC_CACHE_EVICT = "svc_cache_evict"
    SVC_CACHE_EXPIRE = "svc_cache_expire"
    SVC_CACHE_STALE_HIT = "svc_cache_stale_hit"
    #: Admitted but deliberately dropped in a degraded mode (open circuit
    #: with no stale cache entry) — the 503 of the engine.
    SVC_REQUEST_SHED = "svc_request_shed"

    # sharded serving tier (repro.shard) — routing / fan-out ledger
    #: One per (shard, tree) at router start: the shard's stored-content
    #: geometry, so checkers can recompute routing decisions offline.
    SHD_SHARD_UP = "shd_shard_up"
    #: A request's fan-out decision: which shards its geometry overlaps.
    SHD_REQUEST_ROUTED = "shd_request_routed"
    SHD_SUBREQUEST_SENT = "shd_subrequest_sent"
    SHD_SUBREQUEST_DONE = "shd_subrequest_done"
    #: Terminal failure of one routed sub-request (attempts exhausted or
    #: the awaiting request abandoned it).
    SHD_SUBREQUEST_FAILED = "shd_subrequest_failed"
    #: A failed attempt re-leased to the next replica of the same shard.
    SHD_FAILOVER = "shd_failover"
    #: A kNN candidate shard pruned by the best-first merge bound.
    SHD_SHARD_SKIPPED = "shd_shard_skipped"
    SHD_MERGED = "shd_merged"

    # fault injection (repro.faults) — the sabotage ledger
    FLT_INJECT_CRASH = "flt_inject_crash"
    FLT_INJECT_HANG = "flt_inject_hang"
    FLT_INJECT_SLOW_IO = "flt_inject_slow_io"
    FLT_INJECT_CORRUPT = "flt_inject_corrupt"

    # fault injection (repro.recovery seams)
    FLT_INJECT_TASK_KILL = "flt_inject_task_kill"    # processor dies at a task
    FLT_INJECT_TORN_APPEND = "flt_inject_torn_append"  # journal write torn

    # task leases (repro.recovery) — grants must reconcile with
    # completions + expirations; every expiry requeues its task.
    LSE_GRANTED = "lse_granted"
    LSE_RENEWED = "lse_renewed"
    LSE_EXPIRED = "lse_expired"
    LSE_COMPLETED = "lse_completed"
    LSE_REQUEUED = "lse_requeued"
    #: A late duplicate result (hung holder finishing after its lease
    #: expired and the task was re-run) discarded by the exactly-once
    #: result ledger.
    LSE_DUP_DROPPED = "lse_dup_dropped"

    # durable join journal (repro.recovery.journal)
    JNL_APPENDED = "jnl_appended"
    JNL_SCANNED = "jnl_scanned"
    JNL_TORN_DETECTED = "jnl_torn_detected"
    JNL_REPLAYED = "jnl_replayed"

    # resilience / supervision — the recovery ledger
    SUP_CALL_OK = "sup_call_ok"            # a faulted call completed anyway
    SUP_CALL_FAILED = "sup_call_failed"    # one pool call failed (typed)
    SUP_CALL_ABANDONED = "sup_call_abandoned"  # awaiter gone (timeout/cancel)
    SUP_CALL_RETRY = "sup_call_retry"      # engine re-enqueues a failed call
    SUP_CALL_GIVEUP = "sup_call_giveup"    # retries exhausted; error surfaces
    SUP_WORKER_CRASH_DETECTED = "sup_worker_crash_detected"
    SUP_WORKER_RESPAWNED = "sup_worker_respawned"
    SUP_POOL_RESTARTED = "sup_pool_restarted"
    SUP_BREAKER_OPEN = "sup_breaker_open"
    SUP_BREAKER_HALF_OPEN = "sup_breaker_half_open"
    SUP_BREAKER_CLOSED = "sup_breaker_closed"
    SUP_PAGE_CORRUPT_DETECTED = "sup_page_corrupt_detected"
    SUP_PAGE_REPAIRED = "sup_page_repaired"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One occurrence in the simulated machine.

    ``proc`` is the 0-based processor the event belongs to, or -1 for
    events without a processor context (run framing, directory state).
    """

    seq: int
    time: float
    kind: EventKind
    proc: int = -1
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind.value,
            "proc": self.proc,
            "data": dict(self.data),
        }

    @classmethod
    def from_json_dict(cls, raw: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(raw["seq"]),
            time=float(raw["time"]),
            kind=EventKind(raw["kind"]),
            proc=int(raw.get("proc", -1)),
            data=dict(raw.get("data", {})),
        )

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.data.items())
        return (
            f"<TraceEvent #{self.seq} t={self.time:.6f} {self.kind.value}"
            f" proc={self.proc}{' ' + inner if inner else ''}>"
        )
