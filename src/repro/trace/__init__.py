"""Structured simulation tracing and invariant checking.

The simulated KSR1 (:mod:`repro.sim`), the parallel join driver, the
buffer layers and the disk array emit typed :class:`TraceEvent` objects
into a :class:`Tracer`.  Sinks consume the stream: recording
(:class:`ListSink`), JSONL persistence (:class:`JSONLSink`) and the online
invariant checkers (:mod:`repro.trace.checkers`) that verify the
simulation behaved lawfully — tasks conserved, steals sound, buffers
coherent, disks exact, clocks monotone.

Tracing is **off by default** and adds only an ``if tracer.enabled`` guard
per site (the :data:`NULL_TRACER`); enable it per run via
``ParallelJoinConfig(trace=TraceConfig())`` and read the outcome from
``result.trace`` (a :class:`TraceHandle`).
"""

from .checkers import (
    BufferCoherenceChecker,
    ClockMonotonicityChecker,
    DiskAccountingChecker,
    InvariantChecker,
    InvariantViolation,
    RecoveryAccountingChecker,
    ResilienceAccountingChecker,
    ServiceAccountingChecker,
    ShardAccountingChecker,
    StealSoundnessChecker,
    TaskConservationChecker,
    Verdict,
    default_checkers,
    recovery_checkers,
    run_checkers,
    service_checkers,
)
from .events import EventKind, TraceEvent
from .handle import TraceHandle
from .sinks import JSONLSink, ListSink, TraceSink, read_jsonl
from .timeline import format_event, render_timeline, steal_timeline
from .tracer import NULL_TRACER, NullTracer, TraceConfig, Tracer

__all__ = [
    "EventKind",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceConfig",
    "TraceSink",
    "ListSink",
    "JSONLSink",
    "read_jsonl",
    "TraceHandle",
    "Verdict",
    "InvariantChecker",
    "InvariantViolation",
    "TaskConservationChecker",
    "StealSoundnessChecker",
    "BufferCoherenceChecker",
    "DiskAccountingChecker",
    "ClockMonotonicityChecker",
    "ServiceAccountingChecker",
    "ResilienceAccountingChecker",
    "RecoveryAccountingChecker",
    "ShardAccountingChecker",
    "default_checkers",
    "recovery_checkers",
    "service_checkers",
    "run_checkers",
    "render_timeline",
    "steal_timeline",
    "format_event",
]
