"""What a traced run hands back: events + checker verdicts.

``ParallelJoinResult.trace`` is a :class:`TraceHandle` when the run was
configured with a :class:`~repro.trace.tracer.TraceConfig`; it bundles the
recorded events (if kept), the invariant-checker verdicts and convenience
views (timeline rendering, verification raise, per-kind counts).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from .checkers import InvariantViolation, Verdict
from .events import EventKind, TraceEvent
from .timeline import render_timeline, steal_timeline

__all__ = ["TraceHandle"]


@dataclass
class TraceHandle:
    """The observable record of one traced simulation run."""

    events: list[TraceEvent] = field(default_factory=list)
    verdicts: list[Verdict] = field(default_factory=list)
    jsonl_path: Optional[str] = None
    events_emitted: int = 0

    @property
    def ok(self) -> bool:
        """True when every invariant checker passed."""
        return all(verdict.ok for verdict in self.verdicts)

    @property
    def failed(self) -> list[Verdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]

    def verdict(self, checker: str) -> Verdict:
        for verdict in self.verdicts:
            if verdict.checker == checker:
                return verdict
        raise KeyError(f"no verdict from checker {checker!r}")

    def verify(self) -> None:
        """Raise :class:`InvariantViolation` if any checker failed."""
        if self.ok:
            return
        details = []
        for verdict in self.failed:
            details.append(verdict.summary())
            details.extend(f"  - {v}" for v in verdict.violations[:5])
        raise InvariantViolation(
            "simulation invariants violated:\n" + "\n".join(details)
        )

    def timeline(self, **kwargs) -> str:
        """Render the recorded events (see :func:`render_timeline`)."""
        return render_timeline(self.events, **kwargs)

    def steal_timeline(self, **kwargs) -> str:
        """Only the reassignment events (steals, denials, buddies)."""
        return steal_timeline(self.events, **kwargs)

    def counts(self) -> dict[EventKind, int]:
        """Recorded events per kind."""
        return dict(Counter(event.kind for event in self.events))

    def summary(self) -> str:
        """One line per checker, prefixed with the event volume."""
        lines = [f"{self.events_emitted} events"]
        lines.extend(verdict.summary() for verdict in self.verdicts)
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.failed)} checker(s) failed"
        return (
            f"<TraceHandle {self.events_emitted} events, "
            f"{len(self.verdicts)} checkers, {state}>"
        )
