"""Sort-Tile-Recursive (STR) bulk loading.

The paper's trees were built dynamically, which yields average node fills
around 70 %.  For experiments that need many large trees quickly, STR
packing builds an equivalent tree in O(n log n): sort by x-center, cut into
vertical slabs, sort each slab by y-center, pack runs of ``fill * capacity``
entries into leaves, then repeat one level up until a single root remains.
The ``fill`` knob reproduces dynamic-build occupancy (0.70 gives page
counts close to the paper's Table 1).
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Sequence

from ..geometry.rect import Rect
from ..storage.page import StorageParams
from .entry import Entry
from .node import Node
from .rstar import RStarTree

__all__ = ["str_bulk_load"]


def str_bulk_load(
    items: Sequence[tuple[Hashable, Rect]],
    storage: Optional[StorageParams] = None,
    *,
    fill: float = 0.7,
    dir_fill: Optional[float] = None,
    dir_capacity: Optional[int] = None,
    data_capacity: Optional[int] = None,
    min_fill: float = 0.4,
) -> RStarTree:
    """Build an R*-tree over ``(oid, rect)`` pairs by STR packing.

    ``fill`` is the target leaf occupancy as a fraction of capacity;
    ``dir_fill`` (defaulting to ``fill``) controls directory levels
    separately — dynamically built trees tend to pack directory nodes a
    bit denser, and a slightly higher ``dir_fill`` reproduces the paper's
    height-3 trees.  When one directory node suffices for a level, it
    becomes the root regardless of fill.  The resulting tree satisfies
    every invariant of :meth:`RStarTree.validate` and supports subsequent
    dynamic inserts and deletes.
    """
    tree = RStarTree(
        storage,
        dir_capacity=dir_capacity,
        data_capacity=data_capacity,
        min_fill=min_fill,
    )
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    if dir_fill is None:
        dir_fill = fill
    if not 0.0 < dir_fill <= 1.0:
        raise ValueError("dir_fill must be in (0, 1]")
    if not items:
        return tree

    entries = [Entry.for_object(rect, oid) for oid, rect in items]
    per_leaf = max(tree.min_data, int(tree.data_capacity * fill))
    nodes = _pack_level(entries, level=0, per_node=per_leaf, min_count=tree.min_data)
    height = 1
    per_dir = max(tree.min_dir, int(tree.dir_capacity * dir_fill))
    while len(nodes) > 1:
        parent_entries = [Entry.for_child(node) for node in nodes]
        if len(parent_entries) <= tree.dir_capacity:
            nodes = [Node(height, parent_entries)]
        else:
            nodes = _pack_level(
                parent_entries, level=height, per_node=per_dir, min_count=tree.min_dir
            )
        height += 1

    tree.root = nodes[0]
    tree.height = height
    tree.size = len(items)
    return tree


def _pack_level(
    entries: list[Entry], level: int, per_node: int, min_count: int
) -> list[Node]:
    """Tile *entries* into nodes of ~``per_node`` entries, STR style.

    All produced nodes hold between ``min_count`` and slightly above
    ``per_node`` entries (never more than ``2 * min_count`` above, which
    stays within capacity because ``min_count`` is at most 50 % of it).
    """
    total = len(entries)
    if total <= per_node:
        return [Node(level, list(entries))]
    node_count = _node_count(total, per_node, min_count)
    slab_count = math.ceil(math.sqrt(node_count))

    by_x = sorted(entries, key=_center_x)
    nodes: list[Node] = []
    for slab in _even_chunks(by_x, slab_count):
        slab.sort(key=_center_y)
        runs = _node_count(len(slab), per_node, min_count)
        for run in _even_chunks(slab, runs):
            nodes.append(Node(level, run))
    return nodes


def _node_count(total: int, per_node: int, min_count: int) -> int:
    """How many nodes to spread *total* entries over so that an even split
    keeps every node at or above *min_count*."""
    wanted = math.ceil(total / per_node)
    feasible = max(1, total // min_count)
    return max(1, min(wanted, feasible))


def _even_chunks(seq: list[Entry], chunk_count: int) -> list[list[Entry]]:
    """Split *seq* into *chunk_count* contiguous chunks of near-equal size."""
    base, extra = divmod(len(seq), chunk_count)
    chunks: list[list[Entry]] = []
    start = 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        chunks.append(seq[start : start + size])
        start += size
    return chunks


def _center_x(entry: Entry) -> float:
    return entry.xl + entry.xu


def _center_y(entry: Entry) -> float:
    return entry.yl + entry.yu
