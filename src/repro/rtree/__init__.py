"""The R*-tree access method [BKSS 90] and its pagination onto disk."""

from .bulk import str_bulk_load
from .entry import Entry
from .guttman import GuttmanRTree
from .node import Node
from .pagestore import PageStore
from .query import QueryStats, nearest_neighbors, window_query
from .rstar import RStarTree
from .stats import TreeStats, tree_stats

__all__ = [
    "Entry",
    "Node",
    "RStarTree",
    "GuttmanRTree",
    "str_bulk_load",
    "PageStore",
    "TreeStats",
    "tree_stats",
    "window_query",
    "nearest_neighbors",
    "QueryStats",
]
