"""The R*-tree access method [BKSS 90] and its pagination onto disk."""

from .bulk import str_bulk_load
from .entry import Entry
from .guttman import GuttmanRTree
from .node import Node
from .pagestore import PageStore
from .query import QueryStats, nearest_neighbors, oid_order_key, window_query
from .rstar import RStarTree
from .stats import TreeStats, tree_stats

__all__ = [
    "Entry",
    "Node",
    "RStarTree",
    "GuttmanRTree",
    "FlatRTree",
    "build_flat_tree",
    "str_bulk_load",
    "PageStore",
    "TreeStats",
    "tree_stats",
    "window_query",
    "nearest_neighbors",
    "oid_order_key",
    "QueryStats",
]

_LAZY = {"FlatRTree", "build_flat_tree"}


def __getattr__(name):
    # The flat backend needs numpy; load it only when actually asked for,
    # so the node-tree core keeps working on numpy-free installs.
    if name in _LAZY:
        from . import flat

        return getattr(flat, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
