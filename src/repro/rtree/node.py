"""R*-tree nodes: one node corresponds to one 4 KB page."""

from __future__ import annotations

from typing import Optional

from .entry import Entry

__all__ = ["Node"]


class Node:
    """A page of the R*-tree.

    ``level`` counts from the leaves up: 0 is a data page (leaf), the root
    has the highest level.  ``page_id`` is assigned when the tree is
    paginated onto the simulated disk array (see
    :mod:`repro.rtree.pagestore`); it stays None for purely in-memory use.
    """

    __slots__ = ("level", "entries", "page_id")

    def __init__(self, level: int, entries: Optional[list[Entry]] = None):
        self.level = level
        self.entries: list[Entry] = entries if entries is not None else []
        self.page_id: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def mbr_tuple(self) -> tuple[float, float, float, float]:
        """The minimum bounding rectangle over all entries, as a tuple."""
        entries = self.entries
        if not entries:
            raise ValueError("empty node has no MBR")
        first = entries[0]
        xl, yl, xu, yu = first.xl, first.yl, first.xu, first.yu
        for e in entries:
            if e.xl < xl:
                xl = e.xl
            if e.yl < yl:
                yl = e.yl
            if e.xu > xu:
                xu = e.xu
            if e.yu > yu:
                yu = e.yu
        return (xl, yl, xu, yu)

    def children(self) -> list["Node"]:
        """Child nodes (directory nodes only)."""
        return [e.child for e in self.entries]

    def sort_entries_by_xl(self) -> None:
        """Keep entries in plane-sweep order (the paper sorts node entries
        by the spatial location of their rectangles, section 2.2)."""
        self.entries.sort(key=_entry_xl)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"dir(level={self.level})"
        page = f" page={self.page_id}" if self.page_id is not None else ""
        return f"<Node {kind} {len(self.entries)} entries{page}>"


def _entry_xl(entry: Entry) -> float:
    return entry.xl
