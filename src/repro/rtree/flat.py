"""The flat packed R-tree backend: struct-of-arrays + numpy kernels.

The pointer-based :class:`~repro.rtree.rstar.RStarTree` pays Python-object
overhead for every entry it touches; this module is the array-backed
alternative named by the roadmap.  A :class:`FlatRTree` is packed
bottom-up over a Z-order sort of the box centers (the curve machinery of
:mod:`repro.zorder.curve`), after which **all** boxes of **all** levels
live in four contiguous ``float64`` arrays (``xmin/ymin/xmax/ymax``) with
an offset array marking the level boundaries — the ``FlatRTree`` of
duckdb_spatial, in numpy.  Every hot kernel is then one broadcast over a
node's slice instead of a Python loop over its entries: numpy is our SIMD
("SIMD-ified R-tree Query Processing").

Layout
------
Level 0 holds the ``size`` data boxes in Z-order; level ``l`` holds one
box per node, each covering up to ``node_size`` consecutive boxes of
level ``l-1`` (node ``i`` covers ``[i*node_size, (i+1)*node_size)``).
The top level always has exactly one box, the root.  ``level_offsets[l]``
is the position of level ``l``'s first box in the global arrays, so the
slice of level ``l`` is ``level_offsets[l]:level_offsets[l+1]`` — the
level boundaries partition the arrays.

The class is a drop-in *backend*: :func:`repro.rtree.query.window_query`,
:func:`repro.rtree.query.nearest_neighbors`,
:func:`repro.query.batch.multi_window_query` and the join entry points
all dispatch on it, and :meth:`as_node_tree` materialises an equivalent
pointer tree so the simulated-machine paths (pagination, LSR/GSRR/GD)
run the packed structure unchanged.  Because the arrays are plain module
data, a forked worker inherits the whole index by copy-on-write —
fork-inherits-arrays, where the service layer today fork-inherits-trees.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - numpy ships with [dev]
    raise ImportError(
        "the flat R-tree backend requires numpy (install the package "
        "with the [dev] extra or keep using the node-tree backend)"
    ) from exc

from ..geometry.rect import Rect
from ..zorder.curve import Quantizer, interleave_array
from .entry import Entry
from .node import Node
from .query import QueryStats, oid_order_key
from .rstar import RStarTree

__all__ = ["FlatRTree", "build_flat_tree", "is_flat"]

#: Default fan-out.  Wider nodes amortise numpy's per-call overhead but
#: make each node's MBR looser, which inflates the candidate crosses of
#: the join kernel; 16 is the measured sweet spot on the paper maps
#: (the join filter runs ~3x the plane sweep, k-NN at parity).
DEFAULT_NODE_SIZE = 16

#: Resolution of the Z-order sort grid (2^bits cells per axis).
DEFAULT_CURVE_BITS = 16


def is_flat(tree) -> bool:
    """True when *tree* is a flat packed backend instance."""
    return isinstance(tree, FlatRTree)


class FlatRTree:
    """A static packed R-tree over ``(oid, rect)`` items.

    Build with :meth:`build`; the tree is immutable afterwards (the
    dynamic workload item of the roadmap covers rebuild-merge updates).
    """

    __slots__ = (
        "node_size",
        "size",
        "oids",
        "xmin",
        "ymin",
        "xmax",
        "ymax",
        "level_offsets",
        "_counts",
        "_node_tree",
        "_entries",
    )

    def __init__(self):
        self.node_size = DEFAULT_NODE_SIZE
        self.size = 0
        self.oids: list = []
        self.xmin = np.empty(0, dtype=np.float64)
        self.ymin = np.empty(0, dtype=np.float64)
        self.xmax = np.empty(0, dtype=np.float64)
        self.ymax = np.empty(0, dtype=np.float64)
        self.level_offsets = np.zeros(1, dtype=np.int64)
        self._counts: list[int] = []
        self._node_tree: Optional[RStarTree] = None
        self._entries: Optional[list[Entry]] = None

    # ------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        items: Iterable[tuple[Hashable, Rect]],
        *,
        node_size: int = DEFAULT_NODE_SIZE,
        curve_bits: int = DEFAULT_CURVE_BITS,
    ) -> "FlatRTree":
        """Pack *items* bottom-up over a Z-order sort of box centers.

        Deterministic: equal Morton codes keep their input order (stable
        sort), so two builds over the same item sequence are identical.
        """
        if node_size < 2:
            raise ValueError("node_size must be at least 2")
        items = list(items)
        tree = cls()
        tree.node_size = node_size
        n = len(items)
        if n == 0:
            return tree
        tree.size = n

        exl = np.fromiter((r.xl for _, r in items), np.float64, count=n)
        eyl = np.fromiter((r.yl for _, r in items), np.float64, count=n)
        exu = np.fromiter((r.xu for _, r in items), np.float64, count=n)
        eyu = np.fromiter((r.yu for _, r in items), np.float64, count=n)

        bounds = Rect(exl.min(), eyl.min(), exu.max(), eyu.max())
        quantizer = Quantizer(bounds, curve_bits)
        ix, iy = quantizer.cells_of((exl + exu) * 0.5, (eyl + eyu) * 0.5)
        order = np.argsort(interleave_array(ix, iy, curve_bits), kind="stable")

        level_xl = [exl[order]]
        level_yl = [eyl[order]]
        level_xu = [exu[order]]
        level_yu = [eyu[order]]
        tree.oids = [items[int(i)][0] for i in order]
        counts = [n]
        while counts[-1] > 1 or len(counts) == 1:
            starts = np.arange(0, counts[-1], node_size)
            level_xl.append(np.minimum.reduceat(level_xl[-1], starts))
            level_yl.append(np.minimum.reduceat(level_yl[-1], starts))
            level_xu.append(np.maximum.reduceat(level_xu[-1], starts))
            level_yu.append(np.maximum.reduceat(level_yu[-1], starts))
            counts.append(len(starts))

        tree.xmin = np.ascontiguousarray(np.concatenate(level_xl))
        tree.ymin = np.ascontiguousarray(np.concatenate(level_yl))
        tree.xmax = np.ascontiguousarray(np.concatenate(level_xu))
        tree.ymax = np.ascontiguousarray(np.concatenate(level_yu))
        tree.level_offsets = np.concatenate(
            ([0], np.cumsum(np.asarray(counts, dtype=np.int64)))
        )
        tree._counts = counts
        return tree

    # ------------------------------------------------------------ shape
    def __len__(self) -> int:
        return self.size

    @property
    def num_levels(self) -> int:
        """Number of levels including the data level (0 when empty)."""
        return len(self._counts)

    @property
    def height(self) -> int:
        """Height in node-tree terms (a root-only tree has height 1)."""
        return max(1, self.num_levels - 1)

    def level_count(self, level: int) -> int:
        """Number of boxes at *level* (level 0 = data boxes)."""
        return self._counts[level]

    def level_slice(self, level: int) -> tuple[int, int]:
        """``[start, stop)`` of *level*'s boxes in the global arrays."""
        return int(self.level_offsets[level]), int(self.level_offsets[level + 1])

    def child_range(self, level: int, index: int) -> tuple[int, int]:
        """``[start, stop)`` of node ``(level, index)``'s children within
        level ``level - 1``."""
        start = index * self.node_size
        return start, min(start + self.node_size, self._counts[level - 1])

    def mbr(self) -> Rect:
        """The root MBR (the whole dataset's bounding box)."""
        if self.size == 0:
            raise ValueError("empty tree has no MBR")
        root = int(self.level_offsets[-2])  # the top level's single box
        return Rect(
            self.xmin[root], self.ymin[root], self.xmax[root], self.ymax[root]
        )

    def entry(self, index: int) -> Entry:
        """Data entry *index* (Z-order position) as an
        :class:`~repro.rtree.entry.Entry` — the node backend's result
        currency, so callers never see which backend answered."""
        return self._entry_cache()[index]

    def _entry_cache(self) -> list[Entry]:
        """The data-level :class:`Entry` objects, built once and reused —
        the flat twin of the node tree *owning* its entries, so answering
        a query never re-materialises result objects."""
        if self._entries is None:
            count = self._counts[0] if self._counts else 0
            xl = self.xmin[:count].tolist()
            yl = self.ymin[:count].tolist()
            xu = self.xmax[:count].tolist()
            yu = self.ymax[:count].tolist()
            oids = self.oids
            self._entries = [
                Entry(xl[i], yl[i], xu[i], yu[i], oid=oids[i])
                for i in range(count)
            ]
        return self._entries

    # ----------------------------------------------------- window query
    def window_indices(
        self, window, stats: Optional[QueryStats] = None
    ) -> np.ndarray:
        """Data-box indices (ascending) whose boxes intersect *window*.

        One broadcast intersection test per level: the frontier of
        qualifying nodes is narrowed top-down, all children of the whole
        frontier tested in a single vectorized comparison.
        """
        empty = np.empty(0, dtype=np.int64)
        if self.size == 0:
            return empty
        wxl, wyl, wxu, wyu = window.xl, window.yl, window.xu, window.yu
        frontier = np.zeros(1, dtype=np.int64)  # the root, at the top level
        for level in range(self.num_levels - 1, 0, -1):
            if stats is not None:
                if level == 1:
                    stats.leaf_nodes += len(frontier)
                else:
                    stats.directory_nodes += len(frontier)
            children, _ = self.children_of(level, frontier)
            if len(children) == 0:
                return empty
            base = self.level_offsets[level - 1]
            sel = base + children
            mask = (
                (self.xmin[sel] <= wxu)
                & (wxl <= self.xmax[sel])
                & (self.ymin[sel] <= wyu)
                & (wyl <= self.ymax[sel])
            )
            frontier = children[mask]
            if len(frontier) == 0:
                return empty
        return frontier

    def window_entries(
        self, window, stats: Optional[QueryStats] = None
    ) -> list[Entry]:
        """All data entries intersecting *window* (ascending Z-order)."""
        return self._entries_at(self.window_indices(window, stats))

    def _entries_at(self, indices: np.ndarray) -> list[Entry]:
        """The cached data entries at *indices*, gathered in one pass."""
        cache = self._entry_cache()
        return [cache[i] for i in indices.tolist()]

    def multi_window(self, windows: Sequence) -> list[list[Entry]]:
        """One entry list per window (the batched-query backend hook).

        All windows descend the tree *together*: the frontier is a set of
        ``(window, node)`` pairs and every level is narrowed with a single
        vectorized intersection test across the whole batch, so numpy's
        per-call overhead is paid once per level instead of once per
        window per level.
        """
        m = len(windows)
        if m == 0:
            return []
        if self.size == 0:
            return [[] for _ in windows]
        wxl = np.fromiter((w.xl for w in windows), np.float64, count=m)
        wyl = np.fromiter((w.yl for w in windows), np.float64, count=m)
        wxu = np.fromiter((w.xu for w in windows), np.float64, count=m)
        wyu = np.fromiter((w.yu for w in windows), np.float64, count=m)
        # Frontier: one (query, node) pair per surviving branch.  Queries
        # stay grouped and in order, so each window's hits come out in
        # ascending Z-order exactly like :meth:`window_entries`.
        qid = np.arange(m, dtype=np.int64)
        nodes = np.zeros(m, dtype=np.int64)
        for level in range(self.num_levels - 1, 0, -1):
            children, parent_pos = self.children_of(level, nodes)
            cq = qid[parent_pos]
            sel = self.level_offsets[level - 1] + children
            mask = (
                (self.xmin[sel] <= wxu[cq])
                & (wxl[cq] <= self.xmax[sel])
                & (self.ymin[sel] <= wyu[cq])
                & (wyl[cq] <= self.ymax[sel])
            )
            qid = cq[mask]
            nodes = children[mask]
        counts = np.bincount(qid, minlength=m).tolist()
        hits = self._entries_at(nodes)
        out = []
        pos = 0
        for count in counts:
            out.append(hits[pos:pos + count])
            pos += count
        return out

    def children_of(
        self, level: int, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated child indices (within level ``level-1``) of all
        *nodes*, plus the repeat-index mapping each child back to its
        parent's position in *nodes*."""
        starts = nodes * self.node_size
        counts = (
            np.minimum(starts + self.node_size, self._counts[level - 1]) - starts
        )
        total = int(counts.sum())
        parent_pos = np.repeat(np.arange(len(nodes), dtype=np.int64), counts)
        first = np.concatenate(([0], np.cumsum(counts)[:-1]))
        offsets = np.arange(total, dtype=np.int64) - np.repeat(first, counts)
        return starts[parent_pos] + offsets, parent_pos

    # ---------------------------------------------------------------- kNN
    def nearest(self, x: float, y: float, k: int = 1) -> list[tuple[float, Entry]]:
        """The *k* data entries nearest to ``(x, y)``.

        Best-first search with vectorized per-node ``mindist``; result
        order is the backend-independent ``(distance, oid key)`` order of
        :func:`repro.rtree.query.nearest_neighbors` — ties at equal
        distance resolve identically on both backends.
        """
        import heapq
        import itertools

        if k < 1:
            raise ValueError("k must be at least 1")
        if self.size == 0:
            return []
        seq = itertools.count()
        # (distance, kind, tie, seq, level, index); nodes (kind 0) sort
        # before data entries (kind 1) at equal distance so a node that
        # may still contain a better-tied entry is always expanded first.
        top = self.num_levels - 1
        heap: list[tuple] = [(0.0, 0, 0, next(seq), top, 0)]
        results: list[tuple[float, Entry]] = []
        # Prune bound: the k-th smallest data-entry distance seen so far
        # (a size-k max-heap of negated distances).  Anything strictly
        # farther can never reach the result list, so it is never pushed;
        # equal distances stay in (ties resolve by oid key).
        worst: list[float] = []
        bound = float("inf")
        while heap and len(results) < k:
            distance, kind, _tie, _seq, level, index = heapq.heappop(heap)
            if kind == 1:
                results.append((distance, self.entry(index)))
                continue
            lo, hi = self.child_range(level, index)
            base = self.level_offsets[level - 1]
            sel = slice(base + lo, base + hi)
            dx = np.maximum(
                np.maximum(self.xmin[sel] - x, x - self.xmax[sel]), 0.0
            )
            dy = np.maximum(
                np.maximum(self.ymin[sel] - y, y - self.ymax[sel]), 0.0
            )
            # Same expression as the node backend's _min_distance (not
            # np.hypot, which rounds differently): distances must be
            # bit-identical across backends for ordered parity.  tolist()
            # hands back plain floats in one call, keeping the heap-push
            # loop free of numpy scalar boxing.
            dists = np.sqrt(dx * dx + dy * dy).tolist()
            if level == 1:
                for offset, dist in enumerate(dists):
                    if dist > bound:
                        continue
                    child = lo + offset
                    heapq.heappush(
                        heap,
                        (
                            dist,
                            1,
                            oid_order_key(self.oids[child]),
                            next(seq),
                            0,
                            child,
                        ),
                    )
                    if len(worst) < k:
                        heapq.heappush(worst, -dist)
                        if len(worst) == k:
                            bound = -worst[0]
                    elif dist < bound:
                        heapq.heapreplace(worst, -dist)
                        bound = -worst[0]
            else:
                for offset, dist in enumerate(dists):
                    if dist > bound:
                        continue
                    child = lo + offset
                    heapq.heappush(
                        heap, (dist, 0, child, next(seq), level - 1, child)
                    )
        return results

    # ------------------------------------------------- node-tree adapter
    def as_node_tree(self) -> RStarTree:
        """An equivalent pointer tree over the packed structure (cached).

        The simulated-machine paths — pagination, path buffers, the
        LSR/GSRR/GD join variants and the parallel queries — traverse
        :class:`~repro.rtree.node.Node` objects; this adapter lets them
        run the *packed* index without any change, so 'flat' is a
        selectable backend there too (same result sets, array kernels
        where they pay, node traversal where the simulation needs pages).
        """
        if self._node_tree is not None:
            return self._node_tree
        shell = RStarTree(
            dir_capacity=self.node_size, data_capacity=self.node_size
        )
        if self.size == 0:
            self._node_tree = shell
            return shell
        leaves = []
        for i in range(self._counts[1]):
            lo, hi = self.child_range(1, i)
            leaves.append(
                Node(0, [self.entry(j) for j in range(lo, hi)])
            )
        nodes = leaves
        for level in range(2, self.num_levels):
            grouped = []
            for i in range(self._counts[level]):
                lo, hi = self.child_range(level, i)
                grouped.append(
                    Node(level - 1, [Entry.for_child(c) for c in nodes[lo:hi]])
                )
            nodes = grouped
        shell.root = nodes[0]
        shell.height = self.num_levels - 1
        shell.size = self.size
        self._node_tree = shell
        return shell

    # -------------------------------------------------------- validation
    def validate(self) -> None:
        """Check the packed structural invariants (tests and debugging)."""
        if self.size == 0:
            assert self.num_levels == 0 and len(self.xmin) == 0
            return
        assert self._counts[0] == self.size == len(self.oids)
        assert self._counts[-1] == 1, "top level must be the single root"
        assert int(self.level_offsets[-1]) == len(self.xmin)
        for level in range(1, self.num_levels):
            below = self._counts[level - 1]
            expected = -(-below // self.node_size)  # ceil division
            assert self._counts[level] == expected, (
                f"level {level} has {self._counts[level]} nodes, "
                f"expected ceil({below}/{self.node_size}) = {expected}"
            )
            base_child = self.level_offsets[level - 1]
            base = self.level_offsets[level]
            for i in range(self._counts[level]):
                lo, hi = self.child_range(level, i)
                sel = slice(base_child + lo, base_child + hi)
                assert self.xmin[base + i] == self.xmin[sel].min()
                assert self.ymin[base + i] == self.ymin[sel].min()
                assert self.xmax[base + i] == self.xmax[sel].max()
                assert self.ymax[base + i] == self.ymax[sel].max()

    def __repr__(self) -> str:
        return (
            f"<FlatRTree size={self.size} levels={self.num_levels} "
            f"node_size={self.node_size}>"
        )


def build_flat_tree(map_data, *, node_size: int = DEFAULT_NODE_SIZE) -> FlatRTree:
    """Pack a generated map (:class:`repro.datagen.MapData`) — the flat
    twin of :func:`repro.datagen.build_tree`."""
    return FlatRTree.build(map_data.items(), node_size=node_size)
