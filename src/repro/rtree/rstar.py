"""The R*-tree [BKSS 90] — the access method underlying the spatial join.

Implements the full dynamic R*-tree:

* **ChooseSubtree** — minimum *overlap* enlargement when the children are
  leaves, minimum *area* enlargement above (ties: area enlargement, then
  area);
* **forced reinsertion** — on the first overflow of a level per insertion,
  the 30 % of entries farthest from the node's MBR center are removed and
  reinserted ("close reinsert": nearest first), which redistributes load
  and defers splits;
* **split** — axis chosen by minimum margin sum over all legal
  distributions, split index by minimum overlap (ties: minimum area);
* deletion with tree condensation and orphan reinsertion;
* window queries.

Node capacities derive from the paper's page layout (section 4.1): 4 KB
pages hold up to 102 directory or 26 data entries; the minimum fill is
40 % of the capacity as recommended in [BKSS 90].
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from ..geometry.rect import Rect
from ..storage.page import DEFAULT_STORAGE, StorageParams
from .entry import Entry
from .node import Node

__all__ = ["RStarTree"]


class RStarTree:
    """A dynamic R*-tree over 2D rectangles.

    Parameters
    ----------
    storage:
        Page layout determining node capacities; defaults to the paper's
        4 KB / 40 B / 156 B layout (102 directory, 26 data entries).
    dir_capacity, data_capacity:
        Explicit capacity overrides (useful for small test trees); when
        given they take precedence over *storage*.
    min_fill:
        Minimum node fill as a fraction of capacity (0.4 in [BKSS 90]).
    reinsert_fraction:
        Share of entries evicted by forced reinsertion (0.3 in [BKSS 90]).
    """

    def __init__(
        self,
        storage: Optional[StorageParams] = None,
        *,
        dir_capacity: Optional[int] = None,
        data_capacity: Optional[int] = None,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ):
        layout = storage or DEFAULT_STORAGE
        self.dir_capacity = dir_capacity if dir_capacity is not None else layout.dir_capacity
        self.data_capacity = (
            data_capacity if data_capacity is not None else layout.data_capacity
        )
        if self.dir_capacity < 4 or self.data_capacity < 4:
            raise ValueError("node capacities below 4 make splits degenerate")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.min_dir = max(2, int(self.dir_capacity * min_fill))
        self.min_data = max(2, int(self.data_capacity * min_fill))
        self.reinsert_fraction = reinsert_fraction
        self.root = Node(0)
        self.height = 1
        self.size = 0
        self._reinserting_levels: set[int] = set()

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return self.size

    def capacity_of(self, node: Node) -> int:
        return self.data_capacity if node.is_leaf else self.dir_capacity

    def min_fill_of(self, node: Node) -> int:
        return self.min_data if node.is_leaf else self.min_dir

    # ----------------------------------------------------------------- insert
    def insert(self, oid: Hashable, rect: Rect) -> None:
        """Insert an object identified by *oid* with MBR *rect*."""
        entry = Entry.for_object(rect, oid)
        self._reinserting_levels = set()
        self._insert_entry(entry, 0)
        self.size += 1

    def _insert_entry(self, entry: Entry, level: int) -> None:
        """Place *entry* into a node of *level* (0 = leaf), handling
        overflow by forced reinsertion or splitting."""
        path: list[tuple[Node, int]] = []
        node = self.root
        while node.level > level:
            index = self._choose_subtree(node, entry)
            parent_entry = node.entries[index]
            parent_entry.extend(entry)
            path.append((node, index))
            node = parent_entry.child
        node.entries.append(entry)
        self._handle_overflow(node, path)

    def _handle_overflow(self, node: Node, path: list[tuple[Node, int]]) -> None:
        while len(node.entries) > self.capacity_of(node):
            if path and node.level not in self._reinserting_levels:
                self._reinserting_levels.add(node.level)
                self._forced_reinsert(node, path)
                return
            sibling = self._split(node)
            if not path:
                old_root = node
                new_root = Node(node.level + 1)
                new_root.entries.append(Entry.for_child(old_root))
                new_root.entries.append(Entry.for_child(sibling))
                self.root = new_root
                self.height += 1
                return
            parent, index = path.pop()
            xl, yl, xu, yu = node.mbr_tuple()
            parent.entries[index].set_mbr(xl, yl, xu, yu)
            parent.entries.append(Entry.for_child(sibling))
            node = parent

    # -------------------------------------------------------- choose subtree
    def _choose_subtree(self, node: Node, entry: Entry) -> int:
        entries = node.entries
        if node.level == 1:
            return self._choose_min_overlap(entries, entry)
        best_index = 0
        best_enlargement = float("inf")
        best_area = float("inf")
        for index, candidate in enumerate(entries):
            enlargement = candidate.enlargement(entry)
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and candidate.area() < best_area
            ):
                best_index = index
                best_enlargement = enlargement
                best_area = candidate.area()
        return best_index

    @staticmethod
    def _choose_min_overlap(entries: list[Entry], entry: Entry) -> int:
        """[BKSS 90] leaf-level rule: minimise the growth of the overlap
        with the sibling entries (ties: area enlargement, then area)."""
        best_index = 0
        best_key = (float("inf"), float("inf"), float("inf"))
        e_xl, e_yl, e_xu, e_yu = entry.xl, entry.yl, entry.xu, entry.yu
        for index, candidate in enumerate(entries):
            n_xl = candidate.xl if candidate.xl < e_xl else e_xl
            n_yl = candidate.yl if candidate.yl < e_yl else e_yl
            n_xu = candidate.xu if candidate.xu > e_xu else e_xu
            n_yu = candidate.yu if candidate.yu > e_yu else e_yu
            overlap_delta = 0.0
            for j, other in enumerate(entries):
                if j == index:
                    continue
                # overlap of the enlarged candidate with the sibling
                w = (n_xu if n_xu < other.xu else other.xu) - (
                    n_xl if n_xl > other.xl else other.xl
                )
                if w > 0.0:
                    h = (n_yu if n_yu < other.yu else other.yu) - (
                        n_yl if n_yl > other.yl else other.yl
                    )
                    if h > 0.0:
                        overlap_delta += w * h
                # minus the current overlap
                w = (candidate.xu if candidate.xu < other.xu else other.xu) - (
                    candidate.xl if candidate.xl > other.xl else other.xl
                )
                if w > 0.0:
                    h = (candidate.yu if candidate.yu < other.yu else other.yu) - (
                        candidate.yl if candidate.yl > other.yl else other.yl
                    )
                    if h > 0.0:
                        overlap_delta -= w * h
            area = candidate.area()
            enlargement = (n_xu - n_xl) * (n_yu - n_yl) - area
            key = (overlap_delta, enlargement, area)
            if key < best_key:
                best_key = key
                best_index = index
        return best_index

    # ------------------------------------------------------ forced reinsert
    def _forced_reinsert(self, node: Node, path: list[tuple[Node, int]]) -> None:
        xl, yl, xu, yu = node.mbr_tuple()
        cx = (xl + xu) / 2.0
        cy = (yl + yu) / 2.0

        def distance(e: Entry) -> float:
            ex, ey = e.center()
            dx = ex - cx
            dy = ey - cy
            return dx * dx + dy * dy

        ordered = sorted(node.entries, key=distance)
        count = max(1, round(self.reinsert_fraction * self.capacity_of(node)))
        node.entries = ordered[:-count]
        removed = ordered[-count:]
        self._tighten_path(node, path)
        # Close reinsert: nearest entries first.
        for entry in removed:
            self._insert_entry(entry, node.level)

    def _tighten_path(self, node: Node, path: list[tuple[Node, int]]) -> None:
        """Recompute exact MBRs for *node*'s ancestors along *path*."""
        child = node
        for parent, index in reversed(path):
            xl, yl, xu, yu = child.mbr_tuple()
            parent.entries[index].set_mbr(xl, yl, xu, yu)
            child = parent

    # ------------------------------------------------------------------ split
    def _split(self, node: Node) -> Node:
        """Split an overfull node in place; returns the new sibling."""
        entries = node.entries
        m = self.min_fill_of(node)
        # -- choose split axis: minimum total margin over all distributions.
        best_axis_candidates = None
        best_margin = float("inf")
        for sort_keys in (
            (_key_xl, _key_xu),  # x axis
            (_key_yl, _key_yu),  # y axis
        ):
            margin_total = 0.0
            candidates = []
            for key in sort_keys:
                ordered = sorted(entries, key=key)
                prefix, suffix = _bound_sweeps(ordered)
                for k in range(m, len(ordered) - m + 1):
                    b1 = prefix[k - 1]
                    b2 = suffix[k]
                    margin_total += _margin(b1) + _margin(b2)
                    candidates.append((ordered, k, b1, b2))
            if margin_total < best_margin:
                best_margin = margin_total
                best_axis_candidates = candidates
        # -- choose split index: minimum overlap, ties by minimum area.
        best = None
        best_key = (float("inf"), float("inf"))
        for ordered, k, b1, b2 in best_axis_candidates:
            key = (_overlap(b1, b2), _area(b1) + _area(b2))
            if key < best_key:
                best_key = key
                best = (ordered, k)
        ordered, k = best
        node.entries = ordered[:k]
        return Node(node.level, ordered[k:])

    # ----------------------------------------------------------------- delete
    def delete(self, oid: Hashable, rect: Rect) -> bool:
        """Remove the data entry with the given oid and MBR.

        Returns True when found.  Underfull nodes along the deletion path
        are dissolved and their entries reinserted (tree condensation).
        """
        found = self._find_leaf(self.root, oid, rect, [])
        if found is None:
            return False
        path, leaf, entry_index = found
        del leaf.entries[entry_index]
        self.size -= 1
        self._condense(leaf, path)
        return True

    def _find_leaf(
        self,
        node: Node,
        oid: Hashable,
        rect: Rect,
        path: list[tuple[Node, int]],
    ) -> Optional[tuple[list[tuple[Node, int]], Node, int]]:
        if node.is_leaf:
            for index, entry in enumerate(node.entries):
                if (
                    entry.oid == oid
                    and entry.xl == rect.xl
                    and entry.yl == rect.yl
                    and entry.xu == rect.xu
                    and entry.yu == rect.yu
                ):
                    return (list(path), node, index)
            return None
        for index, entry in enumerate(node.entries):
            if entry.intersects(rect):
                path.append((node, index))
                found = self._find_leaf(entry.child, oid, rect, path)
                if found is not None:
                    return found
                path.pop()
        return None

    def _condense(self, node: Node, path: list[tuple[Node, int]]) -> None:
        orphans: list[tuple[Entry, int]] = []
        while path:
            parent, index = path.pop()
            if len(node.entries) < self.min_fill_of(node):
                del parent.entries[index]
                orphans.extend((entry, node.level) for entry in node.entries)
            else:
                xl, yl, xu, yu = node.mbr_tuple()
                parent.entries[index].set_mbr(xl, yl, xu, yu)
            node = parent
        for entry, level in orphans:
            self._reinserting_levels = set()
            self._insert_entry(entry, level)
        # Shrink the tree when the root holds a single directory entry.
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0].child
            self.height -= 1
        if not self.root.is_leaf and not self.root.entries:
            # Everything was deleted.
            self.root = Node(0)
            self.height = 1

    # ----------------------------------------------------------------- search
    def search(self, window: Rect) -> list[Entry]:
        """All data entries whose MBR intersects *window*."""
        result: list[Entry] = []
        self._search(self.root, window, result)
        return result

    def _search(self, node: Node, window: Rect, result: list[Entry]) -> None:
        if node.is_leaf:
            for entry in node.entries:
                if entry.intersects(window):
                    result.append(entry)
            return
        for entry in node.entries:
            if entry.intersects(window):
                self._search(entry.child, window, result)

    # -------------------------------------------------------------- traversal
    def nodes(self) -> Iterator[Node]:
        """All nodes, breadth-first from the root."""
        frontier = [self.root]
        while frontier:
            next_frontier: list[Node] = []
            for node in frontier:
                yield node
                if not node.is_leaf:
                    next_frontier.extend(node.children())
            frontier = next_frontier

    def nodes_at_level(self, level: int) -> list[Node]:
        return [node for node in self.nodes() if node.level == level]

    def data_entries(self) -> Iterator[Entry]:
        for node in self.nodes():
            if node.is_leaf:
                yield from node.entries

    def mbr(self) -> Rect:
        xl, yl, xu, yu = self.root.mbr_tuple()
        return Rect(xl, yl, xu, yu)

    # --------------------------------------------------------------- validate
    def validate(self) -> None:
        """Check all R*-tree invariants; raises AssertionError on violation.

        * every node's parent entry MBR equals the node's exact MBR,
        * entry counts are within [min_fill, capacity] (except the root),
        * all leaves are at level 0 and depth is uniform,
        * node levels decrease by exactly one per tree edge,
        * ``size`` equals the number of data entries.
        """
        counted = self._validate_node(self.root, self.root.level, is_root=True)
        assert counted == self.size, f"size {self.size} but {counted} data entries"
        assert self.height == self.root.level + 1, "height/root level mismatch"

    def _validate_node(self, node: Node, expected_level: int, is_root: bool) -> int:
        assert node.level == expected_level, "level mismatch on edge"
        capacity = self.capacity_of(node)
        assert len(node.entries) <= capacity, "node over capacity"
        if is_root:
            if not node.is_leaf:
                assert len(node.entries) >= 2, "directory root needs >= 2 entries"
        else:
            assert len(node.entries) >= self.min_fill_of(node), "node underfull"
        if node.is_leaf:
            for entry in node.entries:
                assert entry.is_data, "non-data entry in leaf"
            return len(node.entries)
        count = 0
        for entry in node.entries:
            assert not entry.is_data, "data entry in directory node"
            child = entry.child
            xl, yl, xu, yu = child.mbr_tuple()
            assert (entry.xl, entry.yl, entry.xu, entry.yu) == (xl, yl, xu, yu), (
                "parent entry MBR is not the exact child MBR"
            )
            count += self._validate_node(child, expected_level - 1, is_root=False)
        return count

    def __repr__(self) -> str:
        return (
            f"<RStarTree size={self.size} height={self.height} "
            f"caps=({self.dir_capacity},{self.data_capacity})>"
        )


# -- split helpers -----------------------------------------------------------


def _key_xl(entry: Entry) -> float:
    return entry.xl


def _key_xu(entry: Entry) -> float:
    return entry.xu


def _key_yl(entry: Entry) -> float:
    return entry.yl


def _key_yu(entry: Entry) -> float:
    return entry.yu


def _bound_sweeps(
    ordered: list[Entry],
) -> tuple[list[tuple[float, float, float, float]], list[tuple[float, float, float, float]]]:
    """Cumulative MBRs: prefix[i] bounds ordered[:i+1], suffix[i] bounds
    ordered[i:]."""
    n = len(ordered)
    prefix: list[tuple[float, float, float, float]] = [None] * n  # type: ignore
    xl = yl = float("inf")
    xu = yu = float("-inf")
    for i, e in enumerate(ordered):
        if e.xl < xl:
            xl = e.xl
        if e.yl < yl:
            yl = e.yl
        if e.xu > xu:
            xu = e.xu
        if e.yu > yu:
            yu = e.yu
        prefix[i] = (xl, yl, xu, yu)
    suffix: list[tuple[float, float, float, float]] = [None] * (n + 1)  # type: ignore
    xl = yl = float("inf")
    xu = yu = float("-inf")
    suffix[n] = (xl, yl, xu, yu)
    for i in range(n - 1, -1, -1):
        e = ordered[i]
        if e.xl < xl:
            xl = e.xl
        if e.yl < yl:
            yl = e.yl
        if e.xu > xu:
            xu = e.xu
        if e.yu > yu:
            yu = e.yu
        suffix[i] = (xl, yl, xu, yu)
    return prefix, suffix


def _margin(b: tuple[float, float, float, float]) -> float:
    return (b[2] - b[0]) + (b[3] - b[1])


def _area(b: tuple[float, float, float, float]) -> float:
    return (b[2] - b[0]) * (b[3] - b[1])


def _overlap(
    b1: tuple[float, float, float, float], b2: tuple[float, float, float, float]
) -> float:
    w = min(b1[2], b2[2]) - max(b1[0], b2[0])
    if w <= 0.0:
        return 0.0
    h = min(b1[3], b2[3]) - max(b1[1], b2[1])
    if h <= 0.0:
        return 0.0
    return w * h
