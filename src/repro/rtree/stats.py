"""Tree statistics — the quantities of the paper's Table 1.

Table 1 reports, per tree: height, number of data entries, number of data
pages, number of directory pages, and the number m of intersecting
root-entry pairs (which depends on *both* trees and therefore lives in
:func:`repro.join.tasks.count_root_tasks`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .rstar import RStarTree

__all__ = ["TreeStats", "tree_stats"]


@dataclass(frozen=True)
class TreeStats:
    """Shape summary of one R*-tree."""

    height: int
    data_entries: int
    data_pages: int
    directory_pages: int
    avg_leaf_fill: float
    avg_dir_fill: float
    nodes_per_level: dict[int, int]

    def as_table1_row(self) -> dict[str, int]:
        """The four per-tree rows of Table 1."""
        return {
            "height": self.height,
            "number of data entries": self.data_entries,
            "number of data pages": self.data_pages,
            "number of directory pages": self.directory_pages,
        }


def tree_stats(tree) -> TreeStats:
    """Compute the Table 1 statistics of *tree* in one traversal.

    Accepts either backend: a flat packed tree is measured through its
    node-tree adapter, so the numbers describe the same paged shape the
    simulated-machine paths traverse.
    """
    if hasattr(tree, "as_node_tree"):  # flat packed backend
        tree = tree.as_node_tree()
    data_pages = 0
    dir_pages = 0
    data_entries = 0
    leaf_entry_total = 0
    dir_entry_total = 0
    per_level: dict[int, int] = {}
    for node in tree.nodes():
        per_level[node.level] = per_level.get(node.level, 0) + 1
        if node.is_leaf:
            data_pages += 1
            data_entries += len(node.entries)
            leaf_entry_total += len(node.entries)
        else:
            dir_pages += 1
            dir_entry_total += len(node.entries)
    avg_leaf_fill = (
        leaf_entry_total / (data_pages * tree.data_capacity) if data_pages else 0.0
    )
    avg_dir_fill = (
        dir_entry_total / (dir_pages * tree.dir_capacity) if dir_pages else 0.0
    )
    return TreeStats(
        height=tree.height,
        data_entries=data_entries,
        data_pages=data_pages,
        directory_pages=dir_pages,
        avg_leaf_fill=avg_leaf_fill,
        avg_dir_fill=avg_dir_fill,
        nodes_per_level=per_level,
    )
