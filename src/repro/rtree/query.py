"""Query operations beyond the basic window search.

The paper's future-work section names neighbour and window queries as the
operations a parallel spatial query framework must also support; this
module provides both over the same R*-tree:

* :func:`window_query` — standalone window search with page-access
  accounting (how many nodes were touched), used by examples and benches;
* :func:`nearest_neighbors` — best-first k-NN search over MBR distances.

Both functions are *backend entry points*: they accept either the
pointer-based :class:`~repro.rtree.rstar.RStarTree` or the packed
:class:`~repro.rtree.flat.FlatRTree` (duck-typed on its ``window_entries``
/ ``nearest`` kernels, so importing this module never pulls in numpy) and
produce identical result sets either way.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Hashable, Optional

from ..geometry.rect import Rect
from .entry import Entry
from .rstar import RStarTree

__all__ = ["window_query", "nearest_neighbors", "QueryStats", "oid_order_key"]


class QueryStats:
    """Nodes visited during one query, split by kind."""

    __slots__ = ("directory_nodes", "leaf_nodes")

    def __init__(self):
        self.directory_nodes = 0
        self.leaf_nodes = 0

    @property
    def total_nodes(self) -> int:
        return self.directory_nodes + self.leaf_nodes

    def __repr__(self) -> str:
        return f"QueryStats(dir={self.directory_nodes}, leaf={self.leaf_nodes})"


def oid_order_key(oid: Hashable) -> tuple:
    """A total, backend-independent order over object identifiers.

    Used to break k-NN ties at exactly equal distance: the entry with the
    smaller key wins the last result slot, on every backend, regardless
    of tree structure or insertion order.  Numbers order numerically,
    strings lexicographically; anything else falls back to its ``repr``.
    ``bool`` is excluded from the numeric branch on purpose (``True``
    would collide with ``1``).
    """
    if isinstance(oid, (int, float)) and not isinstance(oid, bool):
        return (0, oid, "")
    if isinstance(oid, str):
        return (1, 0, oid)
    return (2, 0, repr(oid))


def window_query(
    tree, window: Rect, stats: Optional[QueryStats] = None
) -> list[Entry]:
    """All data entries intersecting *window*, with node-visit accounting.

    The entry *set* is backend-independent; the order is the traversal
    order of the chosen backend (depth-first here, ascending packed order
    on the flat backend).
    """
    if hasattr(tree, "window_entries"):  # flat packed backend
        return tree.window_entries(window, stats=stats)
    result: list[Entry] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if stats is not None:
            if node.is_leaf:
                stats.leaf_nodes += 1
            else:
                stats.directory_nodes += 1
        if node.is_leaf:
            for entry in node.entries:
                if entry.intersects(window):
                    result.append(entry)
        else:
            for entry in node.entries:
                if entry.intersects(window):
                    stack.append(entry.child)
    return result


def nearest_neighbors(
    tree, x: float, y: float, k: int = 1
) -> list[tuple[float, Entry]]:
    """The *k* data entries whose MBRs are nearest to point ``(x, y)``.

    Classic best-first search: a priority queue ordered by minimum MBR
    distance; directory entries expand, data entries pop as results.
    Returns ``(distance, entry)`` pairs in non-decreasing distance order.

    The result — including its order — is deterministic and identical on
    every backend: ties at exactly equal distance resolve by
    :func:`oid_order_key`.  The heap orders items by ``(distance, kind,
    tie)`` with nodes (kind 0) ahead of data entries (kind 1), so any
    subtree whose minimum distance ties a candidate entry is expanded
    *before* that entry is emitted; entries therefore pop in exact
    ``(distance, oid key)`` order.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if hasattr(tree, "nearest"):  # flat packed backend
        return tree.nearest(x, y, k)
    if tree.size == 0:
        return []
    counter = itertools.count()  # unique seq: strict weak order for heapq
    heap: list[tuple] = [(0.0, 0, 0, next(counter), tree.root)]
    results: list[tuple[float, Entry]] = []
    while heap and len(results) < k:
        distance, kind, _tie, _seq, item = heapq.heappop(heap)
        if kind == 1:
            results.append((distance, item))
            continue
        for entry in item.entries:
            d = _min_distance(entry, x, y)
            if item.is_leaf:
                heapq.heappush(
                    heap, (d, 1, oid_order_key(entry.oid), next(counter), entry)
                )
            else:
                heapq.heappush(
                    heap, (d, 0, next(counter), next(counter), entry.child)
                )
    return results


def _min_distance(entry: Entry, x: float, y: float) -> float:
    dx = max(entry.xl - x, x - entry.xu, 0.0)
    dy = max(entry.yl - y, y - entry.yu, 0.0)
    # math.sqrt (correctly rounded, like np.sqrt) rather than ** 0.5
    # (libm pow, off by an ulp for some inputs): backend parity demands
    # bit-identical distances.
    return math.sqrt(dx * dx + dy * dy)
