"""Query operations beyond the basic window search.

The paper's future-work section names neighbour and window queries as the
operations a parallel spatial query framework must also support; this
module provides both over the same R*-tree:

* :func:`window_query` — standalone window search with page-access
  accounting (how many nodes were touched), used by examples and benches;
* :func:`nearest_neighbors` — best-first k-NN search over MBR distances.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from ..geometry.rect import Rect
from .entry import Entry
from .rstar import RStarTree

__all__ = ["window_query", "nearest_neighbors", "QueryStats"]


class QueryStats:
    """Nodes visited during one query, split by kind."""

    __slots__ = ("directory_nodes", "leaf_nodes")

    def __init__(self):
        self.directory_nodes = 0
        self.leaf_nodes = 0

    @property
    def total_nodes(self) -> int:
        return self.directory_nodes + self.leaf_nodes

    def __repr__(self) -> str:
        return f"QueryStats(dir={self.directory_nodes}, leaf={self.leaf_nodes})"


def window_query(
    tree: RStarTree, window: Rect, stats: Optional[QueryStats] = None
) -> list[Entry]:
    """All data entries intersecting *window*, with node-visit accounting."""
    result: list[Entry] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if stats is not None:
            if node.is_leaf:
                stats.leaf_nodes += 1
            else:
                stats.directory_nodes += 1
        if node.is_leaf:
            for entry in node.entries:
                if entry.intersects(window):
                    result.append(entry)
        else:
            for entry in node.entries:
                if entry.intersects(window):
                    stack.append(entry.child)
    return result


def nearest_neighbors(
    tree: RStarTree, x: float, y: float, k: int = 1
) -> list[tuple[float, Entry]]:
    """The *k* data entries whose MBRs are nearest to point ``(x, y)``.

    Classic best-first search: a priority queue ordered by minimum MBR
    distance; directory entries expand, data entries pop as results.
    Returns ``(distance, entry)`` pairs in non-decreasing distance order.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if tree.size == 0:
        return []
    counter = itertools.count()  # tie-break: strict weak order for heapq
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, tree.root)
    ]
    results: list[tuple[float, Entry]] = []
    while heap and len(results) < k:
        distance, _, is_entry, item = heapq.heappop(heap)
        if is_entry:
            results.append((distance, item))
            continue
        for entry in item.entries:
            d = _min_distance(entry, x, y)
            if item.is_leaf:
                heapq.heappush(heap, (d, next(counter), True, entry))
            else:
                heapq.heappush(heap, (d, next(counter), False, entry.child))
    return results


def _min_distance(entry: Entry, x: float, y: float) -> float:
    dx = max(entry.xl - x, x - entry.xu, 0.0)
    dy = max(entry.yl - y, y - entry.yu, 0.0)
    return (dx * dx + dy * dy) ** 0.5
