"""R*-tree entries.

An entry couples an MBR with either an object identifier (data entry, 156
bytes on disk in the paper's layout) or a child node (directory entry, 40
bytes).  The MBR coordinates are stored flat as ``xl, yl, xu, yu`` so that
entries participate directly in the plane-sweep algorithms of
:mod:`repro.geometry.planesweep` without any wrapping.
"""

from __future__ import annotations

from typing import Optional

from ..geometry.rect import Rect

__all__ = ["Entry"]


class Entry:
    """One slot of an R*-tree node.

    Exactly one of ``child`` (directory entry) and ``oid`` (data entry) is
    set.  The MBR is mutable because inserts and deletions adjust ancestor
    rectangles in place.
    """

    __slots__ = ("xl", "yl", "xu", "yu", "child", "oid")

    def __init__(
        self,
        xl: float,
        yl: float,
        xu: float,
        yu: float,
        child: Optional["object"] = None,
        oid=None,
    ):
        if (child is None) == (oid is None):
            raise ValueError("an entry is either a directory entry or a data entry")
        self.xl = xl
        self.yl = yl
        self.xu = xu
        self.yu = yu
        self.child = child
        self.oid = oid

    @classmethod
    def for_object(cls, rect: Rect, oid) -> "Entry":
        """A data entry: MBR plus pointer to the exact representation."""
        return cls(rect.xl, rect.yl, rect.xu, rect.yu, oid=oid)

    @classmethod
    def for_child(cls, node) -> "Entry":
        """A directory entry covering *node* (MBR computed from the node)."""
        xl, yl, xu, yu = node.mbr_tuple()
        return cls(xl, yl, xu, yu, child=node)

    @property
    def is_data(self) -> bool:
        return self.oid is not None

    @property
    def rect(self) -> Rect:
        return Rect(self.xl, self.yl, self.xu, self.yu)

    def set_mbr(self, xl: float, yl: float, xu: float, yu: float) -> None:
        self.xl = xl
        self.yl = yl
        self.xu = xu
        self.yu = yu

    # -- geometry helpers used on the hot insertion path ----------------------
    def area(self) -> float:
        return (self.xu - self.xl) * (self.yu - self.yl)

    def margin(self) -> float:
        return (self.xu - self.xl) + (self.yu - self.yl)

    def intersects(self, other) -> bool:
        """*other* is anything with ``xl, yl, xu, yu``."""
        return (
            self.xl <= other.xu
            and other.xl <= self.xu
            and self.yl <= other.yu
            and other.yl <= self.yu
        )

    def overlap_area(self, other) -> float:
        w = min(self.xu, other.xu) - max(self.xl, other.xl)
        if w <= 0.0:
            return 0.0
        h = min(self.yu, other.yu) - max(self.yl, other.yl)
        if h <= 0.0:
            return 0.0
        return w * h

    def enlargement(self, other) -> float:
        """Area growth if this entry's MBR had to absorb *other*."""
        xl = self.xl if self.xl < other.xl else other.xl
        yl = self.yl if self.yl < other.yl else other.yl
        xu = self.xu if self.xu > other.xu else other.xu
        yu = self.yu if self.yu > other.yu else other.yu
        return (xu - xl) * (yu - yl) - self.area()

    def extend(self, other) -> None:
        """Grow this entry's MBR to cover *other* in place."""
        if other.xl < self.xl:
            self.xl = other.xl
        if other.yl < self.yl:
            self.yl = other.yl
        if other.xu > self.xu:
            self.xu = other.xu
        if other.yu > self.yu:
            self.yu = other.yu

    def center(self) -> tuple[float, float]:
        return ((self.xl + self.xu) / 2.0, (self.yl + self.yu) / 2.0)

    def __repr__(self) -> str:
        kind = f"oid={self.oid!r}" if self.is_data else "dir"
        return f"Entry(({self.xl:g}, {self.yl:g}, {self.xu:g}, {self.yu:g}), {kind})"
