"""The original R-tree of Guttman [Gut 84] — the baseline access method.

The paper builds on R*-trees because [BKS 93] showed them to be the most
efficient R-tree variant for spatial joins.  To make that design choice
measurable, this module provides Guttman's original dynamic R-tree with
both published node-split strategies:

* **quadratic split** — pick the pair of entries that would waste the most
  area as seeds, then assign the remaining entries by greatest preference
  difference;
* **linear split** — pick seeds by the greatest normalised separation per
  axis, then assign remaining entries by least enlargement.

Insertion uses Guttman's ChooseLeaf (least enlargement, ties by smallest
area); there is no forced reinsertion and no overlap minimisation — the
differences to [BKSS 90] that the R*-tree's better join I/O comes from.

The tree shares :class:`~repro.rtree.node.Node` / entry layout, search and
pagination with the R*-tree, so joins and benches run on either
interchangeably.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from ..geometry.rect import Rect
from ..storage.page import DEFAULT_STORAGE, StorageParams
from .entry import Entry
from .node import Node

__all__ = ["GuttmanRTree"]


class GuttmanRTree:
    """Guttman's R-tree with quadratic (default) or linear splits."""

    def __init__(
        self,
        storage: Optional[StorageParams] = None,
        *,
        dir_capacity: Optional[int] = None,
        data_capacity: Optional[int] = None,
        min_fill: float = 0.4,
        split: str = "quadratic",
    ):
        layout = storage or DEFAULT_STORAGE
        self.dir_capacity = dir_capacity if dir_capacity is not None else layout.dir_capacity
        self.data_capacity = (
            data_capacity if data_capacity is not None else layout.data_capacity
        )
        if self.dir_capacity < 4 or self.data_capacity < 4:
            raise ValueError("node capacities below 4 make splits degenerate")
        if split not in ("quadratic", "linear"):
            raise ValueError("split must be 'quadratic' or 'linear'")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.split_strategy = split
        self.min_dir = max(2, int(self.dir_capacity * min_fill))
        self.min_data = max(2, int(self.data_capacity * min_fill))
        self.root = Node(0)
        self.height = 1
        self.size = 0

    # -- shared-surface helpers (same interface as RStarTree) ----------------
    def __len__(self) -> int:
        return self.size

    def capacity_of(self, node: Node) -> int:
        return self.data_capacity if node.is_leaf else self.dir_capacity

    def min_fill_of(self, node: Node) -> int:
        return self.min_data if node.is_leaf else self.min_dir

    # ----------------------------------------------------------------- insert
    def insert(self, oid: Hashable, rect: Rect) -> None:
        """Guttman's Insert: ChooseLeaf, add, split upward as needed."""
        entry = Entry.for_object(rect, oid)
        path: list[tuple[Node, int]] = []
        node = self.root
        while not node.is_leaf:
            index = self._choose_subtree(node, entry)
            parent_entry = node.entries[index]
            parent_entry.extend(entry)
            path.append((node, index))
            node = parent_entry.child
        node.entries.append(entry)
        self.size += 1
        self._split_upward(node, path)

    def _choose_subtree(self, node: Node, entry: Entry) -> int:
        """ChooseLeaf criterion: least enlargement, ties by least area."""
        best_index = 0
        best_enlargement = float("inf")
        best_area = float("inf")
        for index, candidate in enumerate(node.entries):
            enlargement = candidate.enlargement(entry)
            area = candidate.area()
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_index = index
                best_enlargement = enlargement
                best_area = area
        return best_index

    def _split_upward(self, node: Node, path: list[tuple[Node, int]]) -> None:
        while len(node.entries) > self.capacity_of(node):
            sibling = self._split(node)
            if not path:
                new_root = Node(node.level + 1)
                new_root.entries.append(Entry.for_child(node))
                new_root.entries.append(Entry.for_child(sibling))
                self.root = new_root
                self.height += 1
                return
            parent, index = path.pop()
            xl, yl, xu, yu = node.mbr_tuple()
            parent.entries[index].set_mbr(xl, yl, xu, yu)
            parent.entries.append(Entry.for_child(sibling))
            node = parent

    # ------------------------------------------------------------------ split
    def _split(self, node: Node) -> Node:
        entries = node.entries
        if self.split_strategy == "quadratic":
            seed_a, seed_b = self._quadratic_seeds(entries)
        else:
            seed_a, seed_b = self._linear_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        bounds_a = _mbr_of(group_a)
        bounds_b = _mbr_of(group_b)
        remaining = [
            e for i, e in enumerate(entries) if i != seed_a and i != seed_b
        ]
        minimum = self.min_fill_of(node)

        while remaining:
            # Forced assignment when one group must absorb the rest to
            # reach the minimum fill (Guttman's PickNext loop exit).
            if len(group_a) + len(remaining) <= minimum:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= minimum:
                group_b.extend(remaining)
                remaining = []
                break
            if self.split_strategy == "quadratic":
                index = self._pick_next(remaining, bounds_a, bounds_b)
            else:
                index = 0  # linear split assigns in arbitrary (input) order
            entry = remaining.pop(index)
            grow_a = _enlargement(bounds_a, entry)
            grow_b = _enlargement(bounds_b, entry)
            if grow_a < grow_b or (
                grow_a == grow_b
                and (
                    _area(bounds_a) < _area(bounds_b)
                    or (
                        _area(bounds_a) == _area(bounds_b)
                        and len(group_a) <= len(group_b)
                    )
                )
            ):
                group_a.append(entry)
                bounds_a = _extend(bounds_a, entry)
            else:
                group_b.append(entry)
                bounds_b = _extend(bounds_b, entry)

        node.entries = group_a
        return Node(node.level, group_b)

    @staticmethod
    def _quadratic_seeds(entries: list[Entry]) -> tuple[int, int]:
        """PickSeeds: the pair wasting the most area if grouped together."""
        worst = -float("inf")
        seeds = (0, 1)
        for i in range(len(entries)):
            e1 = entries[i]
            for j in range(i + 1, len(entries)):
                e2 = entries[j]
                combined = (
                    (max(e1.xu, e2.xu) - min(e1.xl, e2.xl))
                    * (max(e1.yu, e2.yu) - min(e1.yl, e2.yl))
                )
                waste = combined - e1.area() - e2.area()
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    @staticmethod
    def _linear_seeds(entries: list[Entry]) -> tuple[int, int]:
        """LinearPickSeeds: greatest normalised separation over both axes."""
        best = (-float("inf"), 0, 1)
        for low_key, high_key, min_key, max_key in (
            (lambda e: e.xl, lambda e: e.xu, lambda e: e.xl, lambda e: e.xu),
            (lambda e: e.yl, lambda e: e.yu, lambda e: e.yl, lambda e: e.yu),
        ):
            highest_low = max(range(len(entries)), key=lambda i: low_key(entries[i]))
            lowest_high = min(range(len(entries)), key=lambda i: high_key(entries[i]))
            if highest_low == lowest_high:
                continue
            width = max(max_key(e) for e in entries) - min(
                min_key(e) for e in entries
            )
            separation = low_key(entries[highest_low]) - high_key(
                entries[lowest_high]
            )
            normalised = separation / width if width > 0 else 0.0
            if normalised > best[0]:
                best = (normalised, lowest_high, highest_low)
        _, a, b = best
        if a == b:  # fully overlapping degenerate input
            b = (a + 1) % len(entries)
        return (a, b)

    @staticmethod
    def _pick_next(
        remaining: list[Entry],
        bounds_a: tuple[float, float, float, float],
        bounds_b: tuple[float, float, float, float],
    ) -> int:
        """PickNext: the entry with the strongest group preference."""
        best_index = 0
        best_difference = -1.0
        for index, entry in enumerate(remaining):
            difference = abs(
                _enlargement(bounds_a, entry) - _enlargement(bounds_b, entry)
            )
            if difference > best_difference:
                best_difference = difference
                best_index = index
        return best_index

    # ----------------------------------------------------------------- search
    def search(self, window: Rect) -> list[Entry]:
        """All data entries whose MBR intersects *window*."""
        result: list[Entry] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if entry.intersects(window):
                    if node.is_leaf:
                        result.append(entry)
                    else:
                        stack.append(entry.child)
        return result

    # -------------------------------------------------------------- traversal
    def nodes(self) -> Iterator[Node]:
        frontier = [self.root]
        while frontier:
            next_frontier: list[Node] = []
            for node in frontier:
                yield node
                if not node.is_leaf:
                    next_frontier.extend(node.children())
            frontier = next_frontier

    def mbr(self) -> Rect:
        xl, yl, xu, yu = self.root.mbr_tuple()
        return Rect(xl, yl, xu, yu)

    # --------------------------------------------------------------- validate
    def validate(self) -> None:
        """Same structural invariants as the R*-tree."""
        counted = self._validate_node(self.root, self.root.level, is_root=True)
        assert counted == self.size, f"size {self.size} but {counted} data entries"
        assert self.height == self.root.level + 1

    def _validate_node(self, node: Node, expected_level: int, is_root: bool) -> int:
        assert node.level == expected_level
        assert len(node.entries) <= self.capacity_of(node)
        if not is_root:
            assert len(node.entries) >= self.min_fill_of(node)
        elif not node.is_leaf:
            assert len(node.entries) >= 2
        if node.is_leaf:
            for entry in node.entries:
                assert entry.is_data
            return len(node.entries)
        count = 0
        for entry in node.entries:
            assert not entry.is_data
            child = entry.child
            assert (entry.xl, entry.yl, entry.xu, entry.yu) == child.mbr_tuple()
            count += self._validate_node(child, expected_level - 1, is_root=False)
        return count

    def __repr__(self) -> str:
        return (
            f"<GuttmanRTree size={self.size} height={self.height} "
            f"split={self.split_strategy!r}>"
        )


# -- tuple-MBR helpers ---------------------------------------------------------


def _mbr_of(entries: list[Entry]) -> tuple[float, float, float, float]:
    e = entries[0]
    xl, yl, xu, yu = e.xl, e.yl, e.xu, e.yu
    for e in entries[1:]:
        if e.xl < xl:
            xl = e.xl
        if e.yl < yl:
            yl = e.yl
        if e.xu > xu:
            xu = e.xu
        if e.yu > yu:
            yu = e.yu
    return (xl, yl, xu, yu)


def _area(b: tuple[float, float, float, float]) -> float:
    return (b[2] - b[0]) * (b[3] - b[1])


def _enlargement(b: tuple[float, float, float, float], entry: Entry) -> float:
    xl = b[0] if b[0] < entry.xl else entry.xl
    yl = b[1] if b[1] < entry.yl else entry.yl
    xu = b[2] if b[2] > entry.xu else entry.xu
    yu = b[3] if b[3] > entry.yu else entry.yu
    return (xu - xl) * (yu - yl) - _area(b)


def _extend(
    b: tuple[float, float, float, float], entry: Entry
) -> tuple[float, float, float, float]:
    return (
        b[0] if b[0] < entry.xl else entry.xl,
        b[1] if b[1] < entry.yl else entry.yl,
        b[2] if b[2] > entry.xu else entry.xu,
        b[3] if b[3] > entry.yu else entry.yu,
    )
