"""Pagination: mapping R*-tree nodes onto numbered disk pages.

The simulated disk array places pages on disks by page number modulo the
number of disks (section 4.2), so node → page-number assignment matters
only in that it is *spatially blind*.  We number the nodes of each tree
breadth-first (root first) and continue the numbering across trees, giving
every node of the join a globally unique page id.
"""

from __future__ import annotations

from typing import Iterator

from ..storage.page import PageKind
from .node import Node
from .rstar import RStarTree

__all__ = ["PageStore"]


class PageStore:
    """Registry of all paginated trees of one join."""

    def __init__(self):
        self._node_by_page: dict[int, Node] = {}
        self._tree_by_page: dict[int, int] = {}
        self._trees: dict[int, RStarTree] = {}
        self._next_page = 0

    def add_tree(self, tree_id: int, tree: RStarTree) -> None:
        """Assign page ids to every node of *tree* (breadth-first)."""
        if tree_id in self._trees:
            raise ValueError(f"tree id {tree_id} already paginated")
        self._trees[tree_id] = tree
        for node in tree.nodes():
            node.page_id = self._next_page
            self._node_by_page[self._next_page] = node
            self._tree_by_page[self._next_page] = tree_id
            self._next_page += 1

    def alias_tree(self, tree_id: int, existing_id: int) -> None:
        """Register *tree_id* as a second name for an already paginated
        tree — the self-join case, where both join inputs are one tree
        and its pages must not be numbered (and charged) twice."""
        if tree_id in self._trees:
            raise ValueError(f"tree id {tree_id} already paginated")
        self._trees[tree_id] = self._trees[existing_id]

    def node(self, page_id: int) -> Node:
        return self._node_by_page[page_id]

    def tree_of(self, page_id: int) -> int:
        return self._tree_by_page[page_id]

    def tree(self, tree_id: int) -> RStarTree:
        return self._trees[tree_id]

    def kind(self, page_id: int) -> PageKind:
        return PageKind.DATA if self._node_by_page[page_id].is_leaf else PageKind.DIRECTORY

    def depth(self, tree_id: int, node: Node) -> int:
        """Depth from the root (0 = root) — what the path buffer indexes."""
        return self._trees[tree_id].height - 1 - node.level

    @property
    def page_count(self) -> int:
        return self._next_page

    def tree_heights(self) -> dict[int, int]:
        return {tree_id: tree.height for tree_id, tree in self._trees.items()}

    def pages(self) -> Iterator[int]:
        return iter(range(self._next_page))

    def __repr__(self) -> str:
        return f"<PageStore {len(self._trees)} trees, {self._next_page} pages>"
