"""Recovery knobs: lease timing, journal placement, redispatch bounds.

One :class:`RecoveryConfig` parametrises both recovery paths:

* the **simulated** path (:func:`repro.join.parallel.parallel_spatial_join`
  with ``ParallelJoinConfig.recovery`` set), where every duration is in
  simulated seconds and the lease clock is the simulation clock;
* the **fork** path (:func:`repro.join.mp.multiprocessing_join` /
  :func:`repro.recovery.coordinator.run_recoverable_join`), where the
  durations are wall seconds and the clock is :func:`wall_clock`.

The deterministic components (``sim``/``join``/…, see DET001) never read
the wall clock themselves — they take an injected clock callable, and the
wall-clock default lives here, in the one component that is allowed to
own real time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["RecoveryConfig", "wall_clock"]


def wall_clock() -> Callable[[], float]:
    """The injected-clock default for the fork path: monotonic wall time.

    Returned as a callable (not called here) so lease deadlines in
    ``join/mp.py`` stay testable — tests substitute a fake clock.
    """
    return time.monotonic


@dataclass(frozen=True)
class RecoveryConfig:
    """Lease timing and journal parameters of one recoverable join.

    ``lease_s`` is the ownership deadline: a task (sim) or chunk (fork)
    whose lease goes that long without a heartbeat renewal is declared
    orphaned and returned to the queue.  ``heartbeat_s`` throttles
    renewals (a holder renews at natural progress points — pair
    boundaries in-sim, per-task progress counters under fork — but emits
    at most one renewal per interval).  ``sweep_s`` is how often the
    sweeper looks for expired leases (and the parent's poll interval
    under fork).
    """

    lease_s: float = 2.0
    heartbeat_s: float = 0.5
    sweep_s: float = 0.25
    #: Append-only JSONL journal; ``None`` keeps the join memory-only
    #: (leases and orphan recovery still work, but a dead parent cannot
    #: resume).
    journal_path: Optional[str] = None
    #: fsync the journal after every append (durable against power loss,
    #: slower); CRC framing tolerates torn tails either way.
    fsync: bool = False
    #: Fork path: tasks per lease-sized chunk.  ``None`` derives
    #: ``ceil(tasks / (4 * processes))`` so one worker death loses about
    #: a quarter of one worker's share instead of its whole range.
    chunk_tasks: Optional[int] = None
    #: Fork path: after this many expired leases for one chunk, the
    #: parent executes the chunk inline instead of redispatching —
    #: guaranteed progress even with a wedged pool.
    max_redispatch: int = 5
    #: Test/bench hook: abort the fork coordinator (raising
    #: :class:`~repro.recovery.coordinator.JoinInterrupted`) once this
    #: many chunks committed — emulates the parent process dying mid-join
    #: without killing the caller.
    stop_after_commits: Optional[int] = None

    def __post_init__(self):
        if self.lease_s <= 0 or self.heartbeat_s <= 0 or self.sweep_s <= 0:
            raise ValueError("lease_s, heartbeat_s and sweep_s must be > 0")
        if self.heartbeat_s > self.lease_s:
            raise ValueError(
                "heartbeat_s must not exceed lease_s (renewals could "
                "never keep a healthy lease alive)"
            )
        if self.chunk_tasks is not None and self.chunk_tasks < 1:
            raise ValueError("chunk_tasks must be >= 1 (or None)")
        if self.max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")
        if self.stop_after_commits is not None and self.stop_after_commits < 0:
            raise ValueError("stop_after_commits must be >= 0 (or None)")
