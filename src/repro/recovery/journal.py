"""The durable join journal: append-only, CRC-framed, torn-write-tolerant.

One JSONL file records the life of a recoverable join: a ``meta`` header
(task count, chunking, a task-list fingerprint), one ``grant`` per lease
and one ``complete`` — carrying the full result-row batch — per committed
unit of work.  A process that dies mid-join leaves the journal behind;
:func:`~repro.recovery.coordinator.resume_join` replays the completed
records and re-runs only the orphans.

Every record is framed as::

    <crc32 hex, 8 chars> <compact json>\\n

with the checksum (the same CRC-32 as the page-integrity layer,
:func:`repro.storage.page.page_checksum`) computed over the JSON bytes.
A write torn by a crash — or by the fault injector's
``FLT_INJECT_TORN_APPEND`` — leaves a partial last line that fails the
frame check and is skipped (counted and traced as ``JNL_TORN_DETECTED``),
never mistaken for data.  Appending to a file whose tail is torn first
writes a newline, so the garbage is terminated and exactly one record is
lost per tear.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..storage.page import page_checksum
from ..trace import NULL_TRACER, EventKind, Tracer

__all__ = ["JournalScan", "JoinJournal", "scan_journal"]


@dataclass
class JournalScan:
    """Outcome of reading one journal file."""

    records: List[dict] = field(default_factory=list)
    torn: int = 0

    @property
    def meta(self) -> Optional[dict]:
        for record in self.records:
            if record.get("type") == "meta":
                return record
        return None

    def completions(self) -> dict:
        """First ``complete`` record per unit (``task`` key), id → record.

        First-wins: a duplicate completion (a hung worker delivering after
        its chunk was re-run and re-journalled) never overrides the rows
        already accounted for.
        """
        out: dict = {}
        for record in self.records:
            if record.get("type") == "complete":
                out.setdefault(record.get("task"), record)
        return out

    def grants(self) -> List[dict]:
        return [r for r in self.records if r.get("type") == "grant"]


def _decode_line(line: str) -> Optional[dict]:
    """The record framed in *line*, or None when the frame is invalid."""
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, body = line[:8], line[9:]
    try:
        crc = int(crc_text, 16)
    except ValueError:
        return None
    if page_checksum(body.encode("utf-8")) != crc:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def scan_journal(path: str, tracer: Tracer = NULL_TRACER) -> JournalScan:
    """Read every intact record of *path*, tolerating torn writes.

    Missing file → empty scan.  Each line either frames a valid record or
    counts as one torn record; a torn line in the middle of the file (a
    tear followed by later appends) is skipped and scanning continues.
    """
    scan = JournalScan()
    if not os.path.exists(path):
        return scan
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            stripped = line.rstrip("\n")
            if not stripped:
                continue
            record = _decode_line(stripped)
            if record is None:
                scan.torn += 1
                if tracer.enabled:
                    tracer.emit(EventKind.JNL_TORN_DETECTED, bytes=len(stripped))
            else:
                scan.records.append(record)
    if tracer.enabled:
        tracer.emit(
            EventKind.JNL_SCANNED,
            records=len(scan.records),
            torn=scan.torn,
            path=path,
        )
    return scan


class JoinJournal:
    """Append handle over one journal file.

    Construction scans whatever the file already holds (``.existing``, for
    resume) and opens it for appending.  ``injector`` — when given — may
    tear individual appends (``FaultInjector.torn_append``), emulating a
    crash mid-write; the next append self-heals by terminating the torn
    line first.
    """

    def __init__(
        self,
        path: str,
        tracer: Tracer = NULL_TRACER,
        injector=None,
        fsync: bool = False,
    ):
        self.path = path
        self.tracer = tracer
        self.injector = injector
        self.fsync = fsync
        self.existing = scan_journal(path, tracer=tracer)
        self.appends = 0
        self.torn_appends = 0
        self._needs_newline = self._tail_unterminated(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "ab")

    @staticmethod
    def _tail_unterminated(path: str) -> bool:
        try:
            size = os.path.getsize(path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    def append(self, type: str, **fields: Any) -> None:
        """Append one CRC-framed record of *type* (torn under injection)."""
        if self._handle.closed:
            raise ValueError("append to a closed journal")
        record = {"type": type, **fields}
        body = json.dumps(record, separators=(",", ":"), sort_keys=True)
        data = f"{page_checksum(body.encode('utf-8')):08x} {body}\n".encode(
            "utf-8"
        )
        torn_at = (
            self.injector.torn_append(len(data))
            if self.injector is not None
            else None
        )
        if self._needs_newline:
            self._handle.write(b"\n")
            self._needs_newline = False
        if torn_at is not None:
            data = data[:torn_at]
            self.torn_appends += 1
            self._needs_newline = not data.endswith(b"\n")
        self._handle.write(data)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.appends += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.JNL_APPENDED,
                record=type,
                bytes=len(data),
                torn=int(torn_at is not None),
            )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JoinJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<JoinJournal {self.path!r} appends={self.appends} "
            f"existing={len(self.existing.records)} torn={self.torn_appends}>"
        )
