"""Crash-and-resume orchestration of the fork-based join.

:func:`run_recoverable_join` starts (or continues) a journalled
fault-tolerant join; :func:`resume_join` is the restart path — point it
at the journal a dead run left behind and it replays every completed
chunk's result batch and re-runs only the orphans, returning the
exactly-once multiset plus a :class:`ResumeReport` of what was replayed
versus re-executed.

The join engine itself lives in :mod:`repro.join.mp`
(:func:`~repro.join.mp.fault_tolerant_join`); it is imported lazily so
``repro.recovery`` stays importable from inside :mod:`repro.join`
without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

from ..trace import NULL_TRACER, Tracer
from .config import RecoveryConfig

__all__ = ["JoinInterrupted", "ResumeReport", "run_recoverable_join", "resume_join"]


class JoinInterrupted(RuntimeError):
    """The join was aborted mid-run (``RecoveryConfig.stop_after_commits``
    test hook) — the journal on disk holds every chunk committed so far
    and :func:`resume_join` picks up from there."""


@dataclass
class ResumeReport:
    """What a resumed join did."""

    #: The exactly-once result multiset (replayed + re-run rows).
    pairs: List[tuple]
    #: Chunks whose result batches were adopted from the journal.
    replayed_chunks: int
    #: Chunks (re-)executed by this run.
    rerun_chunks: int
    #: Engine statistics (lease/ledger counters, redispatches, ...).
    stats: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.stats.get("chunks", 0) == self.replayed_chunks + self.rerun_chunks

    def __repr__(self) -> str:
        return (
            f"ResumeReport({len(self.pairs)} pairs, "
            f"replayed={self.replayed_chunks}, rerun={self.rerun_chunks})"
        )


def _normalised(
    recovery: Optional[RecoveryConfig], journal_path: str
) -> RecoveryConfig:
    import dataclasses

    if recovery is None:
        return RecoveryConfig(journal_path=journal_path)
    if recovery.journal_path != journal_path:
        return dataclasses.replace(recovery, journal_path=journal_path)
    return recovery


def run_recoverable_join(
    tree_r,
    tree_s,
    *,
    journal_path: str,
    processes: Optional[int] = None,
    recovery: Optional[RecoveryConfig] = None,
    faults=None,
    geometry_r=None,
    geometry_s=None,
    timeout_s: Optional[float] = None,
    tracer: Tracer = NULL_TRACER,
) -> ResumeReport:
    """One journalled fault-tolerant join (fresh or continuing).

    Identical to :func:`resume_join` — starting a join against an empty
    journal and resuming one against a populated journal are the same
    operation; the names exist so call sites read as what they mean.
    Raises :class:`JoinInterrupted` when ``recovery.stop_after_commits``
    fires (the journal survives for the next call).
    """
    from ..join.mp import fault_tolerant_join

    pairs, stats = fault_tolerant_join(
        tree_r,
        tree_s,
        processes,
        geometry_r=geometry_r,
        geometry_s=geometry_s,
        timeout_s=timeout_s,
        recovery=_normalised(recovery, journal_path),
        faults=faults,
        tracer=tracer,
    )
    return ResumeReport(
        pairs=pairs,
        replayed_chunks=stats.get("replayed_chunks", 0),
        rerun_chunks=stats.get("tasks_committed", 0),
        stats=stats,
    )


def resume_join(
    journal_path: str,
    tree_r,
    tree_s,
    *,
    processes: Optional[int] = None,
    recovery: Optional[RecoveryConfig] = None,
    faults=None,
    geometry_r=None,
    geometry_s=None,
    timeout_s: Optional[float] = None,
    tracer: Tracer = NULL_TRACER,
) -> ResumeReport:
    """Resume a killed join from its journal: replay completed chunks,
    re-run only the orphans, return the exactly-once result.

    The trees must be the same inputs the original run joined — the
    journal's ``meta`` fingerprint is checked and a mismatch raises
    ``ValueError`` instead of silently mis-mapping chunk ids.
    """
    return run_recoverable_join(
        tree_r,
        tree_s,
        journal_path=journal_path,
        processes=processes,
        recovery=recovery,
        faults=faults,
        geometry_r=geometry_r,
        geometry_s=geometry_s,
        timeout_s=timeout_s,
        tracer=tracer,
    )
