"""Fault-tolerant parallel join: leases, orphan recovery, durable resume.

The paper's machine never loses a processor; this layer makes the
reproduction survive losing any of them — or the whole process:

* :mod:`~repro.recovery.lease` — lease-based task ownership with
  heartbeat renewal; a holder that stops renewing is declared dead and
  its task returns to the queue (at-least-once re-execution);
* :mod:`~repro.recovery.ledger` — the exactly-once result ledger:
  first completion per task commits, duplicates are dropped;
* :mod:`~repro.recovery.journal` — append-only CRC-framed JSONL journal
  of grants and completed result batches, torn-write-tolerant;
* :mod:`~repro.recovery.coordinator` — ``resume_join``: replay a dead
  run's journal, re-run only the orphans.

Both execution paths use the same pieces: the simulated join
(``ParallelJoinConfig.recovery``) with the simulation clock, and the
fork-based ``multiprocessing_join`` with the wall clock.  The event
stream (``LSE_*``/``JNL_*``) is reconciled by
:class:`repro.trace.checkers.RecoveryAccountingChecker`.
"""

from .config import RecoveryConfig, wall_clock
from .coordinator import (
    JoinInterrupted,
    ResumeReport,
    resume_join,
    run_recoverable_join,
)
from .journal import JoinJournal, JournalScan, scan_journal
from .lease import Lease, LeaseError, LeaseState, LeaseTable
from .ledger import ResultLedger

__all__ = [
    "RecoveryConfig",
    "wall_clock",
    "Lease",
    "LeaseError",
    "LeaseState",
    "LeaseTable",
    "JoinJournal",
    "JournalScan",
    "scan_journal",
    "ResultLedger",
    "JoinInterrupted",
    "ResumeReport",
    "resume_join",
    "run_recoverable_join",
]
