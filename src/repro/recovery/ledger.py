"""The exactly-once result ledger.

Lease expiry gives the join *at-least-once* task execution: a task whose
holder was merely slow (not dead) can be re-run while the original
execution still finishes, and a resumed join re-reads result batches the
journal already holds.  The ledger turns that into an *exactly-once*
output multiset: the first completed execution of each task commits its
row batch; every later batch for the same task is dropped (traced as
``LSE_DUP_DROPPED``) — and a batch replayed from the journal
(``JNL_REPLAYED``) counts as that task's committed execution, so a resume
never re-runs or double-counts it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..trace import NULL_TRACER, EventKind, Tracer

__all__ = ["ResultLedger"]


class ResultLedger:
    """First-completion-wins row accounting, keyed by task/chunk id."""

    def __init__(self, tracer: Tracer = NULL_TRACER):
        self.tracer = tracer
        self._rows: Dict[Hashable, List[Tuple]] = {}
        self.committed = 0
        self.replayed = 0
        self.duplicates_dropped = 0

    def __contains__(self, task: Hashable) -> bool:
        return task in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def commit(
        self, task: Hashable, rows: List[Tuple], lease: int = -1, proc: int = -1
    ) -> bool:
        """Commit *rows* as the result of *task*; False on a duplicate."""
        if task in self._rows:
            self.duplicates_dropped += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.LSE_DUP_DROPPED,
                    proc=proc,
                    task=task,
                    lease=lease,
                    rows=len(rows),
                )
            return False
        self._rows[task] = list(rows)
        self.committed += 1
        return True

    def replay(self, task: Hashable, rows: List[Tuple]) -> bool:
        """Adopt a journal's completed batch for *task*; False on dup."""
        if task in self._rows:
            self.duplicates_dropped += 1
            return False
        self._rows[task] = list(rows)
        self.replayed += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.JNL_REPLAYED, task=task, rows=len(rows)
            )
        return True

    def rows_for(self, task: Hashable) -> List[Tuple]:
        return self._rows[task]

    def all_rows(self) -> List[Tuple]:
        """Every committed row, grouped by ascending task id."""
        out: List[Tuple] = []
        for task in sorted(self._rows, key=lambda t: (str(type(t)), t)):
            out.extend(self._rows[task])
        return out

    def stats(self) -> dict:
        return {
            "tasks_committed": self.committed,
            "tasks_replayed": self.replayed,
            "duplicates_dropped": self.duplicates_dropped,
            "rows": sum(len(rows) for rows in self._rows.values()),
        }

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.stats().items())
        return f"<ResultLedger {inner}>"
