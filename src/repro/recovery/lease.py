"""Lease-based task ownership with heartbeat renewal.

Every unit of recoverable work — a task in the simulated join, a chunk of
the task range under ``multiprocessing_join`` — is executed under a
:class:`Lease`: a deadline-bound ownership claim granted by the
coordinator and kept alive by heartbeat renewals from the holder.  A
holder that crashes or wedges stops renewing; the next
:meth:`LeaseTable.sweep` expires the lease, and the coordinator returns
the task to the queue for at-least-once re-execution (the exactly-once
output is restored downstream by the
:class:`~repro.recovery.ledger.ResultLedger`).

Buddy splits (work stealing, section 3.4) carry leases too: the thief of
a reassigned pair set is granted a *split* lease on the same task, so a
dead thief is detected exactly like a dead primary holder.

The clock is injected: the simulation passes ``lambda: env.now``, the
fork coordinator passes :func:`repro.recovery.config.wall_clock`.  All
lease events (``LSE_*``) are reconciled by
:class:`~repro.trace.checkers.RecoveryAccountingChecker`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

from ..trace import NULL_TRACER, EventKind, Tracer

__all__ = ["LeaseState", "Lease", "LeaseTable", "LeaseError"]


class LeaseError(RuntimeError):
    """An unlawful lease transition (double grant, renew of closed, ...)."""


class LeaseState(enum.Enum):
    ACTIVE = "active"
    COMPLETED = "completed"
    EXPIRED = "expired"


@dataclass
class Lease:
    """One ownership claim: *holder* executes *task* until *deadline*."""

    id: int
    task: Hashable
    holder: int
    granted_at: float
    deadline: float
    split: bool = False
    renewals: int = 0
    state: LeaseState = field(default=LeaseState.ACTIVE)

    @property
    def active(self) -> bool:
        return self.state is LeaseState.ACTIVE


class LeaseTable:
    """All leases of one run, with sweep-based expiry detection.

    ``clock`` is any monotone float-returning callable; ``lease_s`` is the
    renewal deadline; ``heartbeat_s`` throttles :meth:`renew_holder` so a
    processor renewing at every pair boundary emits at most one
    ``LSE_RENEWED`` burst per interval.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        lease_s: float,
        heartbeat_s: Optional[float] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        self.clock = clock
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s if heartbeat_s is not None else lease_s / 4
        self.tracer = tracer
        self._leases: Dict[int, Lease] = {}
        self._next_id = 0
        self._last_heartbeat: Dict[int, float] = {}
        self.granted = 0
        self.completed = 0
        self.expired = 0
        self.renewals = 0

    # -- grants ----------------------------------------------------------------
    def grant(self, task: Hashable, holder: int, split: bool = False) -> Lease:
        """Grant a fresh lease on *task* to *holder*."""
        now = self.clock()
        lease = Lease(
            id=self._next_id,
            task=task,
            holder=holder,
            granted_at=now,
            deadline=now + self.lease_s,
            split=split,
        )
        self._next_id += 1
        self._leases[lease.id] = lease
        self.granted += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.LSE_GRANTED,
                proc=holder,
                task=task,
                lease=lease.id,
                split=int(split),
                deadline=lease.deadline,
            )
        return lease

    def find_active(self, task: Hashable, holder: int) -> Optional[Lease]:
        """The holder's active lease on *task*, if any (split or primary)."""
        for lease in self._leases.values():
            if lease.active and lease.task == task and lease.holder == holder:
                return lease
        return None

    def get(self, lease_id: int) -> Lease:
        return self._leases[lease_id]

    def is_active(self, lease_id: int) -> bool:
        lease = self._leases.get(lease_id)
        return lease is not None and lease.active

    # -- heartbeats ------------------------------------------------------------
    def renew(self, lease_id: int) -> None:
        """Explicit renewal of one lease (the fork coordinator's path)."""
        lease = self._leases.get(lease_id)
        if lease is None or not lease.active:
            raise LeaseError(f"renew of non-active lease {lease_id}")
        self._renew(lease, self.clock())

    def renew_holder(self, holder: int) -> int:
        """Renew every active lease held by *holder* (the sim's path).

        Called at every pair boundary; throttled to one renewal burst per
        ``heartbeat_s`` so the event stream stays proportional to the
        number of heartbeats, not pairs.  Returns the number of leases
        renewed.
        """
        now = self.clock()
        last = self._last_heartbeat.get(holder)
        if last is not None and now - last < self.heartbeat_s:
            return 0
        self._last_heartbeat[holder] = now
        count = 0
        for lease in self._leases.values():
            if lease.active and lease.holder == holder:
                self._renew(lease, now)
                count += 1
        return count

    def _renew(self, lease: Lease, now: float) -> None:
        lease.deadline = now + self.lease_s
        lease.renewals += 1
        self.renewals += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.LSE_RENEWED,
                proc=lease.holder,
                task=lease.task,
                lease=lease.id,
                deadline=lease.deadline,
            )

    # -- closure ---------------------------------------------------------------
    def complete(self, lease_id: int, rows: int = 0) -> Lease:
        """Close a lease successfully; *rows* is the result-row count the
        holder produced (0 for split leases, which contribute rows through
        the primary's attempt)."""
        lease = self._leases.get(lease_id)
        if lease is None or not lease.active:
            raise LeaseError(f"complete of non-active lease {lease_id}")
        lease.state = LeaseState.COMPLETED
        self.completed += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.LSE_COMPLETED,
                proc=lease.holder,
                task=lease.task,
                lease=lease.id,
                split=int(lease.split),
                rows=rows,
            )
        return lease

    def expire(self, lease_id: int, reason: str = "forced") -> Lease:
        """Force-expire an active lease (e.g. a sibling split died)."""
        lease = self._leases.get(lease_id)
        if lease is None or not lease.active:
            raise LeaseError(f"expire of non-active lease {lease_id}")
        self._expire(lease, reason)
        return lease

    def sweep(self) -> List[Lease]:
        """Expire every active lease whose deadline passed; returns them."""
        now = self.clock()
        overdue = [
            lease
            for lease in self._leases.values()
            if lease.active and lease.deadline < now
        ]
        for lease in overdue:
            self._expire(lease, "deadline")
        return overdue

    def _expire(self, lease: Lease, reason: str) -> None:
        lease.state = LeaseState.EXPIRED
        self.expired += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.LSE_EXPIRED,
                proc=lease.holder,
                task=lease.task,
                lease=lease.id,
                split=int(lease.split),
                reason=reason,
            )

    # -- introspection ---------------------------------------------------------
    def active_leases(self) -> List[Lease]:
        return [lease for lease in self._leases.values() if lease.active]

    def leases_for(self, task: Hashable) -> List[Lease]:
        return [l for l in self._leases.values() if l.task == task]

    def stats(self) -> dict:
        return {
            "granted": self.granted,
            "completed": self.completed,
            "expired": self.expired,
            "renewals": self.renewals,
            "active": len(self.active_leases()),
        }

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.stats().items())
        return f"<LeaseTable {inner}>"
