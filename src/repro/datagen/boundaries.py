"""Synthetic administrative boundaries, rivers and railway tracks (*map 2*).

The paper's second map mixes three linear feature classes over the same
region as the street map:

* **boundary segments** — edges of rectangular administrative rings drawn
  around settlements (cities and districts); medium-length, axis-parallel;
* **river segments** — pieces of long meandering random walks crossing the
  region; curved, with fatter MBRs;
* **railway segments** — pieces of long, nearly straight walks connecting
  city pairs.

The class mix (60/25/15) is a free parameter of the substitution; what
matters for the reproduction is that map 2 clusters in the same places as
map 1 (settlements) while also containing long features that span many
street clusters — the workload property that makes some join tasks far more
expensive than others.
"""

from __future__ import annotations

import math
import random

from ..geometry.rect import Rect
from .region import Region, SpatialObject

__all__ = ["generate_boundaries"]

RIVER_STEP = 0.00038
RAIL_STEP = 0.0006


def generate_boundaries(
    region: Region,
    count: int,
    seed: int,
    include_geometry: bool = False,
    mix: tuple[float, float, float] = (0.60, 0.25, 0.15),
) -> list[SpatialObject]:
    """Generate *count* map-2 objects: boundaries, rivers, railways."""
    if abs(sum(mix) - 1.0) > 1e-9:
        raise ValueError("feature mix must sum to 1")
    rng = random.Random(seed)
    boundary_count = round(count * mix[0])
    river_count = round(count * mix[1])
    rail_count = count - boundary_count - river_count

    chains: list[list[tuple[float, float]]] = []
    chains.extend(_boundary_chains(region, boundary_count, rng))
    chains.extend(_walk_chains(region, river_count, rng, RIVER_STEP, curviness=0.5))
    chains.extend(_walk_chains(region, rail_count, rng, RAIL_STEP, curviness=0.08))

    objects = []
    for oid, points in enumerate(chains[:count]):
        objects.append(
            SpatialObject(
                oid=oid,
                mbr=Rect.from_points(points),
                points=tuple(points) if include_geometry else None,
            )
        )
    return objects


def _boundary_chains(
    region: Region, count: int, rng: random.Random
) -> list[list[tuple[float, float]]]:
    """Edges of rectangular rings around settlement points."""
    chains: list[list[tuple[float, float]]] = []
    while len(chains) < count:
        cx, cy = region.sample_settlement_point(rng, rural_fraction=0.25)
        w = rng.uniform(0.0006, 0.002)
        h = rng.uniform(0.0006, 0.002)
        x0, y0 = region.clamp(cx - w / 2.0, cy - h / 2.0)
        x1, y1 = region.clamp(cx + w / 2.0, cy + h / 2.0)
        corners = [(x0, y0), (x1, y0), (x1, y1), (x0, y1), (x0, y0)]
        # Each ring edge is one boundary object (TIGER stores edges).
        for a, b in zip(corners, corners[1:]):
            if len(chains) >= count:
                break
            chains.append([a, b])
    return chains


def _walk_chains(
    region: Region,
    count: int,
    rng: random.Random,
    step: float,
    curviness: float,
) -> list[list[tuple[float, float]]]:
    """Pieces of long random walks (rivers / railways) across the region."""
    chains: list[list[tuple[float, float]]] = []
    segments_per_walk = max(8, round(40 * math.sqrt(region.scale)))
    while len(chains) < count:
        x, y = rng.uniform(0, region.side), rng.uniform(0, region.side)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        for _ in range(segments_per_walk):
            if len(chains) >= count:
                break
            pieces = [(x, y)]
            for _ in range(rng.randint(2, 4)):
                angle += rng.gauss(0.0, curviness)
                x, y = region.clamp(
                    x + step * math.cos(angle), y + step * math.sin(angle)
                )
                pieces.append((x, y))
            chains.append(pieces)
    return chains
