"""Synthetic TIGER-like workload generation (the paper's test data).

The paper used TIGER/Line precensus files of Californian counties, which
we cannot ship; this package generates seeded synthetic equivalents with
the same cardinalities and spatial character (see DESIGN.md for the
substitution argument).
"""

from .boundaries import generate_boundaries
from .maps import MAP1_COUNT, MAP2_COUNT, MapData, build_tree, paper_maps
from .region import Region, SpatialObject
from .streets import generate_streets

__all__ = [
    "Region",
    "SpatialObject",
    "generate_streets",
    "generate_boundaries",
    "MapData",
    "paper_maps",
    "build_tree",
    "MAP1_COUNT",
    "MAP2_COUNT",
]
