"""The two evaluation maps and their R*-trees (paper sections 4.1 / Table 1).

:func:`paper_maps` generates stand-ins for the two TIGER county maps —
131,443 street objects and 127,312 boundary/river/railway objects at full
scale — over one shared :class:`~repro.datagen.region.Region`, and
:func:`build_tree` packs a map into an R*-tree whose occupancy matches the
dynamically built trees of the paper (the STR ``fill``/``dir_fill`` values
below reproduce Table 1's page counts and height 3 at full scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry.rect import Rect
from ..rtree.bulk import str_bulk_load
from ..rtree.rstar import RStarTree
from .boundaries import generate_boundaries
from .region import Region, SpatialObject
from .streets import generate_streets

__all__ = ["MapData", "paper_maps", "build_tree", "MAP1_COUNT", "MAP2_COUNT"]

#: Object counts of the paper's maps (section 4.1).
MAP1_COUNT = 131443
MAP2_COUNT = 127312

#: STR occupancy reproducing the paper's dynamically-built tree shapes
#: (about 72 % leaf fill; directory levels pack a little denser so the
#: full-scale trees have height 3 like Table 1).
LEAF_FILL = 0.731
DIR_FILL = 0.80


@dataclass
class MapData:
    """One generated map: named objects over a region."""

    name: str
    region: Region
    objects: list[SpatialObject]

    def items(self) -> list[tuple[int, Rect]]:
        """``(oid, mbr)`` pairs, the input format of the tree builders."""
        return [(o.oid, o.mbr) for o in self.objects]

    def __len__(self) -> int:
        return len(self.objects)

    def __repr__(self) -> str:
        return f"<MapData {self.name!r} {len(self.objects)} objects>"


def paper_maps(
    scale: float = 1.0,
    seed: int = 42,
    include_geometry: bool = False,
) -> tuple[MapData, MapData]:
    """Generate map 1 (streets) and map 2 (boundaries/rivers/railways).

    ``scale`` multiplies the object counts; the region area scales along,
    keeping density — and with it the join selectivity per object —
    constant.  Deterministic per ``(scale, seed)``.
    """
    region = Region(scale=scale, seed=seed)
    count1 = max(1, round(MAP1_COUNT * scale))
    count2 = max(1, round(MAP2_COUNT * scale))
    streets = generate_streets(
        region, count1, seed=seed + 1, include_geometry=include_geometry
    )
    features = generate_boundaries(
        region, count2, seed=seed + 2, include_geometry=include_geometry
    )
    return (
        MapData("map 1 (streets)", region, streets),
        MapData("map 2 (boundaries, rivers, railways)", region, features),
    )


def build_tree(map_data: MapData, *, fill: float = LEAF_FILL, dir_fill: float = DIR_FILL) -> RStarTree:
    """Pack a map into an R*-tree with paper-like occupancy."""
    return str_bulk_load(map_data.items(), fill=fill, dir_fill=dir_fill)
