"""Synthetic street segments — the stand-in for the paper's *map 1*.

TIGER street records are short polylines following a mostly rectilinear
street grid.  Each generated street starts at a settlement point, picks a
grid direction (axis-parallel with jitter, occasionally diagonal) and walks
one to three short steps.  Streets therefore produce small, thin, heavily
clustered MBRs — the MBR population whose skew drives the paper's task
imbalance.
"""

from __future__ import annotations

import math
import random

from ..geometry.rect import Rect
from .region import Region, SpatialObject

__all__ = ["generate_streets"]

#: Mean street-segment step length, absolute units of the unit-scale region.
STEP_LENGTH = 0.00009


def generate_streets(
    region: Region,
    count: int,
    seed: int,
    include_geometry: bool = False,
) -> list[SpatialObject]:
    """Generate *count* street objects over *region*.

    Deterministic for a given ``(region, count, seed)``.  Object ids run
    from 0 to ``count - 1``.
    """
    rng = random.Random(seed)
    objects: list[SpatialObject] = []
    grid_angles = (0.0, math.pi / 2.0, math.pi, 3.0 * math.pi / 2.0)
    for oid in range(count):
        x, y = region.sample_settlement_point(rng)
        if rng.random() < 0.85:
            angle = rng.choice(grid_angles) + rng.gauss(0.0, 0.06)
        else:
            angle = rng.uniform(0.0, 2.0 * math.pi)
        steps = rng.randint(1, 3)
        points = [(x, y)]
        for _ in range(steps):
            length = rng.uniform(0.5, 1.5) * STEP_LENGTH
            angle += rng.gauss(0.0, 0.15)
            x, y = region.clamp(
                x + length * math.cos(angle), y + length * math.sin(angle)
            )
            points.append((x, y))
        mbr = Rect.from_points(points)
        objects.append(
            SpatialObject(
                oid=oid,
                mbr=mbr,
                points=tuple(points) if include_geometry else None,
            )
        )
    return objects
