"""The synthetic study region and its settlement structure.

The paper's test data are TIGER/Line files of Californian counties
[Bur 89]: street segments concentrate in cities and towns, with sparse
rural roads between them, and the second map's boundaries, rivers and
railway tracks span the same region.  We reproduce that *spatial
character* with a seeded settlement model: a set of weighted population
centers (cities) inside a square region.  All generators draw locations
from this model, so both maps cluster in the same places — which is what
creates the spatially skewed join workload the paper's load balancing is
about.

Scaling: ``scale`` shrinks the object counts; the region side shrinks with
``sqrt(scale)`` so the object *density* — and with it the per-object join
selectivity — stays constant across scales.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..geometry.rect import Rect

__all__ = ["Region", "SpatialObject"]


@dataclass(frozen=True)
class SpatialObject:
    """One map object: identifier, MBR, and optionally the exact polyline.

    ``points`` is None when the generator was asked to skip exact geometry
    (benchmarks only need MBRs; the refinement cost is a function of the
    MBRs per section 4.2).  The MBR coordinates are also exposed flat so a
    SpatialObject can be fed to the plane-sweep directly.
    """

    oid: int
    mbr: Rect
    points: tuple[tuple[float, float], ...] | None = field(default=None, compare=False)

    @property
    def xl(self) -> float:
        return self.mbr.xl

    @property
    def yl(self) -> float:
        return self.mbr.yl

    @property
    def xu(self) -> float:
        return self.mbr.xu

    @property
    def yu(self) -> float:
        return self.mbr.yu


class Region:
    """A square study area with weighted city centers."""

    def __init__(self, scale: float = 1.0, seed: int = 42, cities_per_unit: int = 36):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.side = math.sqrt(scale)
        self.bounds = Rect(0.0, 0.0, self.side, self.side)
        rng = random.Random(seed)
        count = max(3, round(cities_per_unit * scale))
        self.cities: list[tuple[float, float]] = []
        self.city_sigmas: list[float] = []
        weights: list[float] = []
        for _ in range(count):
            self.cities.append((rng.uniform(0, self.side), rng.uniform(0, self.side)))
            # City footprint: a few percent of the region side.
            self.city_sigmas.append(rng.uniform(0.015, 0.05))
            # Zipf-ish population weights: a few big cities, many towns.
            weights.append(rng.paretovariate(1.2))
        total = sum(weights)
        self.city_weights = [w / total for w in weights]
        self._cumulative: list[float] = []
        acc = 0.0
        for w in self.city_weights:
            acc += w
            self._cumulative.append(acc)

    def pick_city(self, rng: random.Random) -> int:
        """Sample a city index proportional to population weight."""
        u = rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def sample_settlement_point(
        self, rng: random.Random, rural_fraction: float = 0.15
    ) -> tuple[float, float]:
        """A location: usually near a city, sometimes rural."""
        if rng.random() < rural_fraction:
            return (rng.uniform(0, self.side), rng.uniform(0, self.side))
        index = self.pick_city(rng)
        cx, cy = self.cities[index]
        sigma = self.city_sigmas[index]
        x = min(max(rng.gauss(cx, sigma), 0.0), self.side)
        y = min(max(rng.gauss(cy, sigma), 0.0), self.side)
        return (x, y)

    def clamp(self, x: float, y: float) -> tuple[float, float]:
        return (min(max(x, 0.0), self.side), min(max(y, 0.0), self.side))

    def __repr__(self) -> str:
        return f"<Region scale={self.scale} side={self.side:.3f} cities={len(self.cities)}>"
