"""The simulated disk array of section 4.2.

Pages are assigned to disks "by using the page number and a modulo
function, i.e. spatial aspects have no impact on the selection of the disk"
— a round-robin declustering.  Each disk serves one request at a time,
FCFS; concurrent requests from different processors queue up, which is the
disk synchronisation cost the paper's speed-up analysis names (section 4.5)
and the reason one disk saturates at about four processors (Figure 9).
"""

from __future__ import annotations

from typing import Generator

from ..sim.engine import Environment
from ..sim.metrics import Metrics
from ..sim.resources import Resource
from ..trace import NULL_TRACER, EventKind, Tracer
from .disk import DEFAULT_DISK, DiskParams
from .page import PageKind

__all__ = ["DiskArray"]


class DiskArray:
    """``num_disks`` independent simulated disks with modulo placement."""

    def __init__(
        self,
        env: Environment,
        num_disks: int,
        params: DiskParams | None = None,
        metrics: Metrics | None = None,
        tracer: Tracer = NULL_TRACER,
        injector=None,
    ):
        if num_disks < 1:
            raise ValueError("a disk array needs at least one disk")
        self.env = env
        self.num_disks = num_disks
        self.params = params or DEFAULT_DISK
        self.metrics = metrics or Metrics()
        self.tracer = tracer
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when
        #: set, individual reads may be stretched by the plan's slow-I/O
        #: multiplier (a degrading disk, not a dead one).
        self.injector = injector
        self._disks = [
            Resource(env, capacity=1, name=f"disk{d}") for d in range(num_disks)
        ]

    def disk_of(self, page_id: int) -> int:
        """Placement function: page number modulo the number of disks."""
        return page_id % self.num_disks

    def read(self, page_id: int, kind: PageKind, proc: int = -1) -> Generator:
        """Process fragment: one page read, including queueing at the disk.

        A :data:`PageKind.DATA` read includes the exact-geometry cluster
        access (37.5 ms total with the default parameters); a directory
        read costs the plain 16 ms.  ``proc`` attributes the request to a
        processor on the trace (purely observability).
        """
        disk_id = self.disk_of(page_id)
        disk = self._disks[disk_id]
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.DISK_ENQUEUE, proc=proc, page=page_id, disk=disk_id
            )
        yield disk.acquire()
        service_start = self.env.now
        service_time = self.params.service_time(kind)
        if self.injector is not None:
            service_time *= self.injector.io_multiplier(page_id, proc=proc)
        try:
            yield self.env.timeout(service_time)
        finally:
            disk.release()
        self.metrics.record_disk_read(disk_id)
        if tracer.enabled:
            tracer.emit(
                EventKind.DISK_COMPLETE,
                proc=proc,
                page=page_id,
                disk=disk_id,
                start=service_start,
            )

    # -- introspection for tests and benches ----------------------------------
    def queue_length(self, disk_id: int) -> int:
        return self._disks[disk_id].queue_length

    def utilisation_counts(self) -> list[int]:
        """Accesses per disk, index = disk id."""
        return [self.metrics.per_disk_reads[d] for d in range(self.num_disks)]

    def __repr__(self) -> str:
        return f"<DiskArray {self.num_disks} disks, {self.metrics.disk_accesses} reads>"
