"""The disk timing model of section 4.2.

The paper could not control the placement of R*-tree nodes on the real disk
array of the KSR1 and therefore *simulated* the disks — we reimplement that
simulation: an average seek of 9 ms, an average rotational latency of 6 ms
and 1 ms transfer per 4 KB page give 16 ms for reading a page.

The exact geometry is clustered on disk as in [BK 94] with a one-to-one
relationship between a data page and its cluster, so *a data page access
includes the access to the corresponding cluster*.  For the average cluster
size of 26 KB this second access costs 9 + 6 + ceil(26/4)*1 = 21.5 ms,
yielding the paper's quoted 37.5 ms per data-page access.
"""

from __future__ import annotations

from dataclasses import dataclass

from .page import PageKind

__all__ = ["DiskParams", "DEFAULT_DISK"]


@dataclass(frozen=True)
class DiskParams:
    """Service-time parameters of one simulated disk (seconds)."""

    seek_time: float = 9e-3
    latency_time: float = 6e-3
    transfer_time_per_page: float = 1e-3
    page_size: int = 4096
    #: Average size of one exact-geometry cluster ([BK 94] clustering).
    cluster_bytes: int = 26 * 1024

    @property
    def page_read_time(self) -> float:
        """One random page read: 16 ms with the paper's parameters."""
        return self.seek_time + self.latency_time + self.transfer_time_per_page

    @property
    def cluster_read_time(self) -> float:
        """Reading the geometry cluster attached to a data page: 21.5 ms.

        The transfer scales with the exact cluster size (26/4 = 6.5 page
        transfer units), which reproduces the paper's 37.5 ms total."""
        pages = self.cluster_bytes / self.page_size
        return self.seek_time + self.latency_time + pages * self.transfer_time_per_page

    @property
    def data_page_read_time(self) -> float:
        """Data page plus its cluster: the paper's 37.5 ms."""
        return self.page_read_time + self.cluster_read_time

    def service_time(self, kind: PageKind) -> float:
        """Total service time for one access of the given page kind."""
        if kind is PageKind.DATA:
            return self.data_page_read_time
        return self.page_read_time


#: The disk of the paper's evaluation (16 ms page, 37.5 ms data page).
DEFAULT_DISK = DiskParams()
