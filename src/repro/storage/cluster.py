"""Exact-geometry clusters ([BK 94] global clustering).

The paper stores the exact representations of all objects of one data page
together in a *cluster* on disk: "there is a one-to-one relationship
between a data page and the cluster where the exact geometry
representations of the entries in the data page are stored" (section 4.2).
Reading a data page therefore implicitly reads the cluster — the timing is
part of :class:`repro.storage.disk.DiskParams`; this module keeps the
*contents*: which object geometries travel with which data page, used by
examples and tests that run the real (non-simulated) refinement step.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

__all__ = ["ClusterStore"]


class ClusterStore:
    """Maps a data page id to the exact geometries of its entries."""

    def __init__(self):
        self._clusters: dict[int, dict[Hashable, object]] = {}

    def store(self, page_id: int, geometries: Mapping[Hashable, object]) -> None:
        """Register the cluster of ``page_id`` (one per page; re-registering
        replaces, mirroring a page rewrite)."""
        self._clusters[page_id] = dict(geometries)

    def load(self, page_id: int) -> dict[Hashable, object]:
        """The geometries clustered with ``page_id``; raises KeyError for an
        unknown page (a data page always has exactly one cluster)."""
        return self._clusters[page_id]

    def geometry(self, page_id: int, object_id: Hashable):
        return self._clusters[page_id][object_id]

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._clusters

    def __len__(self) -> int:
        return len(self._clusters)

    def page_ids(self) -> Iterable[int]:
        return self._clusters.keys()

    def average_cluster_bytes(self, bytes_per_geometry: int = 0) -> float:
        """Mean geometries per cluster, scaled to bytes when a per-geometry
        size is supplied — lets tests compare against the paper's 26 KB."""
        if not self._clusters:
            return 0.0
        mean_entries = sum(len(c) for c in self._clusters.values()) / len(
            self._clusters
        )
        return mean_entries * bytes_per_geometry if bytes_per_geometry else mean_entries
