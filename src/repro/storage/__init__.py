"""Secondary-storage model: page layout, disk timing, disk array, clusters.

Reimplements the simulated disk array of the paper's section 4.2: 16 ms per
page read, 37.5 ms for a data page including its exact-geometry cluster,
modulo placement of pages onto disks, FCFS queueing per disk.
"""

from .cluster import ClusterStore
from .disk import DEFAULT_DISK, DiskParams
from .diskarray import DiskArray
from .page import DEFAULT_STORAGE, PageKind, StorageParams

__all__ = [
    "PageKind",
    "StorageParams",
    "DEFAULT_STORAGE",
    "DiskParams",
    "DEFAULT_DISK",
    "DiskArray",
    "ClusterStore",
]
