"""Page layout constants of the paper's R*-trees (section 4.1).

The trees use a page size of 4 KB; a directory entry occupies 40 bytes
(MBR plus child pointer) and a data entry 156 bytes (MBR plus a pointer to
the exact object representation).  That yields capacities of 102 directory
entries and 26 data entries per page — the fan-outs that give the paper's
Table 1 tree shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PageKind", "StorageParams", "DEFAULT_STORAGE"]


class PageKind(enum.Enum):
    """What a page holds; data pages drag their geometry cluster along."""

    DIRECTORY = "directory"
    DATA = "data"


@dataclass(frozen=True)
class StorageParams:
    """Sizes that determine R*-tree fan-out and I/O cost."""

    page_size: int = 4096
    dir_entry_bytes: int = 40
    data_entry_bytes: int = 156

    @property
    def dir_capacity(self) -> int:
        """Maximum entries in a directory page (102 for the paper's sizes)."""
        return self.page_size // self.dir_entry_bytes

    @property
    def data_capacity(self) -> int:
        """Maximum entries in a data page (26 for the paper's sizes)."""
        return self.page_size // self.data_entry_bytes


#: The parameters of the paper's evaluation (section 4.1).
DEFAULT_STORAGE = StorageParams()
