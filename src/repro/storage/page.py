"""Page layout constants of the paper's R*-trees (section 4.1), plus
checksummed page images for corruption detection and read-repair.

The trees use a page size of 4 KB; a directory entry occupies 40 bytes
(MBR plus child pointer) and a data entry 156 bytes (MBR plus a pointer to
the exact object representation).  That yields capacities of 102 directory
entries and 26 data entries per page — the fan-outs that give the paper's
Table 1 tree shapes.

The integrity layer (:class:`PageImage`, :class:`PageIntegrityStore`)
gives every paginated node a deterministic byte payload guarded by a
CRC-32 checksum.  Buffered *copies* of a page (a local LRU hit, a remote
SVM fetch) are verified on read; a mismatch — e.g. a bit flip injected by
a :class:`~repro.faults.injector.FaultInjector` — triggers **read
repair**: the copy is replaced from the authoritative store, the repair
is traced (``SUP_PAGE_CORRUPT_DETECTED`` / ``SUP_PAGE_REPAIRED``), and
the reader never observes corrupted bytes.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

from ..trace import NULL_TRACER, EventKind, Tracer

__all__ = [
    "PageKind",
    "StorageParams",
    "DEFAULT_STORAGE",
    "page_checksum",
    "PageImage",
    "PageIntegrityError",
    "PageIntegrityStore",
]


class PageKind(enum.Enum):
    """What a page holds; data pages drag their geometry cluster along."""

    DIRECTORY = "directory"
    DATA = "data"


@dataclass(frozen=True)
class StorageParams:
    """Sizes that determine R*-tree fan-out and I/O cost."""

    page_size: int = 4096
    dir_entry_bytes: int = 40
    data_entry_bytes: int = 156

    @property
    def dir_capacity(self) -> int:
        """Maximum entries in a directory page (102 for the paper's sizes)."""
        return self.page_size // self.dir_entry_bytes

    @property
    def data_capacity(self) -> int:
        """Maximum entries in a data page (26 for the paper's sizes)."""
        return self.page_size // self.data_entry_bytes


#: The parameters of the paper's evaluation (section 4.1).
DEFAULT_STORAGE = StorageParams()


# -- page integrity ------------------------------------------------------------
def page_checksum(payload: bytes) -> int:
    """CRC-32 of one page payload (the on-page checksum word)."""
    return zlib.crc32(payload) & 0xFFFFFFFF


class PageIntegrityError(Exception):
    """A page copy failed checksum verification and could not be repaired."""


@dataclass(frozen=True)
class PageImage:
    """One page's byte payload plus its stored checksum."""

    page_id: int
    payload: bytes
    checksum: int

    @classmethod
    def build(cls, page_id: int, payload: bytes) -> "PageImage":
        return cls(page_id, payload, page_checksum(payload))

    def verify(self) -> bool:
        """Does the payload still match the stored checksum?"""
        return page_checksum(self.payload) == self.checksum

    def __repr__(self) -> str:
        state = "ok" if self.verify() else "CORRUPT"
        return f"<PageImage {self.page_id} {len(self.payload)}B {state}>"


def _encode_node(node) -> bytes:
    """Deterministic byte serialisation of one R*-tree node.

    Entry order is the node's on-page order (the plane-sweep order the
    paper maintains); each entry contributes its MBR as four doubles plus
    its pointer — the oid's repr for data entries, the child's page id
    for directory entries.  Stable across processes, so the authoritative
    image can be rebuilt from the in-memory tree at any time (the basis
    of read repair).
    """
    parts = [struct.pack("<hH", node.level, len(node.entries))]
    for entry in node.entries:
        parts.append(struct.pack("<dddd", entry.xl, entry.yl, entry.xu, entry.yu))
        if entry.oid is not None:
            parts.append(b"D" + repr(entry.oid).encode())
        else:
            parts.append(struct.pack("<Bq", 0, entry.child.page_id))
    return b"".join(parts)


class PageIntegrityStore:
    """Checksummed page images with verify-on-read and read repair.

    The *authoritative* side is rebuilt on demand from the paginated
    nodes of a :class:`~repro.rtree.pagestore.PageStore` (any object with
    ``pages()`` and ``node(page_id)`` works).  :meth:`read_copy` models
    the global buffer handing a *copy* of a page to a reader: the copy is
    verified against the stored checksum, and a corrupted copy — e.g.
    after an injected bit flip — is silently healed from the
    authoritative store, with the detection and the repair traced.
    """

    def __init__(self, page_store, tracer: Tracer = NULL_TRACER):
        self._page_store = page_store
        self.tracer = tracer
        self._images: dict[int, PageImage] = {}
        self.reads = 0
        self.corruptions_detected = 0
        self.repairs = 0

    def authoritative(self, page_id: int) -> PageImage:
        """The checksummed master image of *page_id* (built lazily)."""
        image = self._images.get(page_id)
        if image is None:
            payload = _encode_node(self._page_store.node(page_id))
            image = PageImage.build(page_id, payload)
            self._images[page_id] = image
        return image

    def read_copy(
        self, page_id: int, proc: int = -1, injector=None
    ) -> tuple[bytes, bool]:
        """One verified page-copy read; returns ``(payload, repaired)``.

        *injector* (a :class:`~repro.faults.injector.FaultInjector`) may
        corrupt the copy in transit; verification catches it and repair
        re-fetches the authoritative payload.  If even the repaired copy
        fails verification the store raises :class:`PageIntegrityError` —
        the authoritative side itself is damaged, which no retry fixes.
        """
        self.reads += 1
        image = self.authoritative(page_id)
        payload = image.payload
        if injector is not None:
            payload = injector.corrupt_copy(page_id, payload, proc=proc)
        if page_checksum(payload) == image.checksum:
            return payload, False
        self.corruptions_detected += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.SUP_PAGE_CORRUPT_DETECTED, proc=proc, page=page_id
            )
        repaired = self.authoritative(page_id).payload
        if page_checksum(repaired) != image.checksum:
            raise PageIntegrityError(
                f"page {page_id} unrecoverable: authoritative copy fails "
                f"its own checksum"
            )
        self.repairs += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.SUP_PAGE_REPAIRED, proc=proc, page=page_id
            )
        return repaired, True

    def stats(self) -> dict:
        return {
            "pages_imaged": len(self._images),
            "reads": self.reads,
            "corruptions_detected": self.corruptions_detected,
            "repairs": self.repairs,
        }

    def __repr__(self) -> str:
        return (
            f"<PageIntegrityStore {len(self._images)} images, "
            f"{self.corruptions_detected} corruptions, {self.repairs} repairs>"
        )
