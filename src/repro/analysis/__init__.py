"""Project-aware static analysis and trace-driven race detection.

The paper's correctness hinges on disciplined sharing — SVM global
buffers, fork-inherited R*-trees, deterministic task assignment — and
every bug class fixed by hand in past reviews (leaked circuit-breaker
probe slots, clobbered fork-global registries, deadline-less worker
calls) is mechanically detectable.  This package is the tooling that
scales that detection with the codebase:

* :mod:`repro.analysis.lint` — an AST-based lint engine with a rule
  registry, per-rule severity, and ``# repro: noqa[RULE]`` suppression.
  The rules (:mod:`repro.analysis.rules`) enforce invariants the
  codebase already relies on implicitly: determinism of the simulation
  paths, trace-event discipline, acquire/release and breaker-admission
  pairing, fork safety, and no blocking calls inside the async serving
  engine.
* :mod:`repro.analysis.races` — a dynamic lockset/happens-before race
  detector over recorded JSONL traces of the SVM simulation: it rebuilds
  per-processor vector clocks from the event stream and flags
  unsynchronized concurrent page access and lost-update windows on the
  global-buffer directory, with an ``--explain`` mode printing the two
  conflicting access histories.
* :mod:`repro.analysis.external` — gated wrappers around ``ruff`` and
  ``mypy`` (skipped with a note when not installed), so the custom pass
  and the off-the-shelf pass run under one entry point.

Both engines share one findings model (:mod:`repro.analysis.findings`)
and one report format, and ``python -m repro.analysis [lint|races|all]``
runs them as a CI gate against a committed baseline file — existing debt
is ratcheted, never silently ignored.
"""

from __future__ import annotations

from .findings import (
    Finding,
    Report,
    Severity,
    diff_against_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from .lint import run_lint
from .races import RaceDetector, detect_races

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
    "run_lint",
    "RaceDetector",
    "detect_races",
]
