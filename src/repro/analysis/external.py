"""Gated wrappers for the off-the-shelf analyzers (ruff, mypy).

The container this repo runs in does not necessarily ship either tool,
and installing dependencies is out of scope — so both wrappers probe for
the module first and report ``skipped: not installed`` in the tool
status instead of failing.  When a tool *is* present it runs with the
configuration from ``pyproject.toml`` (strict on ``repro.analysis``,
permissive elsewhere) and its diagnostics are folded into the shared
findings model.

External findings are **warnings**, never errors: the custom rules in
:mod:`repro.analysis.rules` are the gate, and a gate must not depend on
which optional tools happen to be installed on the machine running it.
"""

from __future__ import annotations

import importlib.util
import json
import re
import subprocess
import sys
from pathlib import Path
from typing import Sequence, Union

from .findings import Finding, Severity

__all__ = ["run_ruff", "run_mypy", "available"]

_MYPY_LINE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+):(?:\d+:)?\s*"
    r"(?P<level>error|warning|note):\s*(?P<message>.*)$"
)


def available(module: str) -> bool:
    """Is *module* importable without importing it?"""
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def run_ruff(
    paths: Sequence[Union[str, Path]]
) -> tuple[list[Finding], str]:
    """Run ruff if installed; returns ``(findings, status)``."""
    if not available("ruff"):
        return [], "skipped: ruff not installed"
    command = [
        sys.executable,
        "-m",
        "ruff",
        "check",
        "--output-format",
        "json",
        *[str(p) for p in paths],
    ]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=300
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        return [], f"failed: {exc}"
    findings: list[Finding] = []
    try:
        diagnostics = json.loads(proc.stdout or "[]")
    except json.JSONDecodeError:
        return [], f"failed: unparseable output (exit {proc.returncode})"
    for diag in diagnostics:
        findings.append(
            Finding(
                tool="ruff",
                rule=str(diag.get("code") or "RUFF"),
                severity=Severity.WARNING,
                path=str(diag.get("filename", "?")),
                line=int((diag.get("location") or {}).get("row", 0)),
                message=str(diag.get("message", "")),
            )
        )
    return findings, f"ok: {len(findings)} diagnostic(s)"


def run_mypy(
    paths: Sequence[Union[str, Path]]
) -> tuple[list[Finding], str]:
    """Run mypy if installed; returns ``(findings, status)``."""
    if not available("mypy"):
        return [], "skipped: mypy not installed"
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--no-error-summary",
        *[str(p) for p in paths],
    ]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=600
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        return [], f"failed: {exc}"
    findings: list[Finding] = []
    for line in (proc.stdout or "").splitlines():
        match = _MYPY_LINE.match(line.strip())
        if match is None or match.group("level") == "note":
            continue
        findings.append(
            Finding(
                tool="mypy",
                rule="MYPY",
                severity=Severity.WARNING,
                path=match.group("path"),
                line=int(match.group("line")),
                message=match.group("message"),
            )
        )
    return findings, f"ok: {len(findings)} diagnostic(s)"
