"""Interprocedural lock-order / await-graph analysis.

The repo has three families of mutual-exclusion objects:

* **sim latches** — :class:`repro.sim.resources.Lock` and friends,
  acquired as ``yield latch.acquire()`` inside simulation generators
  (the paper's §3.2 directory latch);
* **asyncio primitives** — ``await sem.acquire()`` in the serving tier
  (admission semaphores);
* **thread locks** — plain ``x.acquire()`` (none today, but external
  contributions grow).

This pass parses every function, tracks which locks are held across
each statement (an ``.acquire()`` call opens a region, the matching
``.release()`` closes it), and builds two interprocedural graphs:

* the **lock-order graph**: an edge ``A -> B`` whenever some execution
  path acquires ``B`` (directly or via any transitively called
  function) while ``A`` is held.  A cycle — including the degenerate
  ``A -> A`` re-acquisition of a non-reentrant lock — is a potential
  deadlock and a gating finding (``LOCK001``).
* the **await/blocking graph**: which wall-clock blocking primitives
  (``time.sleep``, ``os.fsync``, ``subprocess``, thread ``join``) each
  function can reach.  Reaching one while a latch or asyncio primitive
  is held stalls every other holder (and the whole event loop for
  asyncio) and is a gating finding (``LOCK002``).

Call edges are resolved by simple-name matching (any project function
with that name), which over-approximates: safe for a deadlock detector
— it may warn about an impossible pairing, never miss a real one within
the names it sees.  Simulation-time waits (``env.timeout``) are *not*
blocking: holding the directory latch for ``sync_time`` is the modelled
cost of the critical section, not a hazard.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .findings import Finding, Severity
from .lint import iter_python_files

__all__ = ["analyze_lock_order", "LockInfo"]

#: Dotted call names that block the calling OS thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
    }
)
#: Method names that block when called on a thread/process/queue object.
_BLOCKING_METHODS = frozenset({"fsync"})

#: Receiver names that are slot/permit protocols, not mutual exclusion —
#: their acquire/release pairing is checked elsewhere (the breaker's
#: probe-slot protocol has its own spec in repro.analysis.protocol).
_NON_LOCK_RECEIVERS = frozenset({"breaker", "self"})

#: Method names shared with builtin containers/files.  ``results.append``
#: must not resolve to ``JoinJournal.append``; for these, a call edge is
#: only drawn when the receiver name hints at the target class (e.g.
#: ``self.journal.append`` -> ``JoinJournal.append``).
_COLLISION_NAMES = frozenset(
    {
        "append", "add", "get", "put", "pop", "popleft", "extend",
        "update", "remove", "discard", "clear", "close", "write", "read",
        "open", "copy", "join", "split", "items", "keys", "values",
        "setdefault", "sort", "insert", "count", "index", "send",
        "cancel", "result", "wait", "set", "start", "stop", "flush",
        "run", "submit", "next", "replace", "strip", "format", "encode",
        "decode",
    }
)


def _hint_matches(hint: Optional[str], qualname: str) -> bool:
    """Does the receiver name plausibly refer to *qualname*'s class?"""
    if not hint:
        return False
    return hint.lower().rstrip("s") in qualname.lower()


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    if isinstance(cursor, ast.Subscript):
        inner = _dotted(cursor.value)
        if inner is not None:
            parts.append(inner)
            return ".".join(reversed(parts))
    return None


@dataclass
class _Site:
    """One interesting call site inside a function."""

    line: int
    held: tuple[str, ...]
    #: Last receiver component (``self.journal.append`` -> ``journal``),
    #: used to resolve collision-prone method names.
    hint: Optional[str] = None


@dataclass
class LockInfo:
    """Per-function facts gathered by the intra-procedural walk."""

    qualname: str
    path: str
    line: int
    #: lock -> first acquire line in this function
    acquires: dict[str, int] = field(default_factory=dict)
    #: lock -> acquire line, for acquires made while other locks are held
    ordered_acquires: list[tuple[str, str, int]] = field(default_factory=list)
    #: callee simple name -> sites
    calls: dict[str, list[_Site]] = field(default_factory=dict)
    #: blocking primitive name -> sites
    blocking: dict[str, list[_Site]] = field(default_factory=dict)
    #: callee simple names awaited by this function
    awaited: set[str] = field(default_factory=set)


class _FunctionWalker:
    """Linear walk of one function body tracking the held-lock set.

    Source order approximates execution order, which is exact for the
    ``acquire(); try: ... finally: release()`` idiom this repo uses
    everywhere (PAIR002 enforces it).
    """

    def __init__(self, info: LockInfo, lock_name: "_LockNamer"):
        self.info = info
        self.held: list[str] = []
        self.lock_name = lock_name

    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested functions are analyzed as their own entries
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._call(node, inside_await=False)
            elif isinstance(node, ast.Await) and isinstance(
                node.value, ast.Call
            ):
                callee = self._callee_name(node.value)
                if callee is not None:
                    self.info.awaited.add(callee)

    def _callee_name(self, call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        if isinstance(call.func, ast.Name):
            return call.func.id
        return None

    def _call(self, call: ast.Call, inside_await: bool) -> None:
        func = call.func
        line = getattr(call, "lineno", self.info.line)
        dotted = _dotted(func) or ""
        simple = self._callee_name(call)
        # -- lock protocol ----------------------------------------------------
        if isinstance(func, ast.Attribute) and func.attr in (
            "acquire",
            "release",
        ):
            lock = self.lock_name.name_for(func.value)
            if lock is not None:
                if func.attr == "acquire":
                    for holder in self.held:
                        self.info.ordered_acquires.append(
                            (holder, lock, line)
                        )
                    self.info.acquires.setdefault(lock, line)
                    self.held.append(lock)
                elif lock in self.held:
                    self.held.remove(lock)
                return
        # -- blocking primitives ----------------------------------------------
        if dotted in _BLOCKING_CALLS or (
            isinstance(func, ast.Attribute)
            and func.attr in _BLOCKING_METHODS
        ):
            self.info.blocking.setdefault(dotted or func.attr, []).append(
                _Site(line, tuple(self.held))
            )
            return
        # -- ordinary call-graph edge -----------------------------------------
        if simple is not None:
            hint = None
            if isinstance(func, ast.Attribute):
                receiver = _dotted(func.value)
                if receiver is not None:
                    hint = receiver.split(".")[-1]
            self.info.calls.setdefault(simple, []).append(
                _Site(line, tuple(self.held), hint)
            )


class _LockNamer:
    """Stable lock identities: ``ClassName.attr`` for ``self`` attributes,
    the bare name for locals/parameters; subscripted pools collapse to
    their base (``self._sems[cls]`` -> ``Cls._sems``)."""

    def __init__(self, class_name: Optional[str]):
        self.class_name = class_name

    def name_for(self, receiver: ast.AST) -> Optional[str]:
        dotted = _dotted(receiver)
        if dotted is None:
            return None
        root = dotted.split(".", 1)[0]
        if dotted in _NON_LOCK_RECEIVERS or root in _NON_LOCK_RECEIVERS - {
            "self"
        }:
            return None
        if root == "self":
            rest = dotted.split(".", 1)
            if len(rest) == 1:
                return None  # ``self.acquire()`` — the lock's own method
            prefix = self.class_name or "self"
            return f"{prefix}.{rest[1]}"
        return dotted


def _collect(files: Sequence[Path]) -> list[LockInfo]:
    infos: list[LockInfo] = []
    for path in files:
        try:
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
        except SyntaxError:
            continue
        rel = _rel(path)

        def visit(
            node: ast.AST, class_name: Optional[str], prefix: str
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, child.name, f"{prefix}{child.name}.")
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    info = LockInfo(
                        qualname=f"{prefix}{child.name}",
                        path=rel,
                        line=child.lineno,
                    )
                    walker = _FunctionWalker(info, _LockNamer(class_name))
                    walker.walk(child.body)
                    infos.append(info)
                    visit(child, class_name, f"{prefix}{child.name}.")
        visit(tree, None, "")
    return infos


def _rel(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _resolve(
    by_name: dict[str, list[LockInfo]],
    callee: str,
    sites: Sequence[_Site],
) -> list[LockInfo]:
    """Project functions a call to *callee* may reach.

    Names shared with builtin containers resolve only when some site's
    receiver hints at the target class, so ``results.append(...)`` never
    aliases ``JoinJournal.append``.
    """
    targets = by_name.get(callee, ())
    if callee not in _COLLISION_NAMES:
        return list(targets)
    return [
        t
        for t in targets
        if any(_hint_matches(s.hint, t.qualname) for s in sites)
    ]


def _fixpoint(infos: list[LockInfo]):
    """Transitive acquires and blocking reach per simple function name."""
    by_name: dict[str, list[LockInfo]] = {}
    for info in infos:
        by_name.setdefault(info.qualname.rsplit(".", 1)[-1], []).append(info)

    trans_acquires: dict[int, set[str]] = {
        id(i): set(i.acquires) for i in infos
    }
    trans_blocking: dict[int, set[str]] = {
        id(i): set(i.blocking) for i in infos
    }
    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for info in infos:
            acq = trans_acquires[id(info)]
            blk = trans_blocking[id(info)]
            for callee, sites in info.calls.items():
                for target in _resolve(by_name, callee, sites):
                    if not trans_acquires[id(target)] <= acq:
                        acq |= trans_acquires[id(target)]
                        changed = True
                    if not trans_blocking[id(target)] <= blk:
                        blk |= trans_blocking[id(target)]
                        changed = True
    return by_name, trans_acquires, trans_blocking


def analyze_lock_order(
    paths: Iterable[Union[str, Path]],
) -> tuple[list[Finding], dict]:
    """Run the interprocedural pass; returns ``(findings, stats)``."""
    files = iter_python_files(paths)
    infos = _collect(files)
    by_name, trans_acquires, trans_blocking = _fixpoint(infos)

    # -- lock-order edges ------------------------------------------------------
    # edge (held -> acquired) -> one representative (info, line, via)
    edges: dict[tuple[str, str], tuple[LockInfo, int, str]] = {}
    for info in infos:
        for held, acquired, line in info.ordered_acquires:
            edges.setdefault((held, acquired), (info, line, "direct acquire"))
        for callee, sites in info.calls.items():
            targets = _resolve(by_name, callee, sites)
            if not targets:
                continue
            reach: set[str] = set()
            for target in targets:
                reach |= trans_acquires[id(target)]
            for site in sites:
                for held in site.held:
                    for acquired in reach:
                        edges.setdefault(
                            (held, acquired),
                            (info, site.line, f"call to {callee}()"),
                        )

    findings: list[Finding] = []
    for a, b in sorted(_cyclic_edges(edges)):
        info, line, via = edges[(a, b)]
        detail = (
            f"re-acquisition of non-reentrant lock {a!r}"
            if a == b
            else f"lock-order cycle: {a!r} held while acquiring {b!r} "
            f"(and elsewhere the reverse)"
        )
        findings.append(
            Finding(
                tool="lockorder",
                rule="LOCK001",
                severity=Severity.ERROR,
                path=info.path,
                line=line,
                message=(
                    f"{detail} in {info.qualname} (via {via}) — "
                    "potential deadlock"
                ),
            )
        )

    # -- blocking while holding ------------------------------------------------
    for info in infos:
        for primitive, sites in info.blocking.items():
            for site in sites:
                if site.held:
                    findings.append(
                        _blocking_finding(
                            info, site.line, primitive, site.held, "directly"
                        )
                    )
        for callee, sites in info.calls.items():
            targets = _resolve(by_name, callee, sites)
            blocked: set[str] = set()
            for target in targets:
                blocked |= trans_blocking[id(target)]
            if not blocked:
                continue
            for site in sites:
                if site.held:
                    findings.append(
                        _blocking_finding(
                            info,
                            site.line,
                            "/".join(sorted(blocked)),
                            site.held,
                            f"via {callee}()",
                        )
                    )

    stats = {
        "files": len(files),
        "functions": len(infos),
        "locks": len({lock for i in infos for lock in i.acquires}),
        "order_edges": len(edges),
        "await_edges": sum(len(i.awaited) for i in infos),
        "findings": len(findings),
    }
    return findings, stats


def _blocking_finding(
    info: LockInfo, line: int, primitive: str, held: tuple[str, ...], how: str
) -> Finding:
    return Finding(
        tool="lockorder",
        rule="LOCK002",
        severity=Severity.ERROR,
        path=info.path,
        line=line,
        message=(
            f"{info.qualname} blocks on {primitive} ({how}) while "
            f"holding {', '.join(repr(h) for h in held)} — stalls every "
            "other holder"
        ),
    )


def _cyclic_edges(
    edges: dict[tuple[str, str], tuple]
) -> set[tuple[str, str]]:
    """Edges participating in at least one cycle (incl. self-loops)."""
    graph: dict[str, set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    # Tarjan SCC, iterative.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    scc_of: dict[str, int] = {}
    counter = [0]
    scc_id = [0]

    for start in graph:
        if start in index:
            continue
        work = [(start, iter(sorted(graph[start])))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = scc_id[0]
                    if member == node:
                        break
                scc_id[0] += 1

    cyclic: set[tuple[str, str]] = set()
    for a, b in edges:
        if a == b:
            cyclic.add((a, b))
        elif a in scc_of and scc_of[a] == scc_of.get(b):
            # Distinct nodes sharing an SCC: a path b -> a exists too.
            cyclic.add((a, b))
    return cyclic
