"""Protocol spec registry, bounded model checker, and spec-compiled
conformance monitoring.

The repo's concurrent protocols — the latched global-buffer directory
(paper §3.2), the circuit breaker, the lease lifecycle, the durable join
journal, and the sharded sub-request settlement — are written down here
as explicit automatons (:mod:`repro.analysis.protocol.specs`): states,
guarded transitions, trace-event labels, and safety properties.  One
artifact, three uses:

* the **bounded model checker** (:mod:`repro.analysis.protocol.model`)
  exhaustively explores interleavings of K concurrent actors over each
  automaton and proves the declared safety properties offline, printing
  a counterexample path on violation;
* **planted mutations** (:data:`~repro.analysis.protocol.specs.MUTATIONS`)
  validate the checker itself: each deliberately broken spec (a dropped
  release edge, an allowed double-grant) must produce a counterexample,
  or the gate flags the checker as too weak to trust;
* the **conformance monitor**
  (:mod:`repro.analysis.protocol.conformance`) compiles the same
  automaton into a runtime trace checker that replays recorded JSONL
  streams — chaos, shard and recovery runs — against the spec instead
  of ad-hoc arithmetic.

``python -m repro.analysis protocol`` runs all three.
"""

from .conformance import ProtocolConformanceChecker, conformance_checkers
from .model import CheckResult, PropertyFailure, check_spec, format_counterexample
from .spec import (
    CounterBinding,
    EndInvariant,
    EventBinding,
    Mutation,
    ProtocolSpec,
    SafetyProperty,
    Transition,
)
from .specs import MUTATIONS, SPECS, get_spec

__all__ = [
    "Transition",
    "SafetyProperty",
    "EventBinding",
    "CounterBinding",
    "EndInvariant",
    "ProtocolSpec",
    "Mutation",
    "CheckResult",
    "PropertyFailure",
    "check_spec",
    "format_counterexample",
    "ProtocolConformanceChecker",
    "conformance_checkers",
    "SPECS",
    "MUTATIONS",
    "get_spec",
]
