"""Spec-compiled runtime conformance: replay a trace against an automaton.

One generic :class:`ProtocolConformanceChecker` is parameterized by a
:class:`~.spec.ProtocolSpec` and plugs into the standard checker
machinery (:mod:`repro.trace.checkers`): it keeps one automaton instance
per protocol key (breaker class, task id, ``(request, shard)`` pair,
page id), advances it on every bound event — firing the first candidate
transition whose source state matches and whose guard passes, with the
event's ``proc`` as the actor and its payload as ``data`` — and flags:

* an event with **no enabled transition** (the implementation took an
  edge the spec does not have);
* an instance ending the stream **outside the spec's terminal states**
  (wedged protocol);
* a violated **end invariant** over the global ledger counters.

Because the same automatons are proved safe by the bounded model
checker, a conforming trace inherits the proved properties: the trace
exhibits only specified edges, and every specified behaviour satisfies
the spec's safety properties.
"""

from __future__ import annotations

from typing import Any

from ...trace.checkers import InvariantChecker
from ...trace.events import EventKind, TraceEvent
from .spec import CounterBinding, EventBinding, ProtocolSpec
from .specs import SPECS

__all__ = ["ProtocolConformanceChecker", "conformance_checkers"]


class _Instance:
    """One live automaton: current state + per-instance variables."""

    __slots__ = ("state", "vars", "events")

    def __init__(self, spec: ProtocolSpec):
        self.state = spec.initial
        self.vars = {k: int(v) for k, v in spec.vars.items()}
        self.events = 0


class ProtocolConformanceChecker(InvariantChecker):
    """Replays recorded events against one protocol spec."""

    def __init__(self, spec: ProtocolSpec):
        super().__init__()
        self.spec = spec
        self.name = f"protocol:{spec.name}"
        self._by_name = spec.transitions_by_name()
        self._bindings: dict[EventKind, list[EventBinding]] = {}
        for binding in spec.bindings:
            self._bindings.setdefault(binding.kind, []).append(binding)
        self._counter_bindings: dict[EventKind, list[CounterBinding]] = {}
        self.counters: dict[str, int] = {}
        for cb in spec.counters:
            self._counter_bindings.setdefault(cb.kind, []).append(cb)
            self.counters.setdefault(cb.counter, 0)
        self._instances: dict[Any, _Instance] = {}

    # -- sink ------------------------------------------------------------------
    def observe(self, event: TraceEvent) -> None:
        for cb in self._counter_bindings.get(event.kind, ()):
            if cb.applies(event.data):
                self.counters[cb.counter] += cb.delta(event.data)
        if not self.spec.monitor_states:
            return
        for binding in self._bindings.get(event.kind, ()):
            if binding.applies(event.data):
                self._advance(binding, event)
                break

    def _advance(self, binding: EventBinding, event: TraceEvent) -> None:
        key = self.spec.key(event) if self.spec.key else None
        inst = self._instances.get(key)
        if inst is None:
            inst = self._instances[key] = _Instance(self.spec)
        inst.events += 1
        for tname in binding.transitions:
            t = self._by_name[tname]
            if not t.matches_source(inst.state):
                continue
            if t.guard is not None and not t.guard(
                inst.vars, event.proc, event.data
            ):
                continue
            if t.effect is not None:
                t.effect(inst.vars, event.proc, event.data)
            if t.target is not None:
                inst.state = t.target
            return
        self._violate(
            f"{self.spec.name}[{key!r}]: no transition enabled for "
            f"{event.kind.value} in state {inst.state!r} "
            f"(candidates: {', '.join(binding.transitions)}; "
            f"event #{event.seq} proc={event.proc} "
            f"data={dict(event.data)!r})"
        )

    # -- verdict ---------------------------------------------------------------
    def at_end(self) -> None:
        if self.spec.monitor_states and self.spec.terminal_states is not None:
            for key, inst in self._instances.items():
                if inst.state not in self.spec.terminal_states:
                    self._violate(
                        f"{self.spec.name}[{key!r}]: stream ended in "
                        f"non-terminal state {inst.state!r} (terminal: "
                        f"{sorted(self.spec.terminal_states)})"
                    )
        if any(self.counters.values()):
            for inv in self.spec.end_invariants:
                if not inv.predicate(self.counters):
                    inner = ", ".join(
                        f"{k}={v}" for k, v in sorted(self.counters.items())
                    )
                    self._violate(
                        f"{self.spec.name}: end invariant "
                        f"{inv.name} failed ({inv.description}): {inner}"
                    )

    def stats(self) -> dict[str, int]:
        out = {"events": self.events_seen, "instances": len(self._instances)}
        out.update(self.counters)
        return out


def conformance_checkers() -> list[InvariantChecker]:
    """Fresh conformance checkers for every registered spec.

    Each is vacuous on streams without its protocol's events, so the
    full set can ride alongside the hand-written checkers on every run.
    """
    return [ProtocolConformanceChecker(spec) for spec in SPECS]
