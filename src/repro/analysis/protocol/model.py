"""Bounded model checker: exhaustive BFS over K-actor interleavings.

A model state is the triple ``(shared, vars, actor_states)``; from each
state every actor may fire every enabled transition (source matches,
``bound`` and ``guard`` pass with ``data={}``).  BFS with a fingerprint
visited-set explores the reachable joint space exactly once per state;
``always`` properties are checked at every reachable state and
``deadlock`` properties at quiescent states (no transition enabled for
any actor).  Because BFS discovers states in increasing depth, the first
counterexample found for a property is a shortest one; its path is
reconstructed from parent pointers and rendered by
:func:`format_counterexample`.

Exploration continues after a property fails (only the first failure per
property is kept), so one run yields a complete per-property verdict —
which is what the mutation suite needs to assert that a planted break
violates *its* property and not an unrelated one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from .spec import ProtocolSpec, Transition

__all__ = [
    "Step",
    "PropertyFailure",
    "CheckResult",
    "check_spec",
    "format_counterexample",
]

#: Hard cap on explored states — exceeding it means a spec is missing a
#: ``bound`` on some counter, which is a spec bug, not a scale problem.
MAX_STATES = 200_000

State = tuple[str, tuple[tuple[str, int], ...], tuple[str, ...]]


@dataclass(frozen=True)
class Step:
    """One fired transition on a counterexample path."""

    actor: int
    transition: str
    shared: str
    vars: tuple[tuple[str, int], ...]
    actors: tuple[str, ...]

    def render(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.vars)
        return (
            f"actor {self.actor} fires {self.transition:<18} "
            f"-> state={self.shared} actors={'/'.join(self.actors)}"
            + (f" [{inner}]" if inner else "")
        )


@dataclass(frozen=True)
class PropertyFailure:
    """A safety property violated at a reachable (or quiescent) state."""

    prop: str
    description: str
    state: State
    path: tuple[Step, ...]
    deadlock: bool


@dataclass
class CheckResult:
    """Outcome of model-checking one spec."""

    spec: str
    states_explored: int
    transitions_fired: int
    properties: dict[str, bool] = field(default_factory=dict)
    failures: list[PropertyFailure] = field(default_factory=list)
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures and not self.truncated

    def summary(self) -> str:
        verdict = "proved" if self.ok else "VIOLATED"
        extra = " (state space truncated)" if self.truncated else ""
        return (
            f"{self.spec}: {verdict} {sum(self.properties.values())}/"
            f"{len(self.properties)} properties over "
            f"{self.states_explored} states{extra}"
        )


def _initial_state(spec: ProtocolSpec) -> State:
    return (
        spec.initial,
        tuple(sorted((k, int(v)) for k, v in spec.vars.items())),
        tuple(spec.actor_initial for _ in range(spec.actors)),
    )


def _enabled(
    spec: ProtocolSpec, state: State
) -> list[tuple[int, Transition]]:
    shared, var_items, actors = state
    vars_view = dict(var_items)
    moves: list[tuple[int, Transition]] = []
    for t in spec.transitions:
        if not t.model or not t.matches_source(shared):
            continue
        for actor in range(spec.actors):
            if t.actor_source is not None and actors[actor] != t.actor_source:
                continue
            if t.bound is not None and not t.bound(vars_view, actor, {}):
                continue
            if t.guard is not None and not t.guard(vars_view, actor, {}):
                continue
            moves.append((actor, t))
    return moves


def _fire(state: State, actor: int, t: Transition) -> State:
    shared, var_items, actors = state
    vars_dict = dict(var_items)
    if t.effect is not None:
        t.effect(vars_dict, actor, {})
    new_shared = shared if t.target is None else t.target
    new_actors = actors
    if t.actor_target is not None and actors[actor] != t.actor_target:
        lst = list(actors)
        lst[actor] = t.actor_target
        new_actors = tuple(lst)
    return (
        new_shared,
        tuple(sorted((k, int(v)) for k, v in vars_dict.items())),
        new_actors,
    )


def _path_to(
    state: State,
    parents: dict[State, Optional[tuple[State, int, str]]],
) -> tuple[Step, ...]:
    steps: list[Step] = []
    cursor: Optional[State] = state
    while cursor is not None:
        link = parents[cursor]
        if link is None:
            break
        prev, actor, tname = link
        steps.append(Step(actor, tname, cursor[0], cursor[1], cursor[2]))
        cursor = prev
    steps.reverse()
    return tuple(steps)


def check_spec(
    spec: ProtocolSpec, *, max_states: int = MAX_STATES
) -> CheckResult:
    """Exhaustively model-check *spec* up to *max_states* joint states."""
    result = CheckResult(spec=spec.name, states_explored=0, transitions_fired=0)
    for prop in spec.properties:
        result.properties[prop.name] = True
    failed: set[str] = set()

    def check(state: State, deadlock: bool) -> None:
        shared, var_items, actors = state
        vars_view = dict(var_items)
        for prop in spec.properties:
            if prop.name in failed:
                continue
            if (prop.on == "deadlock") != deadlock:
                continue
            if not prop.predicate(shared, vars_view, actors):
                failed.add(prop.name)
                result.properties[prop.name] = False
                result.failures.append(
                    PropertyFailure(
                        prop=prop.name,
                        description=prop.description,
                        state=state,
                        path=_path_to(state, parents),
                        deadlock=deadlock,
                    )
                )

    start = _initial_state(spec)
    parents: dict[State, Optional[tuple[State, int, str]]] = {start: None}
    queue: deque[State] = deque([start])
    while queue:
        state = queue.popleft()
        result.states_explored += 1
        moves = _enabled(spec, state)
        check(state, deadlock=not moves)
        for actor, t in moves:
            result.transitions_fired += 1
            nxt = _fire(state, actor, t)
            if nxt in parents:
                continue
            if len(parents) >= max_states:
                result.truncated = True
                return result
            parents[nxt] = (state, actor, t.name)
            queue.append(nxt)
    return result


def format_counterexample(spec: ProtocolSpec, failure: PropertyFailure) -> str:
    """Render one property failure as a human-readable trace."""
    shared, var_items, actors = failure.state
    inner = " ".join(f"{k}={v}" for k, v in var_items)
    lines = [
        f"counterexample for {spec.name}::{failure.prop}",
        f"  property: {failure.description}",
        f"  violated at: state={shared} actors={'/'.join(actors)}"
        + (f" [{inner}]" if inner else "")
        + (" (quiescent: no transition enabled)" if failure.deadlock else ""),
        f"  path ({len(failure.path)} steps from initial "
        f"state={spec.initial}):",
    ]
    if not failure.path:
        lines.append("    <initial state>")
    for i, step in enumerate(failure.path, 1):
        lines.append(f"    {i:2d}. {step.render()}")
    return "\n".join(lines)
