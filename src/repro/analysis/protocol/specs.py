"""The shipped protocol specs and their planted mutations.

Five protocols, each an explicit automaton with safety properties and
trace-event bindings:

* ``circuit-breaker`` — CLOSED/OPEN/HALF_OPEN with bounded probe slots
  (:class:`repro.service.resilience.CircuitBreaker`);
* ``lease`` — per-task grant -> heartbeat -> {complete, expire ->
  requeue} (:class:`repro.recovery.lease.LeaseTable` + result ledger);
* ``journal`` — CRC-framed append/heal/scan/replay
  (:class:`repro.recovery.journal.JoinJournal`);
* ``shard-settlement`` — per ``(request, shard)`` settle-exactly-once
  with replica failover (:class:`repro.shard.router.ShardRouter`);
* ``buffer-directory`` — per-page register/deregister/remote-fetch
  ownership (:class:`repro.buffer.global_buffer.GlobalDirectory`).

Each mutation in :data:`MUTATIONS` plants one realistic implementation
bug into a spec (drop the release edge, allow a double grant, fail a
sub-request that was never sent...).  The model checker must produce a
counterexample for every one of them — that is the evidence the checker
is strong enough for the unmutated proofs to mean something.
"""

from __future__ import annotations

from ...trace.events import EventKind
from .spec import (
    CounterBinding,
    EndInvariant,
    EventBinding,
    Mutation,
    ProtocolSpec,
    SafetyProperty,
    Transition,
)

__all__ = ["SPECS", "MUTATIONS", "get_spec"]


def _inc(counter: str, amount: int = 1):
    def effect(vars, actor, data):
        vars[counter] = vars.get(counter, 0) + amount

    return effect


def _primary(data) -> bool:
    return int(data.get("split", 0)) == 0


# ---------------------------------------------------------------------------
# circuit-breaker: closed -> open -> half_open -> {open, closed}
# ---------------------------------------------------------------------------
# Actor-local state models the callers: a half-open admission moves the
# caller to "probing"; a cancelled caller ("cancelled") holds a probe slot
# it can only give back via release().  The wedge property is exactly the
# hazard the release() path exists to prevent: with the release edge
# dropped, K cancelled callers exhaust the slots and HALF_OPEN quiesces
# with no way out.
_HALF_OPEN_MAX = 2

_BREAKER = ProtocolSpec(
    name="circuit-breaker",
    description=(
        "Per-request-class circuit breaker: consecutive failures trip "
        "CLOSED->OPEN, a reset timeout half-opens, bounded probe slots "
        "settle HALF_OPEN->{CLOSED,OPEN}; cancelled probes must release "
        "their slot"
    ),
    states=("closed", "open", "half_open"),
    initial="closed",
    vars={"probes": 0},
    actors=3,
    actor_states=("idle", "probing", "cancelled"),
    transitions=(
        # The failure-threshold counter is abstracted: from CLOSED the
        # breaker may trip at any point (threshold reached).
        Transition("trip", "closed", "open"),
        Transition(
            "reopen",
            "open",
            "half_open",
            effect=lambda v, a, d: v.__setitem__("probes", 0),
        ),
        Transition(
            "probe_admit",
            "half_open",
            "half_open",
            actor_source="idle",
            actor_target="probing",
            guard=lambda v, a, d: v["probes"] < _HALF_OPEN_MAX,
            effect=_inc("probes"),
        ),
        Transition(
            "probe_ok",
            "half_open",
            "closed",
            actor_source="probing",
            actor_target="idle",
            effect=lambda v, a, d: v.__setitem__(
                "probes", max(0, v["probes"] - 1)
            ),
        ),
        Transition(
            "probe_fail",
            "half_open",
            "open",
            actor_source="probing",
            actor_target="idle",
            effect=lambda v, a, d: v.__setitem__(
                "probes", max(0, v["probes"] - 1)
            ),
        ),
        # The awaiting attempt is torn down before any outcome: the
        # caller keeps the slot until it releases it.
        Transition(
            "probe_cancel",
            None,
            None,
            actor_source="probing",
            actor_target="cancelled",
        ),
        Transition(
            "probe_release",
            "half_open",
            "half_open",
            actor_source="cancelled",
            actor_target="idle",
            effect=lambda v, a, d: v.__setitem__(
                "probes", max(0, v["probes"] - 1)
            ),
        ),
        # A probe whose breaker already left HALF_OPEN (another probe
        # settled first) records its outcome without touching slots.
        Transition(
            "late_outcome",
            ("closed", "open"),
            None,
            actor_source="probing",
            actor_target="idle",
        ),
        Transition(
            "late_release",
            ("closed", "open"),
            None,
            actor_source="cancelled",
            actor_target="idle",
        ),
    ),
    properties=(
        SafetyProperty(
            "no_wedged_half_open",
            "the breaker never quiesces in HALF_OPEN: some probe can "
            "always be admitted, settled, or released",
            lambda shared, vars, actors: shared != "half_open",
            on="deadlock",
        ),
        SafetyProperty(
            "probe_slots_bounded",
            f"in-flight half-open probes stay within 0..{_HALF_OPEN_MAX}",
            lambda shared, vars, actors: 0
            <= vars["probes"]
            <= _HALF_OPEN_MAX,
        ),
    ),
    key=lambda event: event.data.get("cls", "?"),
    bindings=(
        # The observable trace carries only the state transitions; the
        # candidate lists reproduce the lawful edge set (trip from
        # CLOSED or a failed probe from HALF_OPEN both announce OPEN).
        EventBinding(EventKind.SUP_BREAKER_OPEN, ("trip", "probe_fail")),
        EventBinding(EventKind.SUP_BREAKER_HALF_OPEN, ("reopen",)),
        EventBinding(EventKind.SUP_BREAKER_CLOSED, ("probe_ok",)),
    ),
)


# ---------------------------------------------------------------------------
# lease: queued -> leased -> {done, orphaned -> queued}; journal replay
# ---------------------------------------------------------------------------
_LEASE = ProtocolSpec(
    name="lease",
    description=(
        "Per-task lease lifecycle: grant -> heartbeat -> {complete, "
        "expire -> requeue}, with journal replay standing in for a "
        "committed prior run; grants reconcile with completions + "
        "expirations"
    ),
    states=("queued", "leased", "orphaned", "done", "replayed"),
    initial="queued",
    vars={"grants": 0, "completions": 0, "expirations": 0, "requeues": 0},
    actors=2,
    transitions=(
        Transition(
            "grant",
            "queued",
            "leased",
            bound=lambda v, a, d: v["grants"] < 3,
            effect=_inc("grants"),
        ),
        Transition("complete", "leased", "done", effect=_inc("completions")),
        Transition("expire", "leased", "orphaned", effect=_inc("expirations")),
        Transition("requeue", "orphaned", "queued", effect=_inc("requeues")),
        # Journal replay commits the task without a live execution; it
        # only happens at resume, before any grant of this run.
        Transition(
            "replay",
            "queued",
            "replayed",
            guard=lambda v, a, d: v["grants"] == 0,
        ),
        # Late duplicates of an already-committed task are dropped by
        # the exactly-once ledger: lawful echoes, not explored edges.
        Transition("dup_done", "done", "done", model=False),
        Transition("dup_replayed", "replayed", "replayed", model=False),
    ),
    properties=(
        SafetyProperty(
            "at_most_one_completion",
            "a task commits at most one primary completion",
            lambda shared, vars, actors: vars["completions"] <= 1,
        ),
        SafetyProperty(
            "ledger_balance",
            "at quiescence every grant was settled: grants = "
            "completions + expirations",
            lambda shared, vars, actors: vars["grants"]
            == vars["completions"] + vars["expirations"],
            on="deadlock",
        ),
        SafetyProperty(
            "orphan_requeued",
            "an expired task never wedges: every expiry is followed by "
            "a requeue",
            lambda shared, vars, actors: shared != "orphaned",
            on="deadlock",
        ),
    ),
    key=lambda event: event.data.get("task"),
    bindings=(
        EventBinding(EventKind.LSE_GRANTED, ("grant",), when=_primary),
        EventBinding(EventKind.LSE_COMPLETED, ("complete",), when=_primary),
        EventBinding(EventKind.LSE_EXPIRED, ("expire",), when=_primary),
        EventBinding(EventKind.LSE_REQUEUED, ("requeue",)),
        EventBinding(EventKind.JNL_REPLAYED, ("replay",)),
        EventBinding(
            EventKind.LSE_DUP_DROPPED, ("dup_done", "dup_replayed")
        ),
    ),
    counters=(
        CounterBinding("grants", EventKind.LSE_GRANTED, when=_primary),
        CounterBinding("completions", EventKind.LSE_COMPLETED, when=_primary),
        CounterBinding("expirations", EventKind.LSE_EXPIRED, when=_primary),
        CounterBinding("requeues", EventKind.LSE_REQUEUED),
    ),
    end_invariants=(
        EndInvariant(
            "grants_settled",
            "primary grants = completions + expirations",
            lambda c: c["grants"] == c["completions"] + c["expirations"],
        ),
        EndInvariant(
            "expiry_requeues",
            "every primary expiry requeued its task",
            lambda c: c["expirations"] == c["requeues"],
        ),
    ),
    terminal_states=frozenset({"queued", "done", "replayed"}),
)


# ---------------------------------------------------------------------------
# journal: CRC-framed append / torn tail / heal / scan / replay
# ---------------------------------------------------------------------------
_JOURNAL = ProtocolSpec(
    name="journal",
    description=(
        "Durable join journal: CRC-framed appends; a torn tail is "
        "healed (newline first) before the next record so no committed "
        "record is ever corrupted; scans detect exactly the torn lines; "
        "replay returns every committed record"
    ),
    states=("clean", "torn"),
    initial="clean",
    vars={"committed": 0, "torn_lines": 0, "lost": 0, "replayed": 0,
          "detected": 0},
    actors=1,
    transitions=(
        Transition(
            "append_ok",
            "clean",
            "clean",
            bound=lambda v, a, d: v["committed"] < 3,
            effect=_inc("committed"),
        ),
        # A crash or injected tear truncates the record mid-line: it is
        # not committed, and the tail is left without a newline.
        Transition(
            "append_torn",
            "clean",
            "torn",
            bound=lambda v, a, d: v["torn_lines"] < 2,
            effect=_inc("torn_lines"),
        ),
        # The writer notices the missing trailing newline and writes the
        # healing newline before its record: the torn garbage stays its
        # own (unparseable) line and the new record commits intact.
        Transition(
            "heal_append",
            "torn",
            "clean",
            bound=lambda v, a, d: v["committed"] < 3,
            effect=_inc("committed"),
        ),
        # A scan parses every line: it reports exactly the torn ones.
        Transition(
            "scan",
            None,
            None,
            effect=lambda v, a, d: v.__setitem__(
                "detected", v["torn_lines"]
            ),
        ),
        Transition(
            "replay",
            None,
            None,
            effect=lambda v, a, d: v.__setitem__("replayed", v["committed"]),
        ),
    ),
    properties=(
        SafetyProperty(
            "no_lost_commit",
            "appending over a torn tail never corrupts a committed "
            "record",
            lambda shared, vars, actors: vars["lost"] == 0,
        ),
        SafetyProperty(
            "replay_bounded",
            "replay returns only committed records",
            lambda shared, vars, actors: vars["replayed"] <= vars["committed"],
        ),
        SafetyProperty(
            "torn_accounted",
            "a scan never reports more torn lines than were torn",
            lambda shared, vars, actors: vars["detected"] <= vars["torn_lines"],
        ),
    ),
    # The tail state is not observable per-event: healed torn lines stay
    # in the file (every later scan re-detects them) and an in-run torn
    # append emits no JNL_TORN_DETECTED, so per-event state replay would
    # flag lawful traces.  Conformance checks the scan/heal ledger only.
    monitor_states=False,
    key=lambda event: "journal",
    counters=(
        CounterBinding("appends", EventKind.JNL_APPENDED),
        CounterBinding(
            "appends_torn",
            EventKind.JNL_APPENDED,
            amount=lambda d: int(d.get("torn", 0)),
        ),
        CounterBinding("scans", EventKind.JNL_SCANNED),
        CounterBinding(
            "scanned_torn",
            EventKind.JNL_SCANNED,
            amount=lambda d: int(d.get("torn", 0)),
        ),
        CounterBinding("torn_detected", EventKind.JNL_TORN_DETECTED),
        CounterBinding("replays", EventKind.JNL_REPLAYED),
    ),
    end_invariants=(
        EndInvariant(
            "scan_torn_ledger",
            "scan summaries agree with per-line torn detections",
            lambda c: c["scans"] == 0 or c["scanned_torn"] == c["torn_detected"],
        ),
    ),
)


# ---------------------------------------------------------------------------
# shard-settlement: per (request, shard) settle-exactly-once
# ---------------------------------------------------------------------------
_SETTLEMENT = ProtocolSpec(
    name="shard-settlement",
    description=(
        "Sharded sub-request settlement: every SENT settles as exactly "
        "one of DONE / FAILOVER / FAILED; a FAILOVER is always followed "
        "by another SENT; at most one DONE per (request, shard)"
    ),
    states=("idle", "inflight", "retry_pending", "done", "failed"),
    initial="idle",
    vars={"sent": 0, "completed": 0, "failovers": 0, "failures": 0},
    actors=1,
    transitions=(
        Transition("send", "idle", "inflight", effect=_inc("sent")),
        Transition(
            "resend",
            "retry_pending",
            "inflight",
            bound=lambda v, a, d: v["sent"] < 4,
            effect=_inc("sent"),
        ),
        Transition(
            "settle_done", "inflight", "done", effect=_inc("completed")
        ),
        Transition(
            "failover",
            "inflight",
            "retry_pending",
            bound=lambda v, a, d: v["failovers"] < 3,
            effect=_inc("failovers"),
        ),
        Transition("give_up", "inflight", "failed", effect=_inc("failures")),
    ),
    properties=(
        SafetyProperty(
            "at_most_one_done",
            "a (request, shard) sub-request completes at most once",
            lambda shared, vars, actors: vars["completed"] <= 1,
        ),
        SafetyProperty(
            "settled_balance",
            "at quiescence every send was settled: sent = done + "
            "failovers + failed",
            lambda shared, vars, actors: vars["sent"]
            == vars["completed"] + vars["failovers"] + vars["failures"],
            on="deadlock",
        ),
        SafetyProperty(
            "failover_resent",
            "a failover never wedges: the next replica's send follows",
            lambda shared, vars, actors: shared != "retry_pending",
            on="deadlock",
        ),
    ),
    key=lambda event: (event.data.get("req"), event.data.get("shard")),
    bindings=(
        EventBinding(EventKind.SHD_SUBREQUEST_SENT, ("send", "resend")),
        EventBinding(EventKind.SHD_SUBREQUEST_DONE, ("settle_done",)),
        EventBinding(EventKind.SHD_FAILOVER, ("failover",)),
        EventBinding(EventKind.SHD_SUBREQUEST_FAILED, ("give_up",)),
    ),
    counters=(
        CounterBinding("sends", EventKind.SHD_SUBREQUEST_SENT),
        CounterBinding("dones", EventKind.SHD_SUBREQUEST_DONE),
        CounterBinding("failovers", EventKind.SHD_FAILOVER),
        CounterBinding("failures", EventKind.SHD_SUBREQUEST_FAILED),
    ),
    end_invariants=(
        EndInvariant(
            "fanout_settled",
            "sends = dones + failovers + failures across the stream",
            lambda c: c["sends"] == c["dones"] + c["failovers"] + c["failures"],
        ),
    ),
    terminal_states=frozenset({"done", "failed"}),
)


# ---------------------------------------------------------------------------
# buffer-directory: per-page register / deregister / remote fetch
# ---------------------------------------------------------------------------
def _dir_register_guard(v, a, d):
    return v["owner"] == -1


def _dir_reregister_guard(v, a, d):
    return v["owner"] == a


def _dir_deregister_guard(v, a, d):
    return v["owner"] == a


def _dir_fetch_guard(v, a, d):
    # At runtime the event names the owner it copied from; in the model
    # (data={}) the .get() falls back to the directory's own owner.
    return (
        v["owner"] != -1
        and v["owner"] != a
        and int(d.get("owner", v["owner"])) == v["owner"]
    )


def _dir_set_owner(v, a, d):
    v["owner"] = a


_DIRECTORY = ProtocolSpec(
    name="buffer-directory",
    description=(
        "Latched global-buffer directory (paper section 3.2): a page "
        "has at most one registered owner; only the owner deregisters "
        "(stale evictions must not drop a newer registration); remote "
        "fetches copy from the current owner"
    ),
    states=("absent", "resident"),
    initial="absent",
    vars={"owner": -1, "foreign_registers": 0, "stale_deregisters": 0},
    actors=3,
    transitions=(
        Transition(
            "load_register",
            "absent",
            "resident",
            guard=_dir_register_guard,
            effect=_dir_set_owner,
        ),
        # The owner reloading its own evicted-then-missed page re-registers.
        Transition(
            "reload_register",
            "resident",
            "resident",
            guard=_dir_reregister_guard,
        ),
        Transition(
            "deregister",
            "resident",
            "absent",
            guard=_dir_deregister_guard,
            effect=lambda v, a, d: v.__setitem__("owner", -1),
        ),
        Transition("fetch", "resident", "resident", guard=_dir_fetch_guard),
    ),
    properties=(
        SafetyProperty(
            "single_owner",
            "a resident page has exactly one owner; an absent page has "
            "none",
            lambda shared, vars, actors: (shared == "resident")
            == (vars["owner"] != -1),
        ),
        SafetyProperty(
            "no_foreign_register",
            "no processor overwrites another owner's registration",
            lambda shared, vars, actors: vars["foreign_registers"] == 0,
        ),
        SafetyProperty(
            "no_stale_deregister",
            "a stale eviction never drops a newer registration",
            lambda shared, vars, actors: vars["stale_deregisters"] == 0,
        ),
    ),
    key=lambda event: event.data.get("page"),
    bindings=(
        EventBinding(
            EventKind.PAGE_REGISTERED, ("load_register", "reload_register")
        ),
        EventBinding(EventKind.PAGE_DEREGISTERED, ("deregister",)),
        EventBinding(EventKind.REMOTE_FETCH, ("fetch",)),
    ),
)


SPECS: tuple[ProtocolSpec, ...] = (
    _BREAKER,
    _LEASE,
    _JOURNAL,
    _SETTLEMENT,
    _DIRECTORY,
)


def get_spec(name: str) -> ProtocolSpec:
    for spec in SPECS:
        if spec.name == name:
            return spec
    raise KeyError(f"no protocol spec named {name!r}")


# ---------------------------------------------------------------------------
# Planted mutations: each must yield a counterexample
# ---------------------------------------------------------------------------
def _mut_drop_release(spec: ProtocolSpec) -> ProtocolSpec:
    return spec.replace_transitions(drop=("probe_release", "late_release"))


def _mut_unbounded_probes(spec: ProtocolSpec) -> ProtocolSpec:
    by_name = spec.transitions_by_name()
    admit = by_name["probe_admit"]
    return spec.replace_transitions(
        drop=("probe_admit",),
        add=(
            Transition(
                "probe_admit",
                admit.source,
                admit.target,
                actor_source=admit.actor_source,
                actor_target=admit.actor_target,
                guard=None,  # the half_open_max check removed
                effect=admit.effect,
            ),
        ),
    )


def _mut_double_grant(spec: ProtocolSpec) -> ProtocolSpec:
    return spec.replace_transitions(
        add=(
            Transition(
                "grant_dup",
                "leased",
                "leased",
                bound=lambda v, a, d: v["grants"] < 3,
                effect=_inc("grants"),
            ),
        )
    )


def _mut_drop_requeue(spec: ProtocolSpec) -> ProtocolSpec:
    return spec.replace_transitions(drop=("requeue",))


def _mut_blind_append(spec: ProtocolSpec) -> ProtocolSpec:
    # The writer no longer checks for a missing trailing newline: its
    # record lands on the torn line and both become one garbage line.
    def blind(v, a, d):
        v["lost"] = v.get("lost", 0) + 1

    return spec.replace_transitions(
        drop=("heal_append",),
        add=(Transition("heal_append", "torn", "clean", effect=blind),),
    )


def _mut_fail_unsent(spec: ProtocolSpec) -> ProtocolSpec:
    return spec.replace_transitions(
        add=(
            Transition(
                "give_up_unsent", "idle", "failed", effect=_inc("failures")
            ),
        )
    )


def _mut_fail_after_failover(spec: ProtocolSpec) -> ProtocolSpec:
    return spec.replace_transitions(
        add=(
            Transition(
                "give_up_pending",
                "retry_pending",
                "failed",
                effect=_inc("failures"),
            ),
        )
    )


def _mut_register_overwrite(spec: ProtocolSpec) -> ProtocolSpec:
    def overwrite(v, a, d):
        if v["owner"] not in (-1, a):
            v["foreign_registers"] += 1
        v["owner"] = a

    return spec.replace_transitions(
        add=(
            Transition(
                "register_any",
                "resident",
                "resident",
                bound=lambda v, a, d: v["foreign_registers"] < 2,
                effect=overwrite,
            ),
        )
    )


def _mut_stale_deregister(spec: ProtocolSpec) -> ProtocolSpec:
    def stale(v, a, d):
        if v["owner"] != a:
            v["stale_deregisters"] += 1
        v["owner"] = -1

    return spec.replace_transitions(
        add=(
            Transition(
                "deregister_any",
                "resident",
                "absent",
                bound=lambda v, a, d: v["stale_deregisters"] < 2,
                effect=stale,
            ),
        )
    )


MUTATIONS: tuple[Mutation, ...] = (
    Mutation(
        "breaker-drop-release",
        "cancelled probes never release their slot (release() removed)",
        "circuit-breaker",
        "no_wedged_half_open",
        _mut_drop_release,
    ),
    Mutation(
        "breaker-unbounded-probes",
        "allow() stops checking half_open_max before admitting a probe",
        "circuit-breaker",
        "probe_slots_bounded",
        _mut_unbounded_probes,
    ),
    Mutation(
        "lease-double-grant",
        "a second lease is granted on an already-leased task",
        "lease",
        "ledger_balance",
        _mut_double_grant,
    ),
    Mutation(
        "lease-drop-requeue",
        "an expired task's requeue edge is dropped (orphan wedges)",
        "lease",
        "orphan_requeued",
        _mut_drop_requeue,
    ),
    Mutation(
        "journal-blind-append",
        "appends no longer heal a torn tail before writing",
        "journal",
        "no_lost_commit",
        _mut_blind_append,
    ),
    Mutation(
        "settlement-fail-unsent",
        "a sub-request settles FAILED without ever being sent",
        "shard-settlement",
        "settled_balance",
        _mut_fail_unsent,
    ),
    Mutation(
        "settlement-fail-after-failover",
        "a sub-request settles FAILED from retry_pending, breaking the "
        "failover-then-resend promise",
        "shard-settlement",
        "settled_balance",
        _mut_fail_after_failover,
    ),
    Mutation(
        "directory-register-overwrite",
        "register stops checking ownership and overwrites another owner",
        "buffer-directory",
        "no_foreign_register",
        _mut_register_overwrite,
    ),
    Mutation(
        "directory-stale-deregister",
        "deregister stops checking ownership (stale eviction drops a "
        "newer registration)",
        "buffer-directory",
        "no_stale_deregister",
        _mut_stale_deregister,
    ),
)
