"""Declarative protocol specifications.

A :class:`ProtocolSpec` is one automaton written down once and consumed
twice: the bounded model checker (:mod:`.model`) explores interleavings
of K abstract actors over it, and the conformance monitor
(:mod:`.conformance`) replays recorded trace events against it.  To keep
one artifact honest for both uses, every guard and effect has the single
signature ``(vars, actor, data)``:

* ``vars`` — the mutable shared-variable dict (model: the explored
  state; conformance: the per-instance dict);
* ``actor`` — the firing actor (model: an abstract actor index in
  ``range(spec.actors)``; conformance: the event's ``proc``);
* ``data`` — the trace event payload (model: always ``{}``, so guards
  written as ``data.get(key, fallback)`` degrade gracefully).

Model-only concerns are kept out of the semantic guard: ``bound`` caps
state-space growth (e.g. "at most 3 grants") and is never evaluated at
runtime, and ``model=False`` marks runtime-only transitions (duplicate
drops, late echoes) the checker should not explore.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Sequence

from ...trace.events import EventKind, TraceEvent

__all__ = [
    "Transition",
    "SafetyProperty",
    "EventBinding",
    "CounterBinding",
    "EndInvariant",
    "ProtocolSpec",
    "Mutation",
]

#: ``(vars, actor, data) -> bool`` — enabling condition of a transition.
Guard = Callable[[dict, int, Mapping[str, Any]], bool]
#: ``(vars, actor, data) -> None`` — state update; mutates ``vars`` in place.
Effect = Callable[[dict, int, Mapping[str, Any]], None]


@dataclass(frozen=True)
class Transition:
    """One guarded edge of the automaton.

    ``source``/``target`` are shared protocol states; ``source`` may be a
    tuple (edge enabled from several states) or ``None`` (any state), and
    ``target=None`` leaves the shared state unchanged.  ``actor_source``/
    ``actor_target`` do the same for the firing actor's local state
    (``None`` = any / unchanged) — actor-local state is what lets the
    model express "the caller that was cancelled is the only one who can
    release the slot".
    """

    name: str
    source: Optional[str | tuple[str, ...]]
    target: Optional[str]
    actor_source: Optional[str] = None
    actor_target: Optional[str] = None
    guard: Optional[Guard] = None
    #: Model-only state-space cap (never evaluated during conformance).
    bound: Optional[Guard] = None
    effect: Optional[Effect] = None
    #: Explored by the model checker; ``False`` = conformance-only edge.
    model: bool = True

    def sources(self) -> Optional[tuple[str, ...]]:
        if self.source is None:
            return None
        if isinstance(self.source, tuple):
            return self.source
        return (self.source,)

    def matches_source(self, shared: str) -> bool:
        sources = self.sources()
        return sources is None or shared in sources


@dataclass(frozen=True)
class SafetyProperty:
    """A predicate over reachable states.

    ``on="always"`` is checked at every reachable state; ``on="deadlock"``
    only at quiescent states (no model transition enabled) — the shape of
    liveness-flavoured properties like "the protocol never wedges in
    HALF_OPEN" in a bounded, untimed model.
    """

    name: str
    description: str
    predicate: Callable[[str, Mapping[str, int], tuple[str, ...]], bool]
    on: str = "always"  # "always" | "deadlock"

    def __post_init__(self) -> None:
        if self.on not in ("always", "deadlock"):
            raise ValueError(f"unknown property mode {self.on!r}")


@dataclass(frozen=True)
class EventBinding:
    """Maps one trace event kind onto candidate transitions.

    At replay, the first listed transition whose source matches the
    instance's current state and whose guard passes is fired; no match is
    a conformance violation.  ``when`` filters which events the binding
    applies to at all (e.g. only primary leases, ``split == 0``).
    """

    kind: EventKind
    transitions: tuple[str, ...]
    when: Optional[Callable[[Mapping[str, Any]], bool]] = None

    def applies(self, data: Mapping[str, Any]) -> bool:
        return self.when is None or bool(self.when(data))


@dataclass(frozen=True)
class CounterBinding:
    """A global (cross-instance) ledger counter fed by one event kind."""

    counter: str
    kind: EventKind
    when: Optional[Callable[[Mapping[str, Any]], bool]] = None
    #: Increment amount from the payload (default 1 per event).
    amount: Optional[Callable[[Mapping[str, Any]], int]] = None

    def applies(self, data: Mapping[str, Any]) -> bool:
        return self.when is None or bool(self.when(data))

    def delta(self, data: Mapping[str, Any]) -> int:
        return 1 if self.amount is None else int(self.amount(data))


@dataclass(frozen=True)
class EndInvariant:
    """End-of-stream equation over the global counters."""

    name: str
    description: str
    predicate: Callable[[Mapping[str, int]], bool]


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol: automaton + properties + trace-event bindings."""

    name: str
    description: str
    states: tuple[str, ...]
    initial: str
    transitions: tuple[Transition, ...]
    properties: tuple[SafetyProperty, ...] = ()
    #: Initial shared variables (ints only — they are fingerprinted).
    vars: Mapping[str, int] = field(default_factory=dict)
    #: Number of concurrent abstract actors the model checker interleaves.
    actors: int = 2
    actor_states: tuple[str, ...] = ("idle",)
    actor_initial: str = "idle"
    # -- conformance ----------------------------------------------------------
    #: Instance key extracted from a bound event (``None`` = skip event).
    key: Optional[Callable[[TraceEvent], Any]] = None
    bindings: tuple[EventBinding, ...] = ()
    counters: tuple[CounterBinding, ...] = ()
    end_invariants: tuple[EndInvariant, ...] = ()
    #: States an instance may lawfully end the stream in (``None`` = any).
    terminal_states: Optional[frozenset[str]] = None
    #: ``False`` — the per-instance automaton is not replayed (only
    #: counters/end-invariants run) because the protocol state is not
    #: observable per-event; see the journal spec for the rationale.
    monitor_states: bool = True

    def __post_init__(self) -> None:
        names = [t.name for t in self.transitions]
        if len(names) != len(set(names)):
            raise ValueError(f"{self.name}: duplicate transition names")
        if self.initial not in self.states:
            raise ValueError(f"{self.name}: initial state not in states")
        if self.actor_initial not in self.actor_states:
            raise ValueError(f"{self.name}: actor_initial not in actor_states")
        valid = set(self.states)
        for t in self.transitions:
            for s in t.sources() or ():
                if s not in valid:
                    raise ValueError(f"{self.name}.{t.name}: bad source {s!r}")
            if t.target is not None and t.target not in valid:
                raise ValueError(f"{self.name}.{t.name}: bad target {t.target!r}")
            for s in (t.actor_source, t.actor_target):
                if s is not None and s not in self.actor_states:
                    raise ValueError(
                        f"{self.name}.{t.name}: bad actor state {s!r}"
                    )
        by_name = self.transitions_by_name()
        for binding in self.bindings:
            for tname in binding.transitions:
                if tname not in by_name:
                    raise ValueError(
                        f"{self.name}: binding for {binding.kind.value} "
                        f"names unknown transition {tname!r}"
                    )
        if self.terminal_states is not None:
            bad = self.terminal_states - valid
            if bad:
                raise ValueError(f"{self.name}: bad terminal states {bad}")

    def transitions_by_name(self) -> dict[str, Transition]:
        return {t.name: t for t in self.transitions}

    def replace_transitions(
        self, *, drop: Sequence[str] = (), add: Sequence[Transition] = ()
    ) -> "ProtocolSpec":
        """A copy with *drop* transitions removed and *add* appended —
        the mutation-builder primitive."""
        dropped = set(drop)
        known = {t.name for t in self.transitions}
        missing = dropped - known
        if missing:
            raise ValueError(f"{self.name}: cannot drop unknown {missing}")
        kept = tuple(t for t in self.transitions if t.name not in dropped)
        remaining = {t.name for t in kept} | {t.name for t in add}
        bindings = tuple(
            replace(
                b,
                transitions=tuple(
                    n for n in b.transitions if n in remaining
                ),
            )
            for b in self.bindings
        )
        bindings = tuple(b for b in bindings if b.transitions)
        return replace(
            self, transitions=kept + tuple(add), bindings=bindings
        )


@dataclass(frozen=True)
class Mutation:
    """A deliberately broken variant of a registered spec.

    The model checker must find a counterexample violating
    ``expect_property`` on ``apply(spec)`` — if it cannot, the checker
    (not the spec) is what's broken, and the gate fails.
    """

    name: str
    description: str
    spec_name: str
    expect_property: str
    apply: Callable[[ProtocolSpec], ProtocolSpec]
