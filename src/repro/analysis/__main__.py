"""``python -m repro.analysis`` — the analysis gate.

Subcommands
-----------
``lint``      run the AST rules over source paths
``races``     run the trace race detector over a recorded JSONL trace
``external``  run the gated off-the-shelf tools (ruff, mypy)
``protocol``  model-check the protocol spec registry: prove every declared
              safety property, validate the checker against the planted
              spec mutations (each must yield a counterexample), and —
              with ``--trace`` — replay a recorded JSONL stream through
              the spec-compiled conformance monitors
``lockorder`` interprocedural lock-order / await-graph analysis (acquire
              cycles, blocking while holding a latch)
``all``       everything under one gate: lint + external + protocol +
              lockorder + races; when no ``--trace`` is given, a short
              traced GSRR simulation run is generated on the fly so the
              race and conformance smoke tests are self-contained

Exit codes: **0** — gate passes (no unbaselined errors); **1** — new
errors; **2** — the analysis itself failed.  Warnings never gate.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from . import external
from .findings import (
    Finding,
    Report,
    Severity,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from .lint import run_lint
from .lockorder import analyze_lock_order
from .races import detect_races

DEFAULT_PATHS = ["src/repro"]
DEFAULT_BASELINE = "analysis-baseline.json"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-aware static analysis and trace race detection.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--json",
            metavar="FILE",
            default=None,
            help="also write the full JSON report to FILE",
        )

    lint = sub.add_parser("lint", help="run the AST lint rules")
    lint.add_argument("paths", nargs="*", default=None)
    lint.add_argument("--baseline", default=None, metavar="FILE")
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current error findings as the new baseline",
    )
    lint.add_argument(
        "--select", default=None, help="comma-separated rule ids to run"
    )
    common(lint)

    races = sub.add_parser("races", help="run the trace race detector")
    races.add_argument("--trace", required=True, metavar="JSONL")
    races.add_argument(
        "--explain",
        action="store_true",
        help="attach the conflicting access histories to each race",
    )
    common(races)

    ext = sub.add_parser("external", help="run ruff/mypy when installed")
    ext.add_argument("paths", nargs="*", default=None)
    common(ext)

    protocol = sub.add_parser(
        "protocol",
        help="model-check the protocol specs and validate by mutation",
    )
    protocol.add_argument(
        "--trace",
        default=None,
        metavar="JSONL",
        help="also replay this trace through the conformance monitors",
    )
    protocol.add_argument(
        "--skip-mutations",
        action="store_true",
        help="skip the mutation self-validation pass",
    )
    common(protocol)

    lockorder = sub.add_parser(
        "lockorder",
        help="interprocedural lock-order / await-graph analysis",
    )
    lockorder.add_argument("paths", nargs="*", default=None)
    common(lockorder)

    everything = sub.add_parser("all", help="lint + external + races gate")
    everything.add_argument("paths", nargs="*", default=None)
    everything.add_argument("--baseline", default=None, metavar="FILE")
    everything.add_argument("--write-baseline", action="store_true")
    everything.add_argument(
        "--trace",
        default=None,
        metavar="JSONL",
        help="race-check this trace instead of generating a fresh one",
    )
    everything.add_argument("--explain", action="store_true")
    everything.add_argument(
        "--no-races",
        action="store_true",
        help="skip the race smoke test (lint/external only)",
    )
    common(everything)
    return parser


def _resolve_paths(raw) -> list[str]:
    if raw:
        return list(raw)
    for candidate in DEFAULT_PATHS:
        if Path(candidate).exists():
            return [candidate]
    return ["."]


def _resolve_baseline(raw) -> str | None:
    if raw is not None:
        return raw
    return DEFAULT_BASELINE if Path(DEFAULT_BASELINE).exists() else None


def _generate_trace(path: Path) -> None:
    """Run a short traced GSRR join so the race gate has a real trace."""
    from ..datagen import build_tree, paper_maps
    from ..join import GSRR, ParallelJoinConfig, parallel_spatial_join, prepare_trees
    from ..trace import TraceConfig

    map_r, map_s = paper_maps(scale=0.02)
    tree_r, tree_s = build_tree(map_r), build_tree(map_s)
    page_store = prepare_trees(tree_r, tree_s)
    config = ParallelJoinConfig(
        processors=4,
        disks=4,
        total_buffer_pages=96,
        variant=GSRR,
        trace=TraceConfig(keep_events=False, checkers=False, jsonl_path=str(path)),
    )
    parallel_spatial_join(tree_r, tree_s, config, page_store=page_store)


def _run_lint_into(report: Report, paths, select=None) -> None:
    findings, stats = run_lint(paths, select=select)
    report.extend(findings)
    report.tool_status["lint"] = (
        f"ok: {stats['files']} file(s), {stats['rules']} rule(s), "
        f"{len(findings)} finding(s)"
    )


def _run_external_into(report: Report, paths) -> None:
    for name, runner in (("ruff", external.run_ruff), ("mypy", external.run_mypy)):
        findings, status = runner(paths)
        report.extend(findings)
        report.tool_status[name] = status


def _run_races_into(report: Report, trace: str, explain: bool) -> None:
    findings, stats = detect_races(trace, explain=explain)
    report.extend(findings)
    report.tool_status["races"] = (
        f"ok: {stats['events']} event(s), {stats['mode']} mode, "
        f"{stats['pages']} page(s), {stats['races']} race finding(s)"
    )


_SPECS_PATH = "src/repro/analysis/protocol/specs.py"


def _run_protocol_into(
    report: Report, trace: str | None = None, skip_mutations: bool = False
) -> None:
    from .protocol import (
        MUTATIONS,
        SPECS,
        check_spec,
        format_counterexample,
        get_spec,
    )

    findings = []
    proved = 0
    declared = 0
    for spec in SPECS:
        result = check_spec(spec)
        declared += len(result.properties)
        proved += sum(result.properties.values())
        if result.truncated:
            findings.append(
                Finding(
                    tool="protocol",
                    rule="PROT003",
                    severity=Severity.ERROR,
                    path=_SPECS_PATH,
                    line=0,
                    message=(
                        f"spec {spec.name!r}: state space exceeded "
                        f"{result.states_explored} states — add a bound"
                    ),
                )
            )
        for failure in result.failures:
            text = format_counterexample(spec, failure)
            print(text)
            findings.append(
                Finding(
                    tool="protocol",
                    rule="PROT001",
                    severity=Severity.ERROR,
                    path=_SPECS_PATH,
                    line=0,
                    message=(
                        f"spec {spec.name!r} violates safety property "
                        f"{failure.prop!r}: {failure.description}"
                    ),
                    context=tuple(text.splitlines()),
                )
            )
    mutation_note = "mutations skipped"
    if not skip_mutations:
        caught = 0
        for mutation in MUTATIONS:
            mutated = mutation.apply(get_spec(mutation.spec_name))
            result = check_spec(mutated)
            if result.properties.get(mutation.expect_property, True):
                findings.append(
                    Finding(
                        tool="protocol",
                        rule="PROT002",
                        severity=Severity.ERROR,
                        path=_SPECS_PATH,
                        line=0,
                        message=(
                            f"planted mutation {mutation.name!r} "
                            f"({mutation.description}) produced no "
                            f"counterexample for "
                            f"{mutation.expect_property!r} — the model "
                            "checker is too weak to trust"
                        ),
                    )
                )
            else:
                caught += 1
        mutation_note = f"{caught}/{len(MUTATIONS)} mutations caught"
    conformance_note = ""
    if trace is not None:
        from ..trace import TraceEvent
        from ..trace.checkers import run_checkers
        from .protocol import conformance_checkers

        import json

        events = []
        with open(trace, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    events.append(TraceEvent.from_json_dict(json.loads(line)))
        verdicts = run_checkers(events, conformance_checkers())
        for verdict in verdicts:
            for violation in verdict.violations:
                findings.append(
                    Finding(
                        tool="protocol",
                        rule="CONF001",
                        severity=Severity.ERROR,
                        path=trace,
                        line=0,
                        message=f"[{verdict.checker}] {violation}",
                    )
                )
        conformance_note = (
            f", conformance over {len(events)} event(s): "
            f"{sum(v.violation_count for v in verdicts)} violation(s)"
        )
    report.extend(findings)
    report.tool_status["protocol"] = (
        f"ok: {proved}/{declared} properties proved across "
        f"{len(SPECS)} spec(s), {mutation_note}{conformance_note}"
    )


def _run_lockorder_into(report: Report, paths) -> None:
    findings, stats = analyze_lock_order(paths)
    report.extend(findings)
    report.tool_status["lockorder"] = (
        f"ok: {stats['functions']} function(s), {stats['locks']} lock(s), "
        f"{stats['order_edges']} order edge(s), "
        f"{stats['await_edges']} await edge(s), "
        f"{stats['findings']} finding(s)"
    )


def _finish(report: Report, args) -> int:
    baseline_path = getattr(args, "baseline", None)
    if getattr(args, "write_baseline", False):
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(report.findings, target)
        report.baseline_path = target
        print(f"baseline written: {target}")
        print(report.render())
        return 0
    resolved = _resolve_baseline(baseline_path) if hasattr(args, "baseline") else None
    if resolved is not None:
        baseline = load_baseline(resolved)
        report.baseline_path = resolved
        report.new_errors, report.baselined = diff_against_baseline(
            report.findings, baseline
        )
    else:
        report.new_errors, report.baselined = diff_against_baseline(
            report.findings, {}
        )
    if args.json:
        report.write_json(args.json)
    print(report.render())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    report = Report()
    try:
        if args.command == "lint":
            select = args.select.split(",") if args.select else None
            _run_lint_into(report, _resolve_paths(args.paths), select=select)
        elif args.command == "races":
            _run_races_into(report, args.trace, args.explain)
        elif args.command == "external":
            _run_external_into(report, _resolve_paths(args.paths))
        elif args.command == "protocol":
            _run_protocol_into(
                report, trace=args.trace, skip_mutations=args.skip_mutations
            )
        elif args.command == "lockorder":
            _run_lockorder_into(report, _resolve_paths(args.paths))
        elif args.command == "all":
            paths = _resolve_paths(args.paths)
            _run_lint_into(report, paths)
            _run_external_into(report, paths)
            _run_lockorder_into(report, paths)
            if args.no_races:
                _run_protocol_into(report)
            elif args.trace is not None:
                _run_protocol_into(report, trace=args.trace)
                _run_races_into(report, args.trace, args.explain)
            else:
                with tempfile.TemporaryDirectory() as tmp:
                    trace_path = Path(tmp) / "sim-trace.jsonl"
                    _generate_trace(trace_path)
                    _run_protocol_into(report, trace=str(trace_path))
                    _run_races_into(report, str(trace_path), args.explain)
                    # keep the report path stable across runs
                    report.tool_status["races"] += " (generated run)"
    except Exception as exc:  # noqa: BLE001 - the gate must report, not crash
        print(f"analysis failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    return _finish(report, args)


if __name__ == "__main__":
    sys.exit(main())
