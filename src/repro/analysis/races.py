"""Dynamic race detection over recorded SVM simulation traces.

The global buffer of section 3.2 relies on one invariant — *a page
occurs at most once in one of the local buffers* — maintained by a
latched directory protocol (:mod:`repro.buffer.global_buffer`).  This
module replays a recorded JSONL trace and checks that the protocol
actually held, with two complementary analyses:

**Happens-before + lockset.**  Every processor gets a vector clock,
advanced per event.  Directory operations (``PAGE_REGISTERED``,
``PAGE_DEREGISTERED``, ``REMOTE_FETCH``) are emitted under the directory
latch, so they acquire-and-release a latch clock — the release/acquire
edges of the protocol.  A ``BUFFER_INSERT`` in global mode joins the
latch clock too, standing in for the (unlogged) latched load claim that
precedes every disk read.

The directory latch is not the only lock in the system.  Lease-table
operations (``LSE_*``) run under the recovery tier's table lock, and
sub-request settlement (``SHD_*``) under the router's settlement lock,
so both contribute release/acquire edges to their own latch clocks —
a lease granted to processor A and later expired by the coordinator is
happens-before the requeue that hands it to processor B, and a
sub-request's ``SENT`` is happens-before its ``DONE``/``FAILED`` and
the final ``MERGED``.  Settlement events carry ``proc == -1`` (they are
emitted by router coroutines, not join processors); the detector gives
them synthetic negative actor ids — one per shard, plus one for the
merge coordinator — so the clocks still advance per logical actor
without colliding with real processor ids.  Page-copy accesses — ``BUFFER_INSERT`` and
``BUFFER_EVICT`` as writes, ``BUFFER_HIT(source=lru)`` and
``REMOTE_FETCH`` as reads — are then checked FastTrack-style: two
conflicting accesses that are neither happens-before ordered nor guarded
by a common lock are a race.  Unordered **write/write** access is an
error; unordered **read/write** access is a warning, because the
protocol has one *known, benign* window (an owner's eviction racing a
remote copy already admitted by the directory) that the paper's model
tolerates.

**Directory state machine.**  Independently of clocks, the owner map is
replayed: a registration that silently overwrites a live owner is a
**lost update** (the old owner's copy becomes untracked), a second
``BUFFER_INSERT`` while another processor's copy is live breaks
**at-most-once residency**, and a ``PAGE_DEREGISTERED`` by a stale owner
drops a newer registration.  These cannot occur when the latch
discipline holds, so each is an error.

Traces of the purely local variant (``lsr``) contain no directory events;
page copies are then private per processor and the page analysis is
skipped entirely (multi-residency is legitimate there).

``--explain`` mode keeps a short ring buffer of each processor's recent
events and attaches the two conflicting access histories to every race
finding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from ..trace.events import EventKind, TraceEvent
from ..trace.sinks import read_jsonl
from .findings import Finding, Severity

__all__ = ["RaceDetector", "detect_races"]

#: The latch every directory operation runs under.
_DIRECTORY_LATCH = "global-directory"
#: The recovery tier's lease-table lock.
_LEASE_LATCH = "lease-table"
#: The router's sub-request settlement lock.
_SETTLEMENT_LATCH = "router-settlement"

#: Events emitted inside (or at the release point of) the directory
#: latch's critical section.
_LATCH_EVENTS = frozenset(
    {
        EventKind.PAGE_REGISTERED,
        EventKind.PAGE_DEREGISTERED,
        EventKind.REMOTE_FETCH,
    }
)

#: Which latch's critical section each event kind is emitted under.
_LATCH_OF = {
    EventKind.PAGE_REGISTERED: _DIRECTORY_LATCH,
    EventKind.PAGE_DEREGISTERED: _DIRECTORY_LATCH,
    EventKind.REMOTE_FETCH: _DIRECTORY_LATCH,
    EventKind.LSE_GRANTED: _LEASE_LATCH,
    EventKind.LSE_RENEWED: _LEASE_LATCH,
    EventKind.LSE_EXPIRED: _LEASE_LATCH,
    EventKind.LSE_COMPLETED: _LEASE_LATCH,
    EventKind.LSE_REQUEUED: _LEASE_LATCH,
    EventKind.LSE_DUP_DROPPED: _LEASE_LATCH,
    EventKind.SHD_REQUEST_ROUTED: _SETTLEMENT_LATCH,
    EventKind.SHD_SUBREQUEST_SENT: _SETTLEMENT_LATCH,
    EventKind.SHD_SUBREQUEST_DONE: _SETTLEMENT_LATCH,
    EventKind.SHD_SUBREQUEST_FAILED: _SETTLEMENT_LATCH,
    EventKind.SHD_FAILOVER: _SETTLEMENT_LATCH,
    EventKind.SHD_SHARD_SKIPPED: _SETTLEMENT_LATCH,
    EventKind.SHD_MERGED: _SETTLEMENT_LATCH,
}

#: Synthetic actor ids for settlement events (``proc == -1`` in the
#: trace): the merge/route coordinator, and one actor per shard below
#: ``_SHARD_ACTOR_BASE``.  Negative so they can never collide with a
#: real processor id.
_ROUTER_ACTOR = -2
_SHARD_ACTOR_BASE = -10

#: Any of these in a trace means the run used the global buffer.
_DIRECTORY_MARKERS = _LATCH_EVENTS | {EventKind.LOAD_WAIT}

_EXPLAIN_DEPTH = 8


def _merge(into: dict[int, int], other: dict[int, int]) -> None:
    for proc, clock in other.items():
        if into.get(proc, 0) < clock:
            into[proc] = clock


@dataclass(frozen=True)
class _Access:
    """One recorded page/directory access for conflict checking."""

    proc: int
    epoch: int  # this proc's clock component at access time
    lockset: frozenset[str]
    seq: int
    time: float
    kind: str
    history: tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"proc {self.proc} {self.kind} at t={self.time:.6f} "
            f"(event #{self.seq})"
        )


@dataclass
class _Location:
    """Last-access state of one shared location (FastTrack-style)."""

    last_write: Optional[_Access] = None
    last_reads: dict[int, _Access] = field(default_factory=dict)


class RaceDetector:
    """Replays one trace; collects race findings.

    Usable as a trace sink (``handle``), but analysis is two-pass —
    events are buffered and examined in :meth:`finish`, because the
    buffer mode (global vs local) is a whole-trace property.
    """

    def __init__(self, source: str = "<trace>", explain: bool = False):
        self.source = source
        self.explain = explain
        self.events: list[TraceEvent] = []
        self.findings: list[Finding] = []
        self.stats: dict = {}
        # analysis state (built in finish)
        self._clocks: dict[int, dict[int, int]] = {}
        self._latch_clocks: dict[str, dict[int, int]] = {}
        self._pages: dict[int, _Location] = {}
        self._dir_slots: dict[int, _Location] = {}
        self._owner: dict[int, int] = {}
        self._resident: dict[int, int] = {}  # page -> proc with live copy
        self._history: dict[int, deque] = {}
        self._reported: set[tuple] = set()

    # -- sink protocol ---------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        self.events.append(event)

    handle = feed

    # -- analysis --------------------------------------------------------------
    def finish(self) -> list[Finding]:
        global_mode = any(e.kind in _DIRECTORY_MARKERS for e in self.events)
        for event in self.events:
            actor = self._actor(event)
            if actor is None:
                continue
            self._step(event, actor, global_mode)
        self.stats = {
            "events": len(self.events),
            "mode": "global" if global_mode else "local",
            "pages": len(self._pages),
            "latches": len(self._latch_clocks),
            "races": len(self.findings),
        }
        return self.findings

    @staticmethod
    def _actor(event: TraceEvent) -> Optional[int]:
        """The vector-clock actor for *event*, or ``None`` if untracked.

        Join processors are their own actors.  Settlement events are
        emitted with ``proc == -1`` by router coroutines; they get a
        synthetic negative id per shard (the coroutine that settles that
        shard's sub-requests) or the coordinator id for route/merge
        events, so the settlement latch still threads happens-before
        edges between them.  Other coordinator events stay untracked.
        """
        if event.proc >= 0:
            return event.proc
        if _LATCH_OF.get(event.kind) == _SETTLEMENT_LATCH:
            shard = event.data.get("shard")
            if shard is not None:
                return _SHARD_ACTOR_BASE - int(shard)
            return _ROUTER_ACTOR
        return None

    def _latch_clock(self, latch: str) -> dict[int, int]:
        return self._latch_clocks.setdefault(latch, {})

    def _step(self, event: TraceEvent, actor: int, global_mode: bool) -> None:
        clock = self._clocks.setdefault(actor, {})
        clock[actor] = clock.get(actor, 0) + 1

        kind = event.kind
        latch = _LATCH_OF.get(kind)
        page = event.data.get("page")

        if latch is not None:
            # Acquire: everything released at the latch happened-before us.
            _merge(clock, self._latch_clock(latch))
        elif kind is EventKind.BUFFER_INSERT and global_mode:
            # The latched load claim that preceded this disk read is not
            # logged; the insert inherits its release/acquire edge.
            _merge(clock, self._latch_clock(_DIRECTORY_LATCH))

        # Page-copy conflict analysis only applies to the global buffer:
        # with local-only buffers page copies are private per processor
        # and nothing below is a shared location.  The latch clocks above
        # are still maintained — lease and settlement traces are
        # typically "local" mode (no directory events at all).
        if global_mode and page is not None:
            page = int(page)
            proc = event.proc  # page events carry a real processor id
            if kind is EventKind.PAGE_REGISTERED:
                self._check_register(event, page)
                self._write(self._dir_slot(page), event, page, latched=True)
                self._owner[page] = proc
                self._resident[page] = proc
                self._write(self._page(page), event, page, latched=True)
            elif kind is EventKind.PAGE_DEREGISTERED:
                self._check_deregister(event, page)
                self._write(self._dir_slot(page), event, page, latched=True)
                self._owner.pop(page, None)
            elif kind is EventKind.REMOTE_FETCH:
                self._read(self._page(page), event, page, latched=True)
            elif kind is EventKind.BUFFER_INSERT:
                self._check_insert(event, page)
                self._write(self._page(page), event, page, latched=False)
                self._resident[page] = proc
            elif kind is EventKind.BUFFER_EVICT:
                self._write(self._page(page), event, page, latched=False)
                if self._resident.get(page) == proc:
                    del self._resident[page]
            elif kind is EventKind.BUFFER_HIT:
                if event.data.get("source") == "lru":
                    self._read(self._page(page), event, page, latched=False)

        if latch is not None:
            # Release: publish our knowledge to the next latch holder.
            _merge(self._latch_clock(latch), clock)

        self._remember(event)

    # -- directory state machine ----------------------------------------------
    def _check_register(self, event: TraceEvent, page: int) -> None:
        owner = self._owner.get(page)
        if owner is not None and owner != event.proc:
            self._state_finding(
                "race-lost-update",
                event,
                page,
                f"page {page}: proc {event.proc} registered while proc "
                f"{owner} was still the registered owner — the old "
                f"registration is silently overwritten and proc {owner}'s "
                f"copy becomes untracked (lost update)",
                other_proc=owner,
            )

    def _check_deregister(self, event: TraceEvent, page: int) -> None:
        owner = self._owner.get(page)
        if owner is not None and owner != event.proc:
            self._state_finding(
                "race-lost-update",
                event,
                page,
                f"page {page}: proc {event.proc} deregistered an entry "
                f"currently owned by proc {owner} — a stale eviction "
                f"dropped a newer registration",
                other_proc=owner,
            )

    def _check_insert(self, event: TraceEvent, page: int) -> None:
        holder = self._resident.get(page)
        if holder is not None and holder != event.proc:
            self._state_finding(
                "race-double-residency",
                event,
                page,
                f"page {page}: proc {event.proc} inserted a local copy "
                f"while proc {holder}'s copy is still resident — the "
                f"global buffer's at-most-once invariant is broken",
                other_proc=holder,
            )

    def _state_finding(
        self,
        rule: str,
        event: TraceEvent,
        page: int,
        message: str,
        other_proc: int,
    ) -> None:
        key = (rule, page, min(event.proc, other_proc), max(event.proc, other_proc))
        if key in self._reported:
            return
        self._reported.add(key)
        context = []
        if self.explain:
            context = self._explain_pair(
                f"proc {event.proc} at event #{event.seq}",
                self._snapshot(event.proc),
                f"proc {other_proc} (conflicting side)",
                self._snapshot(other_proc),
            )
        self.findings.append(
            Finding(
                tool="races",
                rule=rule,
                severity=Severity.ERROR,
                path=self.source,
                line=0,
                message=message,
                context=tuple(context),
            )
        )

    # -- happens-before / lockset ---------------------------------------------
    def _page(self, page: int) -> _Location:
        return self._pages.setdefault(page, _Location())

    def _dir_slot(self, page: int) -> _Location:
        return self._dir_slots.setdefault(page, _Location())

    def _access(self, event: TraceEvent, latched: bool) -> _Access:
        lockset = frozenset({_DIRECTORY_LATCH}) if latched else frozenset()
        clock = self._clocks[event.proc]
        return _Access(
            proc=event.proc,
            epoch=clock[event.proc],
            lockset=lockset,
            seq=event.seq,
            time=event.time,
            kind=event.kind.value,
            history=self._snapshot(event.proc) if self.explain else (),
        )

    def _ordered_before(self, access: _Access, proc: int) -> bool:
        """Did *access* happen-before *proc*'s current point?"""
        return self._clocks[proc].get(access.proc, 0) >= access.epoch

    def _write(
        self, location: _Location, event: TraceEvent, page: int, latched: bool
    ) -> None:
        access = self._access(event, latched)
        previous = location.last_write
        if previous is not None:
            self._check_conflict(previous, access, page, prev_is_write=True)
        for read in location.last_reads.values():
            if read.proc != access.proc:
                self._check_conflict(read, access, page, prev_is_write=False)
        location.last_write = access
        location.last_reads = {}

    def _read(
        self, location: _Location, event: TraceEvent, page: int, latched: bool
    ) -> None:
        access = self._access(event, latched)
        previous = location.last_write
        if previous is not None:
            self._check_conflict(previous, access, page, prev_is_write=True)
        location.last_reads[access.proc] = access

    def _check_conflict(
        self, earlier: _Access, later: _Access, page: int, prev_is_write: bool
    ) -> None:
        if earlier.proc == later.proc:
            return
        if earlier.lockset & later.lockset:
            return  # a common lock serialises them
        if self._ordered_before(earlier, later.proc):
            return  # happens-before ordered
        later_is_write = later.kind in ("buffer_insert", "buffer_evict",
                                        "page_registered", "page_deregistered")
        write_write = prev_is_write and later_is_write
        rule = "race-write-write" if write_write else "race-read-write"
        key = (rule, page, min(earlier.proc, later.proc),
               max(earlier.proc, later.proc))
        if key in self._reported:
            return
        self._reported.add(key)
        flavour = "write/write" if write_write else "read/write"
        message = (
            f"page {page}: unsynchronized {flavour} access — "
            f"{earlier.describe()} and {later.describe()} are neither "
            f"ordered by happens-before nor guarded by a common lock"
        )
        context = []
        if self.explain:
            context = self._explain_pair(
                earlier.describe(), earlier.history,
                later.describe(), later.history,
            )
        self.findings.append(
            Finding(
                tool="races",
                rule=rule,
                severity=Severity.ERROR if write_write else Severity.WARNING,
                path=self.source,
                line=0,
                message=message,
                context=tuple(context),
            )
        )

    # -- explain support -------------------------------------------------------
    def _remember(self, event: TraceEvent) -> None:
        if not self.explain:
            return
        ring = self._history.setdefault(
            event.proc, deque(maxlen=_EXPLAIN_DEPTH)
        )
        inner = " ".join(f"{k}={v}" for k, v in event.data.items())
        ring.append(
            f"#{event.seq} t={event.time:.6f} {event.kind.value}"
            + (f" {inner}" if inner else "")
        )

    def _snapshot(self, proc: int) -> tuple[str, ...]:
        return tuple(self._history.get(proc, ()))

    @staticmethod
    def _explain_pair(
        label_a: str,
        history_a: tuple[str, ...],
        label_b: str,
        history_b: tuple[str, ...],
    ) -> list[str]:
        lines = [f"access A: {label_a}"]
        lines.extend(f"  | {entry}" for entry in history_a)
        lines.append(f"access B: {label_b}")
        lines.extend(f"  | {entry}" for entry in history_b)
        return lines


def detect_races(
    trace: Union[str, Path, Iterable[TraceEvent]],
    explain: bool = False,
) -> tuple[list[Finding], dict]:
    """Run the race detector over a JSONL trace file or event list.

    Returns ``(findings, stats)``; ``stats`` records event count, the
    detected buffer mode and the number of distinct pages touched.
    """
    if isinstance(trace, (str, Path)):
        source = str(trace)
        events = read_jsonl(trace)
    else:
        source = "<memory>"
        events = list(trace)
    detector = RaceDetector(source=source, explain=explain)
    for event in events:
        detector.feed(event)
    findings = detector.finish()
    return findings, detector.stats
