"""The AST lint engine: file walking, rule driving, suppression.

The engine is deliberately small: it parses each Python file once,
hands the tree to every registered rule (:mod:`repro.analysis.rules`),
and post-filters findings through the suppression comments.  All
project knowledge lives in the rules; all mechanism lives here.

Suppression
-----------
A finding is suppressed when its line carries::

    ...  # repro: noqa[DET002]
    ...  # repro: noqa[DET002, PAIR001]
    ...  # repro: noqa

The bare form silences every rule on that line; the bracketed form only
the named ones.  Suppressions are per-line, never per-file — a file
full of debt shows up in the baseline, not behind a blanket pragma.

Project index
-------------
Two rules need cross-file knowledge: the trace-event registry (which
``EventKind`` members exist) and the accounting-checker source (which
ledger events it reconciles).  The :class:`ProjectIndex` resolves both
from the analyzed tree when present (``**/trace/events.py`` and
``**/trace/checkers.py``) and falls back to the installed
:mod:`repro.trace` otherwise, so the engine also works on fixture
repositories and external code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .findings import Finding, Severity

__all__ = ["LintContext", "ProjectIndex", "run_lint", "iter_python_files"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_\-,\s]+)\])?"
)


@dataclass
class ProjectIndex:
    """Cross-file knowledge shared by all rules of one lint run."""

    #: Declared ``EventKind`` member names, or None when unresolvable.
    declared_events: Optional[frozenset[str]] = None
    #: ``EventKind`` members referenced by the invariant checkers.
    checker_event_refs: Optional[frozenset[str]] = None
    #: Every ``emit(EventKind.X, ...)`` site seen: (path, line, member).
    emit_sites: list[tuple[str, int, str]] = field(default_factory=list)

    @classmethod
    def build(cls, files: Sequence[Path], rel: dict[Path, str]) -> "ProjectIndex":
        events_file = _find_special(files, "events.py")
        checkers_file = _find_special(files, "checkers.py")
        declared = None
        if events_file is not None:
            declared = _declared_events_from_source(
                events_file.read_text(encoding="utf-8")
            )
        if declared is None:
            declared = _declared_events_installed()
        refs = None
        if checkers_file is not None:
            refs = _event_refs_in_source(
                checkers_file.read_text(encoding="utf-8")
            )
        if refs is None:
            refs = _event_refs_installed()
        return cls(declared_events=declared, checker_event_refs=refs)


def _find_special(files: Sequence[Path], name: str) -> Optional[Path]:
    """The trace-layer file *name*, preferring a ``trace/`` parent."""
    candidates = [f for f in files if f.name == name]
    for candidate in candidates:
        if candidate.parent.name == "trace":
            return candidate
    return candidates[0] if candidates else None


def _declared_events_from_source(source: str) -> Optional[frozenset[str]]:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "EventKind":
            names = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            return frozenset(names)
    return None


def _declared_events_installed() -> Optional[frozenset[str]]:
    try:
        from ..trace.events import EventKind
    except Exception:  # pragma: no cover - repro.trace always importable here
        return None
    return frozenset(member.name for member in EventKind)


def _event_refs_in_source(source: str) -> frozenset[str]:
    return frozenset(re.findall(r"EventKind\.([A-Z0-9_]+)", source))


def _event_refs_installed() -> Optional[frozenset[str]]:
    try:
        import inspect

        from ..trace import checkers
    except Exception:  # pragma: no cover
        return None
    return _event_refs_in_source(inspect.getsource(checkers))


@dataclass
class LintContext:
    """Everything a rule may look at for one file."""

    path: Path
    rel_path: str
    source: str
    tree: ast.AST
    lines: list[str]
    #: Path components (directories + module stem) used for rule scoping,
    #: e.g. ``{"repro", "sim", "engine"}`` for ``src/repro/sim/engine.py``.
    components: frozenset[str]
    project: ProjectIndex

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def has_marker(self, line: int, marker: str) -> bool:
        """Is ``# repro: <marker>`` present on *line*?"""
        return f"repro: {marker}" in self.line_text(line)


def _suppressed(ctx: LintContext, line: int, rule_id: str) -> bool:
    match = _NOQA_RE.search(ctx.line_text(line))
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return rule_id in {r.strip() for r in rules.split(",")}


def iter_python_files(paths: Iterable[Union[str, Path]]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file() and path.suffix == ".py":
            found.add(path)
    return sorted(found)


def _rel(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def run_lint(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
) -> tuple[list[Finding], dict]:
    """Run every registered rule over *paths*.

    Returns ``(findings, stats)``; findings are already suppression-
    filtered.  ``select`` restricts to the named rule ids (for tests).
    """
    from .rules import file_rules, project_rules  # late: avoid import cycle

    files = iter_python_files(paths)
    rel = {f: _rel(f) for f in files}
    project = ProjectIndex.build(files, rel)
    wanted = None if select is None else set(select)

    active_file_rules = [
        rule for rule in file_rules() if wanted is None or rule.id in wanted
    ]
    active_project_rules = [
        rule for rule in project_rules() if wanted is None or rule.id in wanted
    ]

    findings: list[Finding] = []
    parse_failures = 0
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            parse_failures += 1
            findings.append(
                Finding(
                    tool="lint",
                    rule="PARSE",
                    severity=Severity.ERROR,
                    path=rel[path],
                    line=exc.lineno or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        parts = list(Path(rel[path]).parts)
        if parts:
            parts[-1] = Path(parts[-1]).stem
        ctx = LintContext(
            path=path,
            rel_path=rel[path],
            source=source,
            tree=tree,
            lines=source.splitlines(),
            components=frozenset(parts),
            project=project,
        )
        for rule in active_file_rules:
            for line, message in rule.check(ctx):
                if _suppressed(ctx, line, rule.id):
                    continue
                findings.append(
                    Finding(
                        tool="lint",
                        rule=rule.id,
                        severity=rule.severity,
                        path=ctx.rel_path,
                        line=line,
                        message=message,
                    )
                )

    # Project rules see the accumulated index (emit sites etc.).  Their
    # findings are suppressible at the originating line like any other.
    by_rel = {rel[f]: f for f in files}
    for rule in active_project_rules:
        for rel_path, line, message in rule.finalize(project):
            path = by_rel.get(rel_path)
            if path is not None:
                text = path.read_text(encoding="utf-8").splitlines()
                if 1 <= line <= len(text):
                    match = _NOQA_RE.search(text[line - 1])
                    if match is not None and (
                        match.group("rules") is None
                        or rule.id
                        in {
                            r.strip()
                            for r in match.group("rules").split(",")
                        }
                    ):
                        continue
            findings.append(
                Finding(
                    tool="lint",
                    rule=rule.id,
                    severity=rule.severity,
                    path=rel_path,
                    line=line,
                    message=message,
                )
            )

    stats = {
        "files": len(files),
        "rules": len(active_file_rules) + len(active_project_rules),
        "parse_failures": parse_failures,
    }
    return findings, stats
