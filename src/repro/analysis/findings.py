"""The findings model every analysis engine shares.

A :class:`Finding` is one diagnosed problem: which tool produced it,
which rule fired, where, how severe, and what happened.  Findings are
plain frozen data so they can be sorted, fingerprinted, serialized to
the JSON report and diffed against the committed baseline.

The **baseline ratchet**: a committed JSON file maps finding
fingerprints to allowed counts.  The gate fails only on *new* error
findings — errors whose fingerprint either is absent from the baseline
or occurs more often than the baseline allows.  Fixing debt shrinks the
baseline; adding debt is impossible without editing a committed file in
review.  Fingerprints deliberately exclude line numbers, so unrelated
edits that shift a known finding by a few lines do not break the gate.
"""

from __future__ import annotations

import enum
import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

__all__ = [
    "Severity",
    "Finding",
    "Report",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
]


class Severity(str, enum.Enum):
    """How bad a finding is.  Only errors gate CI."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem.

    ``tool``     — which engine produced it (``lint``, ``races``,
                   ``ruff``, ``mypy``);
    ``rule``     — the rule identifier (``DET001``, ``race-lost-update``);
    ``path``     — the analyzed file (source file or trace file);
    ``line``     — 1-based line, or 0 when the finding has no line (a
                   whole-trace property);
    ``message``  — one human sentence;
    ``context``  — optional extra lines (conflicting access stacks,
                   tool output) rendered indented under the message.
    """

    tool: str
    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    context: tuple[str, ...] = ()

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        head = f"{location}: {self.severity.value} [{self.rule}] {self.message}"
        if not self.context:
            return head
        return head + "".join(f"\n    {line}" for line in self.context)

    def to_json_dict(self) -> dict:
        return {
            "tool": self.tool,
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": list(self.context),
            "fingerprint": fingerprint(self),
        }


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding for the baseline ratchet.

    Excludes the line number on purpose: a known finding that drifts a
    few lines in an unrelated edit keeps its identity.  Two identical
    findings in one file share a fingerprint; the baseline stores counts
    to tell "still one occurrence" from "a second one appeared".
    """
    key = "|".join(
        (finding.tool, finding.rule, finding.path, finding.message)
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


@dataclass
class Report:
    """The combined outcome of one analysis run.

    ``tool_status`` records per engine whether it ran (``ok``), was
    skipped (``skipped: ...``) or failed to run (``failed: ...``) — a
    skipped off-the-shelf tool is visible in the report instead of
    silently passing.
    """

    findings: list[Finding] = field(default_factory=list)
    tool_status: dict[str, str] = field(default_factory=dict)
    new_errors: list[Finding] = field(default_factory=list)
    baseline_path: Optional[str] = None
    baselined: int = 0

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (f.severity.rank, f.path, f.line, f.rule),
        )

    def counts(self) -> dict[str, int]:
        counter = Counter(f.severity.value for f in self.findings)
        return {
            "error": counter.get("error", 0),
            "warning": counter.get("warning", 0),
            "info": counter.get("info", 0),
        }

    @property
    def ok(self) -> bool:
        """True when the gate passes (no unbaselined errors)."""
        return not self.new_errors

    def to_json_dict(self) -> dict:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "tools": dict(self.tool_status),
            "baseline": {
                "path": self.baseline_path,
                "suppressed_errors": self.baselined,
            },
            "new_errors": [f.to_json_dict() for f in self.new_errors],
            "findings": [f.to_json_dict() for f in self.sorted_findings()],
        }

    def write_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_json_dict(), indent=2) + "\n",
            encoding="utf-8",
        )

    def render(self, limit: int = 200) -> str:
        lines = []
        for status_tool, status in sorted(self.tool_status.items()):
            lines.append(f"[{status_tool}] {status}")
        shown = self.sorted_findings()[:limit]
        lines.extend(f.render() for f in shown)
        hidden = len(self.findings) - len(shown)
        if hidden > 0:
            lines.append(f"... and {hidden} more finding(s)")
        counts = self.counts()
        summary = (
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        if self.baseline_path is not None:
            summary += (
                f"; {self.baselined} baselined error(s) "
                f"({self.baseline_path})"
            )
        lines.append(summary)
        lines.append(
            "GATE: " + ("ok" if self.ok else f"{len(self.new_errors)} new error(s)")
        )
        return "\n".join(lines)


# -- baseline ratchet ----------------------------------------------------------
def load_baseline(path: Union[str, Path]) -> dict[str, int]:
    """Read a committed baseline: fingerprint -> allowed occurrence count."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = raw.get("findings", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline {path}: 'findings' not a map")
    baseline: dict[str, int] = {}
    for key, value in entries.items():
        count = value.get("count", 1) if isinstance(value, Mapping) else int(value)
        baseline[key] = int(count)
    return baseline


def write_baseline(
    findings: Sequence[Finding], path: Union[str, Path]
) -> None:
    """Write the current error findings as the new accepted baseline.

    Each entry keeps a human hint (rule, path, message) next to the
    count so baseline diffs are reviewable, but only the fingerprint and
    count are load-bearing.
    """
    errors = [f for f in findings if f.severity is Severity.ERROR]
    entries: dict[str, dict] = {}
    for finding in sorted(errors, key=lambda f: (f.path, f.rule, f.line)):
        key = fingerprint(finding)
        entry = entries.setdefault(
            key,
            {
                "count": 0,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            },
        )
        entry["count"] += 1
    Path(path).write_text(
        json.dumps({"version": 1, "findings": entries}, indent=2) + "\n",
        encoding="utf-8",
    )


def diff_against_baseline(
    findings: Sequence[Finding], baseline: Mapping[str, int]
) -> tuple[list[Finding], int]:
    """Split error findings into (new, baselined-count).

    A finding is *new* when its fingerprint is absent from the baseline
    or occurs more times than the baseline allows; the ratchet direction
    is one-way — the gate never complains about baseline entries that no
    longer occur.
    """
    budget = dict(baseline)
    new: list[Finding] = []
    baselined = 0
    for finding in findings:
        if finding.severity is not Severity.ERROR:
            continue
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined += 1
        else:
            new.append(finding)
    return new, baselined
