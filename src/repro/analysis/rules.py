"""Project-specific lint rules.

Every rule encodes an invariant the codebase already relies on
implicitly — the kind that was previously enforced by review memory and
is now enforced mechanically:

========  ====================================================================
DET001    no wall-clock reads in deterministic modules (sim/join/faults/
          buffer/storage/trace): seeded fault plans and trace replay depend
          on simulated time only
DET002    no unseeded randomness in deterministic modules: every RNG is a
          ``random.Random(seed)`` owned by the run, never the module-global
          :mod:`random`
TRC001    every ``emit(...)`` names a declared ``EventKind`` member —
          undeclared or string event names silently bypass every checker
TRC002    every emitted ``FLT_*``/``SUP_*``/``LSE_*``/``JNL_*``/``SHD_*``
          ledger event is reconciled by an accounting checker (resilience,
          recovery or shard) — an unreferenced ledger event is a fault
          class that can be silently lost
PAIR001   every ``CircuitBreaker.allow()`` admission is settled in a
          ``try/finally`` via ``record_success``/``record_failure``/
          ``release`` — a leaked half-open probe slot wedges the breaker
PAIR002   every ``.acquire()`` has a ``try/finally`` releasing it — a
          leaked latch deadlocks the simulated machine
FORK001   no writes to fork-inherited module globals outside registered
          initializers (functions named ``*init*``/``*fork*`` or sites
          marked ``# repro: fork-init``) — two live pools clobbering one
          registry was a real bug class
ASYNC001  no blocking calls (``time.sleep``, ``subprocess``, ``os.system``,
          bare ``open``) inside ``async def`` in the serving layer — one
          blocked event loop stalls every in-flight request
========  ====================================================================

Rules yield ``(line, message)``; the engine owns severity mapping to
findings, suppression and the baseline.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from .findings import Severity
from .lint import LintContext, ProjectIndex

__all__ = ["Rule", "ProjectRule", "file_rules", "project_rules", "all_rule_ids"]

#: Path components whose modules must stay deterministic.
DETERMINISTIC_COMPONENTS = frozenset(
    {"sim", "join", "faults", "buffer", "storage", "trace",
     "recovery", "shard", "rtree"}
)
#: Path components of the async serving layer.
SERVICE_COMPONENTS = frozenset({"service"})

_FILE_RULES: list["Rule"] = []
_PROJECT_RULES: list["ProjectRule"] = []


class Rule:
    """One per-file rule: id, severity, and a ``check`` generator."""

    id = "RULE000"
    severity = Severity.ERROR
    description = ""

    def check(self, ctx: LintContext) -> Iterator[tuple[int, str]]:
        raise NotImplementedError


class ProjectRule:
    """A rule that needs the whole-project index; runs after all files."""

    id = "RULE000"
    severity = Severity.ERROR
    description = ""

    def finalize(
        self, project: ProjectIndex
    ) -> Iterator[tuple[str, int, str]]:
        raise NotImplementedError


def _register(rule_cls):
    instance = rule_cls()
    if isinstance(instance, ProjectRule):
        _PROJECT_RULES.append(instance)
    else:
        _FILE_RULES.append(instance)
    return rule_cls


def file_rules() -> list[Rule]:
    return list(_FILE_RULES)


def project_rules() -> list[ProjectRule]:
    return list(_PROJECT_RULES)


def all_rule_ids() -> list[str]:
    return [r.id for r in _FILE_RULES] + [r.id for r in _PROJECT_RULES]


# -- shared AST helpers --------------------------------------------------------
def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Attribute/Name chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _calls_with_attr(node: ast.AST, attr: str) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == attr
        ):
            yield sub


def _try_finalbody_references(node: ast.AST, attrs: frozenset[str]) -> bool:
    """Does any Try in *node* reference one of *attrs* in its finalbody?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Try) and sub.finalbody:
            for stmt in sub.finalbody:
                for inner in ast.walk(stmt):
                    if (
                        isinstance(inner, ast.Attribute)
                        and inner.attr in attrs
                    ):
                        return True
    return False


def _in_scope(ctx: LintContext, components: frozenset[str]) -> bool:
    return bool(ctx.components & components)


# -- determinism ---------------------------------------------------------------
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)


@_register
class WallClockRule(Rule):
    id = "DET001"
    description = "wall-clock read in a deterministic module"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, str]]:
        if not _in_scope(ctx, DETERMINISTIC_COMPONENTS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            tail2 = ".".join(name.split(".")[-2:])
            if tail2 in _WALLCLOCK_CALLS:
                yield (
                    node.lineno,
                    f"wall-clock call {name}() in a deterministic module; "
                    f"use the simulation clock (env.now) or an injected "
                    f"clock callable",
                )


_GLOBAL_RNG_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "paretovariate",
        "getrandbits",
        "seed",
    }
)


@_register
class UnseededRandomRule(Rule):
    id = "DET002"
    description = "unseeded randomness in a deterministic module"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, str]]:
        if not _in_scope(ctx, DETERMINISTIC_COMPONENTS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            # The module-global RNG: random.random(), random.shuffle(), ...
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _GLOBAL_RNG_FNS
            ):
                yield (
                    node.lineno,
                    f"{name}() uses the process-global RNG; construct a "
                    f"random.Random(seed) owned by the run so replay is "
                    f"deterministic",
                )
            # numpy's module-global RNG.
            elif (
                len(parts) >= 3
                and parts[-3] in ("numpy", "np")
                and parts[-2] == "random"
            ):
                yield (
                    node.lineno,
                    f"{name}() uses numpy's global RNG; use a seeded "
                    f"Generator (np.random.default_rng(seed))",
                )
            # random.Random() with no seed is just as nondeterministic.
            elif name in ("random.Random", "Random") and not node.args:
                yield (
                    node.lineno,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            elif parts[-1] == "SystemRandom":
                yield (
                    node.lineno,
                    "SystemRandom is nondeterministic by design and cannot "
                    "be replayed",
                )


# -- trace discipline ----------------------------------------------------------
def _emit_event_arg(call: ast.Call) -> Optional[ast.AST]:
    """The event argument of an ``emit``-like call, if any."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "kind":
            return keyword.value
    return None


@_register
class DeclaredEventRule(Rule):
    id = "TRC001"
    description = "emit() of an undeclared trace event"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, str]]:
        declared = ctx.project.declared_events
        for attr in ("emit", "_emit"):
            for call in _calls_with_attr(ctx.tree, attr):
                arg = _emit_event_arg(call)
                if arg is None:
                    continue
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    yield (
                        call.lineno,
                        f"emit() with string event name {arg.value!r}; "
                        f"declare and use an EventKind member so checkers "
                        f"and sinks can dispatch on it",
                    )
                    continue
                name = _dotted_name(arg)
                if name is None or "." not in name:
                    continue  # a variable; resolved dynamically
                head, member = name.rsplit(".", 1)
                if head.split(".")[-1] != "EventKind":
                    continue
                ctx.project.emit_sites.append(
                    (ctx.rel_path, call.lineno, member)
                )
                if declared is not None and member not in declared:
                    yield (
                        call.lineno,
                        f"emit() of EventKind.{member}, which is not "
                        f"declared in repro.trace.events",
                    )


@_register
class LedgerCounterpartRule(ProjectRule):
    id = "TRC002"
    description = "ledger event without an accounting-checker counterpart"

    def finalize(
        self, project: ProjectIndex
    ) -> Iterator[tuple[str, int, str]]:
        refs = project.checker_event_refs
        if refs is None:
            return
        prefixes = ("FLT_", "SUP_", "LSE_", "JNL_", "SHD_")
        for path, line, member in project.emit_sites:
            if not member.startswith(prefixes):
                continue
            if member not in refs:
                yield (
                    path,
                    line,
                    f"EventKind.{member} is emitted but never referenced by "
                    f"the trace checkers — the resilience/recovery "
                    f"accounting ledger cannot reconcile it and the event "
                    f"can be silently lost",
                )


# -- pairing -------------------------------------------------------------------
@_register
class BreakerSettleRule(Rule):
    id = "PAIR001"
    description = "breaker admission not settled in try/finally"

    _SETTLERS = frozenset({"release", "record_success", "record_failure"})

    def check(self, ctx: LintContext) -> Iterator[tuple[int, str]]:
        for function in _functions(ctx.tree):
            allows = list(_calls_with_attr(function, "allow"))
            if not allows:
                continue
            if _try_finalbody_references(function, self._SETTLERS):
                continue
            for call in allows:
                yield (
                    call.lineno,
                    "CircuitBreaker.allow() admission is never settled in "
                    "a try/finally (record_success/record_failure/release) "
                    "— a cancelled attempt leaks a half-open probe slot",
                )


@_register
class AcquireReleaseRule(Rule):
    id = "PAIR002"
    description = "acquire() without a releasing try/finally"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, str]]:
        for function in _functions(ctx.tree):
            acquires = list(_calls_with_attr(function, "acquire"))
            if not acquires:
                continue
            if _try_finalbody_references(function, frozenset({"release"})):
                continue
            for call in acquires:
                target = _dotted_name(call.func)
                yield (
                    call.lineno,
                    f"{target or 'resource'}() is acquired without a "
                    f"try/finally release in this function — an exception "
                    f"mid-hold leaks the lock/latch and deadlocks waiters",
                )


# -- fork safety ---------------------------------------------------------------
@_register
class ForkGlobalWriteRule(Rule):
    id = "FORK001"
    description = "write to a fork-inherited global outside an initializer"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, str]]:
        if not self._uses_fork(ctx.tree):
            return
        module_globals = self._module_level_names(ctx.tree)
        for function in _functions(ctx.tree):
            declared_global: set[str] = set()
            for node in ast.walk(function):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            if self._is_initializer(function.name):
                continue
            for node in ast.walk(function):
                target_name = self._global_write_target(
                    node, declared_global, module_globals
                )
                if target_name is None:
                    continue
                if ctx.has_marker(node.lineno, "fork-init"):
                    continue
                yield (
                    node.lineno,
                    f"write to fork-inherited module global "
                    f"{target_name!r} outside a registered initializer; "
                    f"mark the site '# repro: fork-init' if it is the "
                    f"parent-side parking spot, or move it into the "
                    f"worker initializer",
                )

    @staticmethod
    def _uses_fork(tree: ast.AST) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(a.name == "multiprocessing" for a in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.startswith("multiprocessing"):
                    return True
        return False

    @staticmethod
    def _module_level_names(tree: ast.AST) -> set[str]:
        names: set[str] = set()
        for stmt in getattr(tree, "body", []):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    names.add(stmt.target.id)
        return names

    @staticmethod
    def _is_initializer(name: str) -> bool:
        lowered = name.lower()
        return "init" in lowered or "fork" in lowered

    @staticmethod
    def _global_write_target(
        node: ast.AST, declared_global: set[str], module_globals: set[str]
    ) -> Optional[str]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                # X = ... under a `global X` declaration.
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    return target.id
                # X[...] = ... on a module-level name (no `global` needed).
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in module_globals
                ):
                    return target.value.id
        return None


# -- async discipline ----------------------------------------------------------
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    }
)


@_register
class BlockingInAsyncRule(Rule):
    id = "ASYNC001"
    description = "blocking call inside async def in the serving layer"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, str]]:
        if not _in_scope(ctx, SERVICE_COMPONENTS):
            return
        for function in _functions(ctx.tree):
            if not isinstance(function, ast.AsyncFunctionDef):
                continue
            for node in self._own_nodes(function):
                if not isinstance(node, ast.Call):
                    continue
                name = _dotted_name(node.func)
                if name is None:
                    continue
                if name in _BLOCKING_CALLS or name.startswith("subprocess."):
                    yield (
                        node.lineno,
                        f"blocking call {name}() inside async def "
                        f"{function.name}; it stalls the event loop — use "
                        f"the async equivalent or run_in_executor",
                    )
                elif name == "open":
                    yield (
                        node.lineno,
                        f"blocking file open() inside async def "
                        f"{function.name}; file I/O on the event loop "
                        f"stalls every in-flight request — do it off-loop",
                    )

    @staticmethod
    def _own_nodes(function: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk the async body without descending into nested sync defs
        (those run off-loop via executors by convention)."""
        stack: list[ast.AST] = list(function.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.FunctionDef):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
