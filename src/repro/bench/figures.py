"""Experiment drivers for Figures 5, 7, 8, 9 and 10 plus ablations.

Each ``figureN`` function runs the paper's parameter sweep against the
cached workload and returns structured rows; the ``benchmarks/`` files
render and print them.  Buffer sizes given in paper pages are scaled with
the workload (see :mod:`repro.bench.harness`).
"""

from __future__ import annotations

from ..join import (
    GD,
    GSRR,
    LSR,
    JoinVariant,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    VictimChoice,
)
from .harness import Workload, run_join, scaled_pages

__all__ = [
    "VARIANTS",
    "figure5",
    "figure7",
    "figure8",
    "figure9_and_10",
    "ablation_task_order",
    "ablation_tuning_techniques",
]

VARIANTS: list[JoinVariant] = [LSR, GSRR, GD]

#: The paper's Figure 5 x-axis (total LRU buffer pages).
FIG5_BUFFERS = [200, 400, 800, 1600, 3200]
#: Processor counts sampled for Figures 9/10 (paper: 1..24).
FIG9_PROCESSORS = [1, 2, 4, 8, 12, 16, 20, 24]

ROOT_POLICY = ReassignmentPolicy(level=ReassignLevel.ROOT)
ALL_POLICY = ReassignmentPolicy(level=ReassignLevel.ALL)
NO_POLICY = ReassignmentPolicy(level=ReassignLevel.NONE)


def figure5(workload: Workload) -> list[dict[str, object]]:
    """Disk accesses vs total buffer size for lsr/gsrr/gd at n = 8 and 24.

    Section 4.3's setup: d = n, task reassignment on the root level.
    """
    rows = []
    for n in (8, 24):
        for paper_pages in FIG5_BUFFERS:
            row: dict[str, object] = {
                "processors": n,
                "buffer (paper pages)": paper_pages,
            }
            for variant in VARIANTS:
                result = run_join(
                    workload,
                    ParallelJoinConfig(
                        processors=n,
                        disks=n,
                        total_buffer_pages=scaled_pages(paper_pages, workload.scale),
                        variant=variant,
                        reassignment=ROOT_POLICY,
                    ),
                )
                row[variant.short_name] = result.disk_accesses
            rows.append(row)
    return rows


def figure7(workload: Workload) -> list[dict[str, object]]:
    """Run times (first/avg/last processor) and disk accesses with
    reassignment off / root level / all levels (section 4.4; n = d = 8,
    800-page buffer)."""
    policies = [
        ("without", NO_POLICY),
        ("root level", ReassignmentPolicy(level=ReassignLevel.ROOT)),
        ("all levels", ALL_POLICY),
    ]
    rows = []
    for variant in VARIANTS:
        for label, policy in policies:
            result = run_join(
                workload,
                ParallelJoinConfig(
                    processors=8,
                    disks=8,
                    total_buffer_pages=scaled_pages(800, workload.scale),
                    variant=variant,
                    reassignment=policy,
                ),
            )
            rows.append(
                {
                    "variant": variant.short_name,
                    "reassignment": label,
                    "first (s)": result.times.first_finish,
                    "avg (s)": result.times.average_finish,
                    "last (s)": result.times.response_time,
                    "disk accesses": result.disk_accesses,
                    "reassignments": result.reassignments,
                }
            )
    return rows


def figure8(workload: Workload) -> list[dict[str, object]]:
    """Victim selection: most-loaded (a) vs arbitrary (b); n = 8
    (section 4.4, reassignment on all levels)."""
    rows = []
    for variant in VARIANTS:
        row: dict[str, object] = {"variant": variant.short_name}
        for label, victim in (
            ("a: max load", VictimChoice.MAX_LOAD),
            ("b: arbitrary", VictimChoice.ARBITRARY),
        ):
            result = run_join(
                workload,
                ParallelJoinConfig(
                    processors=8,
                    disks=8,
                    total_buffer_pages=scaled_pages(800, workload.scale),
                    variant=variant,
                    reassignment=ReassignmentPolicy(
                        level=ReassignLevel.ALL, victim=victim
                    ),
                ),
            )
            row[label] = result.disk_accesses
        rows.append(row)
    return rows


def figure9_and_10(workload: Workload) -> list[dict[str, object]]:
    """Response time, speed-up and disk accesses vs processor count for
    d = 1, d = 8 and d = n (sections 4.5; gd + reassignment on all levels,
    buffer of 100 pages per processor)."""
    rows = []
    baselines: dict[str, float] = {}
    for series, disks_of in (
        ("d=1", lambda n: 1),
        ("d=8", lambda n: 8),
        ("d=n", lambda n: n),
    ):
        for n in FIG9_PROCESSORS:
            result = run_join(
                workload,
                ParallelJoinConfig(
                    processors=n,
                    disks=disks_of(n),
                    total_buffer_pages=scaled_pages(100 * n, workload.scale),
                    variant=GD,
                    reassignment=ALL_POLICY,
                ),
            )
            if n == 1:
                baselines[series] = result.response_time
            rows.append(
                {
                    "series": series,
                    "processors": n,
                    "response (s)": result.response_time,
                    "speedup": baselines[series] / result.response_time
                    if result.response_time
                    else float("inf"),
                    "disk accesses": result.disk_accesses,
                    "total run time (s)": result.times.total_run_time,
                }
            )
    return rows


def ablation_task_order(workload: Workload) -> list[dict[str, object]]:
    """How much the plane-sweep task order is worth: shuffled tasks destroy
    the spatial locality that the buffers exploit."""
    rows = []
    for variant in VARIANTS:
        for label, seed in (("plane-sweep order", None), ("shuffled", 1234)):
            result = run_join(
                workload,
                ParallelJoinConfig(
                    processors=8,
                    disks=8,
                    total_buffer_pages=scaled_pages(800, workload.scale),
                    variant=variant,
                    reassignment=ROOT_POLICY,
                    shuffle_tasks_seed=seed,
                ),
            )
            rows.append(
                {
                    "variant": variant.short_name,
                    "task order": label,
                    "disk accesses": result.disk_accesses,
                    "response (s)": result.response_time,
                }
            )
    return rows


def ablation_tuning_techniques(workload: Workload) -> list[dict[str, object]]:
    """CPU effect of [BKS 93]'s tuning: search-space restriction and the
    node-level plane sweep (intersection-test counts of the sequential
    filter step)."""
    from ..join import sequential_join

    rows = []
    for restriction in (True, False):
        for sweep in (True, False):
            result = sequential_join(
                workload.tree1,
                workload.tree2,
                use_restriction=restriction,
                use_sweep=sweep,
            )
            rows.append(
                {
                    "restriction": "on" if restriction else "off",
                    "plane sweep": "on" if sweep else "off",
                    "intersection tests": result.intersection_tests,
                    "candidates": result.candidates,
                }
            )
    return rows
