"""Command-line experiment runner: ``python -m repro.bench``.

Regenerates the paper's tables and figures without pytest:

    python -m repro.bench --list
    python -m repro.bench table1 fig5
    python -m repro.bench --scale 1.0 all
    python -m repro.bench --trace fig7            # + invariant checkers
    python -m repro.bench --trace --trace-jsonl /tmp/fig7.jsonl fig7
"""

from __future__ import annotations

import argparse
import sys
import time

from ..trace import TraceConfig
from . import (
    BACKENDS,
    ablation_task_order,
    ablation_tuning_techniques,
    active_backend,
    active_scale,
    figure5,
    figure7,
    figure8,
    figure9_and_10,
    get_workload,
    heading,
    render_table,
    set_report_suffix,
    set_tracing,
    table1_rows,
    table2_rows,
    trace_reports,
)

EXPERIMENTS: dict[str, tuple[str, list[str]]] = {
    "table1": ("Table 1 — R*-tree parameters",
               ["parameter", "tree1", "tree2", "paper tree1", "paper tree2"]),
    "table2": ("Table 2 — KSR1 memory parameters",
               ["memory", "size of address space", "transfer unit (bytes)",
                "band width (MB/sec)", "latency (usec)", "4KB page copy (usec)"]),
    "fig5": ("Figure 5 — disk accesses vs buffer size",
             ["processors", "buffer (paper pages)", "lsr", "gsrr", "gd"]),
    "fig7": ("Figure 7 — task reassignment",
             ["variant", "reassignment", "first (s)", "avg (s)", "last (s)",
              "disk accesses", "reassignments"]),
    "fig8": ("Figure 8 — victim selection",
             ["variant", "a: max load", "b: arbitrary"]),
    "fig9": ("Figures 9/10 — response time, speed-up, disk accesses",
             ["series", "processors", "response (s)", "speedup",
              "disk accesses", "total run time (s)"]),
    "ablation-order": ("Ablation — task order",
                       ["variant", "task order", "disk accesses", "response (s)"]),
    "ablation-tuning": ("Ablation — BKS93 tuning techniques",
                        ["restriction", "plane sweep", "intersection tests",
                         "candidates"]),
}

RUNNERS = {
    "table1": lambda wl: table1_rows(wl),
    "table2": lambda wl: table2_rows(),
    "fig5": figure5,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9_and_10,
    "fig10": figure9_and_10,
    "ablation-order": ablation_task_order,
    "ablation-tuning": ablation_tuning_techniques,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="which experiments to run (see --list); 'all' runs everything",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: REPRO_SCALE env var or 0.25)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="index backend (default: REPRO_BACKEND env var or 'node'); "
        "'flat' runs the packed numpy backend through the same experiments",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record event traces and run the invariant checkers on every "
        "simulated join; verdict summaries are printed per experiment",
    )
    parser.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        default=None,
        help="with --trace: additionally stream each run's events to "
        "PATH (a run counter is inserted before the file suffix)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, (title, _) in EXPERIMENTS.items():
            print(f"  {name:<16} {title}")
        return 0

    wanted = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [e for e in wanted if e not in EXPERIMENTS and e != "fig10"]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    scale = args.scale if args.scale is not None else active_scale()
    backend = args.backend if args.backend is not None else active_backend()
    print(f"scale = {scale} "
          f"({'paper size' if scale == 1.0 else 'scaled workload'}), "
          f"backend = {backend}")
    set_report_suffix("" if backend == "node" else f"_{backend}")
    workload = get_workload(scale, backend=backend)

    if args.trace:
        set_tracing(TraceConfig(jsonl_path=args.trace_jsonl))

    failures = 0
    for name in wanted:
        title, columns = EXPERIMENTS.get(name, EXPERIMENTS["fig9"])
        started = time.perf_counter()
        rows = RUNNERS[name](workload)
        elapsed = time.perf_counter() - started
        print(heading(f"{title}  [{elapsed:.1f} s]"))
        print(render_table(rows, columns))
        if args.trace and trace_reports:
            print(f"\ntrace verdicts ({len(trace_reports)} runs):")
            for line in trace_reports:
                print(f"  {line}")
                if "VIOLATION" in line:
                    failures += 1
            trace_reports.clear()
    if args.trace:
        set_tracing(None)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
