"""Plain-text and machine-readable rendering of experiment results."""

from __future__ import annotations

import json
import math
import os
from typing import Iterable, Mapping, Sequence

__all__ = [
    "render_table",
    "render_series",
    "heading",
    "report",
    "report_json",
    "set_report_suffix",
    "ascii_chart",
]

#: Appended to every report file stem (``BENCH_<name><suffix>.json``).
#: The bench runners set ``_flat`` when the flat backend is selected, so
#: a head-to-head run never clobbers the node-backend reports.
_SUFFIX = ""


def set_report_suffix(suffix: str) -> None:
    """Set (or clear, with ``""``) the report-name suffix."""
    global _SUFFIX
    _SUFFIX = suffix


def report(name: str, text: str, *, tagged: bool = True) -> str:
    """Print *text* and persist it under ``benchmarks/results/<name>.txt``.

    pytest captures stdout, so benches also write their rendered tables to
    disk (directory overridable via ``REPRO_REPORT_DIR``); the file is
    overwritten per run.  ``tagged=False`` opts out of the backend suffix
    (for benches that already compare backends internally).  Returns
    *text* for chaining.
    """
    print(text)
    directory = os.environ.get("REPRO_REPORT_DIR", "benchmarks/results")
    stem = f"{name}{_SUFFIX}" if tagged else name
    try:
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, f"{stem}.txt"), "w") as handle:
            handle.write(text + "\n")
    except OSError:
        pass  # read-only checkout: printing alone still serves -s runs
    return text


def report_json(
    name: str, payload: Mapping[str, object], *, tagged: bool = True
) -> str:
    """Persist *payload* as ``BENCH_<name>.json`` at the repo root.

    The machine-readable twin of :func:`report`: every bench emits one
    JSON document (config, scale, wall time, simulated times) so the perf
    trajectory can be tracked across commits without parsing tables.  The
    directory is overridable via ``REPRO_BENCH_JSON_DIR``; non-finite
    floats become ``null`` so the output is strict JSON.  ``tagged=False``
    opts out of the backend suffix.  Returns the target path (written or
    not).
    """
    directory = os.environ.get("REPRO_BENCH_JSON_DIR", ".")
    stem = f"{name}{_SUFFIX}" if tagged else name
    path = os.path.join(directory, f"BENCH_{stem}.json")
    try:
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(_jsonable(payload), handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout: the printed report still serves
    return path


def _jsonable(value):
    """Recursively coerce *value* into strict-JSON-serialisable data."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return value
    return repr(value)


def heading(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{title}\n{bar}"


def render_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Fixed-width table over dict rows; missing cells show as '-'."""
    if not rows:
        return "(no rows)"
    cells = [[_fmt(row.get(col, "-")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    return f"{header}\n{sep}\n{body}"


def render_series(name: str, points: Iterable[tuple[object, object]]) -> str:
    """A one-line series: ``name: x=y  x=y  ...``"""
    body = "  ".join(f"{x}={_fmt(y)}" for x, y in points)
    return f"{name}: {body}"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A rough character plot of one or more ``name -> [(x, y)]`` series.

    Good enough to eyeball the shape of Figures 9/10 in a terminal or a
    text log; each series is drawn with its own marker character.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker
    lines = [f"{y_label}  ({y_min:g} .. {y_max:g})"] if y_label else []
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  ({x_min:g} .. {x_max:g})")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(f" {legend}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
