"""Shared infrastructure of the benchmark suite.

Every table/figure bench pulls its workload from here: the two synthetic
maps and their R*-trees are built once per scale and cached in-process, so
a ``pytest benchmarks/`` run pays the generation cost a single time.

Scaling: the paper's experiments use the full 131k/127k-object maps; the
benches default to a quarter-scale workload so the whole suite finishes in
minutes.  Buffer sizes scale along with the data (the paper's 200-3,200
total pages stay proportional to the tree sizes).  Set the environment
variable ``REPRO_SCALE=1.0`` to run the paper-size experiments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

from ..datagen import MapData, build_tree, paper_maps
from ..join import (
    ParallelJoinConfig,
    ParallelJoinResult,
    parallel_spatial_join,
    prepare_trees,
)
from ..rtree.pagestore import PageStore
from ..rtree.rstar import RStarTree
from ..trace import TraceConfig

__all__ = [
    "Workload",
    "get_workload",
    "active_scale",
    "active_backend",
    "BACKENDS",
    "run_join",
    "scaled_pages",
    "set_tracing",
    "trace_reports",
]

_CACHE: dict[tuple[float, str], "Workload"] = {}

#: Default experiment scale (fraction of the paper's object counts).
DEFAULT_SCALE = 0.25

#: The selectable index backends of the bench suite.
BACKENDS = ("node", "flat")


def active_scale() -> float:
    """The active scale: ``REPRO_SCALE`` env var or the 0.25 default."""
    return float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))


def active_backend() -> str:
    """The active backend: ``REPRO_BACKEND`` env var or ``node``."""
    backend = os.environ.get("REPRO_BACKEND", "node")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (expected node|flat)")
    return backend


@dataclass
class Workload:
    """The two maps, their prepared trees and the shared page store.

    With ``backend="flat"`` the trees are packed
    :class:`~repro.rtree.flat.FlatRTree` instances; every entry point of
    the query/join layers dispatches on them, and the page store covers
    their cached node-tree adapters so the simulated-machine benches run
    the packed index unchanged.
    """

    scale: float
    map1: MapData
    map2: MapData
    tree1: RStarTree
    tree2: RStarTree
    page_store: PageStore
    backend: str = "node"


def get_workload(
    scale: float | None = None, backend: str | None = None
) -> Workload:
    """Build (or fetch the cached) paper workload at *scale*."""
    if scale is None:
        scale = active_scale()
    if backend is None:
        backend = active_backend()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (expected node|flat)")
    cached = _CACHE.get((scale, backend))
    if cached is not None:
        return cached
    map1, map2 = paper_maps(scale=scale)
    if backend == "flat":
        from ..rtree.flat import build_flat_tree  # deferred: needs numpy

        tree1 = build_flat_tree(map1)
        tree2 = build_flat_tree(map2)
    else:
        tree1 = build_tree(map1)
        tree2 = build_tree(map2)
    page_store = prepare_trees(tree1, tree2)
    workload = Workload(scale, map1, map2, tree1, tree2, page_store, backend)
    _CACHE[(scale, backend)] = workload
    return workload


def scaled_pages(paper_pages: int, scale: float) -> int:
    """Translate a paper buffer size (pages) to the current scale."""
    return max(4, round(paper_pages * scale))


#: When set (``--trace`` on the CLI runner), every ``run_join`` without an
#: explicit trace config runs traced and reports its checker verdicts.
_FORCED_TRACE: Optional[TraceConfig] = None
_RUN_COUNTER = 0

#: One summary line per traced run since the last :func:`set_tracing` call.
trace_reports: list[str] = []


def set_tracing(trace: Optional[TraceConfig]) -> None:
    """Force (or stop forcing) event tracing for subsequent runs."""
    global _FORCED_TRACE, _RUN_COUNTER
    _FORCED_TRACE = trace
    _RUN_COUNTER = 0
    trace_reports.clear()


def run_join(workload: Workload, config: ParallelJoinConfig) -> ParallelJoinResult:
    """One experiment run against the cached workload (cold buffers).

    With tracing forced via :func:`set_tracing`, the run records its event
    stream, executes the invariant checkers and appends a verdict summary
    to :data:`trace_reports` (violations are also printed immediately —
    a benchmark on an unlawful simulation is meaningless).
    """
    global _RUN_COUNTER
    if _FORCED_TRACE is not None and config.trace is None:
        trace = _FORCED_TRACE
        if trace.jsonl_path is not None:
            # One file per run: insert a counter before the suffix.
            root, dot, ext = trace.jsonl_path.rpartition(".")
            numbered = (
                f"{root}.{_RUN_COUNTER:04d}.{ext}"
                if dot
                else f"{trace.jsonl_path}.{_RUN_COUNTER:04d}"
            )
            trace = replace(trace, jsonl_path=numbered)
        config = replace(config, trace=trace)
    result = parallel_spatial_join(
        workload.tree1, workload.tree2, config, page_store=workload.page_store
    )
    if result.trace is not None:
        _RUN_COUNTER += 1
        handle = result.trace
        label = (
            f"run {_RUN_COUNTER:>3}: {config.variant.short_name} n={config.processors} "
            f"d={config.disks} b={config.total_buffer_pages} "
            f"reassign={config.reassignment.level.value}"
        )
        state = "ok" if handle.ok else "INVARIANT VIOLATIONS"
        trace_reports.append(
            f"{label} — {handle.events_emitted} events, {state}"
        )
        if not handle.ok:
            for verdict in handle.failed:
                print(f"[trace] {label}: {verdict.summary()}")
                for violation in verdict.violations[:3]:
                    print(f"[trace]   - {violation}")
    return result
