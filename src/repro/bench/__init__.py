"""Benchmark harness: workload caching, experiment drivers, rendering."""

from .figures import (
    VARIANTS,
    ablation_task_order,
    ablation_tuning_techniques,
    figure5,
    figure7,
    figure8,
    figure9_and_10,
)
from .harness import (
    BACKENDS,
    Workload,
    active_backend,
    active_scale,
    get_workload,
    run_join,
    scaled_pages,
    set_tracing,
    trace_reports,
)
from .render import (
    ascii_chart,
    heading,
    render_series,
    render_table,
    report,
    report_json,
    set_report_suffix,
)
from .tables import PAPER_TABLE1, table1_rows, table2_rows

__all__ = [
    "Workload",
    "get_workload",
    "active_scale",
    "active_backend",
    "BACKENDS",
    "run_join",
    "scaled_pages",
    "set_tracing",
    "trace_reports",
    "table1_rows",
    "table2_rows",
    "PAPER_TABLE1",
    "figure5",
    "figure7",
    "figure8",
    "figure9_and_10",
    "ablation_task_order",
    "ablation_tuning_techniques",
    "VARIANTS",
    "render_table",
    "render_series",
    "heading",
    "report",
    "report_json",
    "set_report_suffix",
    "ascii_chart",
]
