"""Table 1 and Table 2 of the paper, regenerated from this implementation."""

from __future__ import annotations

from ..join import count_root_tasks
from ..rtree import tree_stats
from ..sim.machine import KSR1_CONFIG
from .harness import Workload

__all__ = ["table1_rows", "table2_rows", "PAPER_TABLE1"]

#: The paper's Table 1, for side-by-side comparison.
PAPER_TABLE1 = {
    "tree1": {
        "height": 3,
        "number of data entries": 131443,
        "number of data pages": 6968,
        "number of directory pages": 95,
    },
    "tree2": {
        "height": 3,
        "number of data entries": 127312,
        "number of data pages": 6778,
        "number of directory pages": 92,
    },
    "m (number of tasks)": 404,
}


def table1_rows(workload: Workload) -> list[dict[str, object]]:
    """Rows of Table 1: per-tree shape parameters plus m."""
    stats1 = tree_stats(workload.tree1)
    stats2 = tree_stats(workload.tree2)
    rows: list[dict[str, object]] = []
    for key in (
        "height",
        "number of data entries",
        "number of data pages",
        "number of directory pages",
    ):
        rows.append(
            {
                "parameter": key,
                "tree1": stats1.as_table1_row()[key],
                "tree2": stats2.as_table1_row()[key],
                "paper tree1": PAPER_TABLE1["tree1"][key],
                "paper tree2": PAPER_TABLE1["tree2"][key],
            }
        )
    m = count_root_tasks(workload.tree1, workload.tree2)
    rows.append(
        {
            "parameter": "m (number of tasks)",
            "tree1": m,
            "tree2": m,
            "paper tree1": PAPER_TABLE1["m (number of tasks)"],
            "paper tree2": PAPER_TABLE1["m (number of tasks)"],
        }
    )
    return rows


def table2_rows() -> list[dict[str, object]]:
    """Rows of Table 2: the memory hierarchy of the simulated KSR1."""
    config = KSR1_CONFIG
    rows = []
    for level in (config.cache, config.main_memory, config.remote_memory):
        rows.append(
            {
                "memory": level.name,
                "size of address space": f"{level.size_bytes // 1024} KB"
                if level.size_bytes < 1024 * 1024
                else f"{level.size_bytes // (1024 * 1024)} MB",
                "transfer unit (bytes)": level.transfer_unit_bytes,
                "band width (MB/sec)": level.bandwidth_mb_per_s,
                "latency (usec)": level.latency_us,
                "4KB page copy (usec)": round(level.page_copy_time(4096) * 1e6, 1),
            }
        )
    return rows
