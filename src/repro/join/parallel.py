"""Parallel spatial join on the simulated SVM machine (paper section 3).

One :func:`parallel_spatial_join` call runs the complete three-phase
algorithm for a given configuration:

1. **task creation** — pairs of intersecting root entries in local
   plane-sweep order (descending a level when too few, section 3.1);
2. **task assignment** — static range (``lsr``), static round-robin
   (``gsrr``) or dynamic via a shared FCFS queue (``gd``);
3. **parallel task execution** — every simulated processor runs the real
   BKS93 depth-first join on its pairs of subtrees, with page accesses
   going through its path buffers and local LRU buffer, optionally the SVM
   global buffer, and the shared disk array;

plus the **task reassignment** of section 3.4: idle processors steal the
highest-level pending pairs from a victim chosen by policy, buddying up
with it for subsequent steals.

Everything the paper measures falls out: exact disk-access counts,
per-processor finish times (response time = the last one), total busy
time, reassignment counts.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..buffer.global_buffer import GlobalDirectory
from ..buffer.local import ProcessorBufferManager
from ..faults import FaultInjector, FaultPlan
from ..geometry.planesweep import restrict_to_window, sweep_pairs
from ..recovery.config import RecoveryConfig
from ..recovery.journal import JoinJournal
from ..recovery.lease import LeaseTable
from ..recovery.ledger import ResultLedger
from ..rtree.pagestore import PageStore
from ..rtree.rstar import RStarTree
from ..sim.engine import Environment
from ..sim.machine import KSR1_CONFIG, Machine, MachineConfig
from ..sim.metrics import ProcessorTimes
from ..sim.resources import Store
from ..storage.disk import DEFAULT_DISK, DiskParams
from ..storage.diskarray import DiskArray
from ..trace import (
    NULL_TRACER,
    EventKind,
    JSONLSink,
    ListSink,
    TraceConfig,
    TraceHandle,
    Tracer,
    default_checkers,
    recovery_checkers,
)
from .assignment import (
    GD,
    AssignmentMode,
    BufferMode,
    JoinVariant,
    static_range_assignment,
    static_round_robin_assignment,
)
from .reassign import ReassignmentPolicy, VictimChoice, Workload
from .refinement import RefinementModel
from .result import ParallelJoinResult
from .tasks import PairWindow, create_tasks, task_signature

__all__ = ["ParallelJoinConfig", "parallel_spatial_join", "prepare_trees"]


@dataclass(frozen=True)
class ParallelJoinConfig:
    """Everything that parametrises one experiment run."""

    processors: int = 8
    disks: int = 8
    #: Total LRU buffer size in pages, split evenly over the processors
    #: (the paper's Figure 5 x-axis).
    total_buffer_pages: int = 800
    variant: JoinVariant = GD
    reassignment: ReassignmentPolicy = field(default_factory=ReassignmentPolicy)
    machine: MachineConfig = KSR1_CONFIG
    disk_params: DiskParams = DEFAULT_DISK
    #: None disables the simulated refinement step (pure filter timing).
    refinement: Optional[RefinementModel] = field(default_factory=RefinementModel)
    #: Task creation descends a level while tasks < min_tasks_factor * n.
    min_tasks_factor: int = 1
    #: How long an idle processor waits before re-checking for stealable
    #: work (only relevant while others are still busy).
    idle_retry: float = 5e-3
    #: Ablation hook: when set, the plane-sweep task order of phase 1 is
    #: destroyed by shuffling with this seed — quantifies how much the
    #: paper's spatial-locality-preserving order is worth.
    shuffle_tasks_seed: Optional[int] = None
    #: Run-level seed for every stochastic choice of the simulation
    #: (currently only ``VictimChoice.ARBITRARY``).  When set it overrides
    #: ``reassignment.seed``, so one knob makes a whole run reproducible.
    seed: Optional[int] = None
    #: Structured event tracing + invariant checking; ``None`` (the
    #: default) keeps the simulator on the null tracer — near-zero cost.
    trace: Optional[TraceConfig] = None
    #: Seeded fault plan (slow disks, buffered-page bit flips); ``None``
    #: keeps every seam on the zero-cost healthy path.  Worker crash and
    #: hang probabilities are meaningless inside the simulation (there is
    #: no OS process per simulated processor) and are ignored here; the
    #: task-kill knobs (``task_kill_p``/``kill_at_task``/
    #: ``kill_processor_at_event``) additionally require ``recovery``,
    #: since a dead processor only makes sense once leases exist to
    #: reclaim its work.
    faults: Optional[FaultPlan] = None
    #: Lease-based fault tolerance (:mod:`repro.recovery`): every task
    #: execution holds a heartbeat-renewed lease, expired leases requeue
    #: their task as an orphan, completions are deduplicated into an
    #: exactly-once result multiset, and — when ``journal_path`` is set —
    #: a durable journal makes the run resumable across process deaths.
    #: ``None`` (the default) keeps the join exactly as before.
    recovery: Optional[RecoveryConfig] = None

    def make_reassign_rng(self) -> random.Random:
        """The seeded RNG used for arbitrary victim selection.

        Never the module-global :mod:`random`: every run owns a private
        ``random.Random`` seeded from ``seed`` (when given) or the
        policy's own ``seed``, so identical configurations replay the
        identical schedule.
        """
        if self.seed is not None:
            return random.Random(self.seed)
        return self.reassignment.make_rng()


def prepare_trees(tree_r: RStarTree, tree_s: RStarTree) -> PageStore:
    """Sort all node entries by xl (the paper keeps node entries in
    plane-sweep order) and paginate both trees onto one page space.

    A self-join (``tree_r is tree_s``) paginates the tree once and aliases
    it as both join inputs, so every page exists — and is charged — once.
    """
    # Flat packed backend: the simulated machine measures page accesses
    # over Node/PageStore structures, so materialise the packed levels as
    # an equivalent node tree (cached — a self-join aliases to one tree).
    if hasattr(tree_r, "as_node_tree"):
        tree_r = tree_r.as_node_tree()
    if hasattr(tree_s, "as_node_tree"):
        tree_s = tree_s.as_node_tree()
    page_store = PageStore()
    for node in tree_r.nodes():
        node.sort_entries_by_xl()
    page_store.add_tree(0, tree_r)
    if tree_s is tree_r:
        page_store.alias_tree(1, 0)
        return page_store
    for node in tree_s.nodes():
        node.sort_entries_by_xl()
    page_store.add_tree(1, tree_s)
    return page_store


def parallel_spatial_join(
    tree_r: RStarTree,
    tree_s: RStarTree,
    config: ParallelJoinConfig,
    page_store: Optional[PageStore] = None,
) -> ParallelJoinResult:
    """Run one parallel spatial join and return its measurements.

    ``page_store`` may be passed when the trees were already prepared by
    :func:`prepare_trees` (sharing it across runs avoids re-sorting;
    buffers always start cold regardless).
    """
    if hasattr(tree_r, "as_node_tree"):  # flat packed backend
        tree_r = tree_r.as_node_tree()
    if hasattr(tree_s, "as_node_tree"):
        tree_s = tree_s.as_node_tree()
    run = _JoinRun(tree_r, tree_s, config, page_store)
    return run.execute()


class _JoinRun:
    """State of one simulation run (one processor process per CPU)."""

    def __init__(
        self,
        tree_r: RStarTree,
        tree_s: RStarTree,
        config: ParallelJoinConfig,
        page_store: Optional[PageStore],
    ):
        if config.processors < 1:
            raise ValueError("need at least one processor")
        self.config = config
        self.env = Environment()
        self._init_tracing(config.trace)
        tracer = self.tracer
        self.machine = Machine(self.env, config.machine)
        self.metrics = self.machine.metrics
        self.injector = (
            FaultInjector(config.faults, tracer=tracer)
            if config.faults is not None and config.faults.active
            else None
        )
        self.disks = DiskArray(
            self.env, config.disks, config.disk_params, self.metrics,
            tracer=tracer, injector=self.injector,
        )
        self.store = page_store or prepare_trees(tree_r, tree_s)
        self.integrity = None
        if self.injector is not None and config.faults.page_flip_p > 0:
            from ..storage.page import PageIntegrityStore

            self.integrity = PageIntegrityStore(self.store, tracer=tracer)
        n = config.processors
        directory = (
            GlobalDirectory(self.machine, tracer=tracer)
            if config.variant.buffer is BufferMode.GLOBAL
            else None
        )
        per_processor_pages = max(1, config.total_buffer_pages // n)
        heights = self.store.tree_heights()
        self.managers = [
            ProcessorBufferManager(
                proc_id=p,
                machine=self.machine,
                disk_array=self.disks,
                lru_capacity=per_processor_pages,
                tree_heights=heights,
                directory=directory,
                tracer=tracer,
                integrity=self.integrity,
                injector=self.injector,
            )
            for p in range(n)
        ]

        # Phase 1: task creation (sequential; CPU share negligible per
        # section 4.5, and the root pages it touches are re-read through
        # the buffers during execution).
        tasks = create_tasks(
            tree_r, tree_s, min_tasks=max(1, n * config.min_tasks_factor)
        )
        if config.shuffle_tasks_seed is not None:
            random.Random(config.shuffle_tasks_seed).shuffle(tasks)
        self.tasks_created = len(tasks)
        self.task_level = tasks[0].level if tasks else 0
        self.workloads = [
            Workload(self.task_level, owner=p, tracer=tracer) for p in range(n)
        ]
        self.tasks_by_processor = [0] * n
        self.queue: Optional[Store] = None

        # Recovery layer (leases + exactly-once ledger + durable journal).
        rec = config.recovery
        self.lease_table: Optional[LeaseTable] = None
        self.ledger: Optional[ResultLedger] = None
        self.journal: Optional[JoinJournal] = None
        self.orphans: deque = deque()
        self.dead = [False] * n
        self._orphans_requeued = 0
        self._replayed_tids: list[int] = []
        if rec is not None:
            env = self.env
            self.lease_table = LeaseTable(
                clock=lambda: env.now,
                lease_s=rec.lease_s,
                heartbeat_s=rec.heartbeat_s,
                tracer=tracer,
            )
            self.ledger = ResultLedger(tracer=tracer)
            self._task_objs = dict(enumerate(tasks))
            # Attempt bookkeeping: an *attempt* is one execution of a task,
            # identified by its primary lease id.  Thieves hold split
            # leases on the same attempt; any expiry kills the whole
            # attempt (its buffered rows and pending pairs everywhere).
            self._attempt_tid: dict[int, int] = {}
            self._attempt_rows: dict[int, list] = {}
            self._attempt_outstanding: dict[int, int] = {}
            self._attempt_pairs: dict[int, set] = {}
            self._attempt_splits: dict[int, set] = {}
            self._split_primary: dict[int, int] = {}
            self._pair_attempt: dict[tuple, int] = {}
            if rec.journal_path is not None:
                self.journal = JoinJournal(
                    rec.journal_path,
                    tracer=tracer,
                    injector=self.injector,
                    fsync=rec.fsync,
                )
                self._load_journal(tasks)

        if tracer.enabled:
            policy = config.reassignment
            tracer.emit(
                EventKind.RUN_START,
                processors=n,
                disks=config.disks,
                buffer_pages=config.total_buffer_pages,
                variant=config.variant.short_name,
                assignment=config.variant.assignment.value,
                reassign_level=policy.level.value,
                victim=policy.victim.value,
                min_pairs=policy.min_pairs,
                task_level=self.task_level,
                tasks=self.tasks_created,
            )
            for index, task in enumerate(tasks):
                tracer.emit(
                    EventKind.TASK_CREATED,
                    index=index,
                    level=task.level,
                    r=task.node_r.page_id,
                    s=task.node_s.page_id,
                )

        # Phase 2: task assignment.  Queue items and static chunks carry
        # ``(task_id, task)`` so the recovery layer can key leases and
        # journal records by a stable task id; tasks the ledger replayed
        # from a journal are already done and are not assigned at all.
        mode = config.variant.assignment
        pending = [
            (tid, task)
            for tid, task in enumerate(tasks)
            if self.ledger is None or tid not in self.ledger
        ]
        if mode is AssignmentMode.DYNAMIC:
            self.queue = Store(self.env, name="task-queue")
            for item in pending:
                self.queue.put(item)
            self.queue.close()
        else:
            if mode is AssignmentMode.STATIC_RANGE:
                split = static_range_assignment(pending, n)
            else:
                split = static_round_robin_assignment(pending, n)
            for p, chunk in enumerate(split):
                self.tasks_by_processor[p] = len(chunk)
                for tid, task in chunk:
                    if tracer.enabled:
                        tracer.emit(
                            EventKind.TASK_ASSIGNED,
                            proc=p,
                            level=task.level,
                            r=task.node_r.page_id,
                            s=task.node_s.page_id,
                            mode=mode.value,
                        )
                    if self.lease_table is not None:
                        self._grant_task(tid, task, p)
                    else:
                        self.workloads[p].push_task(task.node_r, task.node_s)

        # Shared run state.
        self.times = ProcessorTimes(n)
        self.idle = [False] * n
        self.finished = [False] * n
        self.buddies: list[Optional[int]] = [None] * n
        self.rng = config.make_reassign_rng()
        self.pairs_by_processor: list[list] = [[] for _ in range(n)]
        self.reassignments = 0

    def _init_tracing(self, trace_config: Optional[TraceConfig]) -> None:
        """Wire the event bus: recording/JSONL sinks plus online checkers."""
        self._record_sink: Optional[ListSink] = None
        self._jsonl_sink: Optional[JSONLSink] = None
        self._checkers = []
        if trace_config is None:
            self.tracer = NULL_TRACER
            return
        sinks: list = []
        if trace_config.keep_events:
            self._record_sink = ListSink()
            sinks.append(self._record_sink)
        if trace_config.jsonl_path is not None:
            self._jsonl_sink = JSONLSink(trace_config.jsonl_path)
            sinks.append(self._jsonl_sink)
        if trace_config.checkers:
            # Lease-enabled runs legitimately re-execute killed tasks, so
            # the one-execution-per-pair conservation law does not hold;
            # recovery_checkers() swaps it for the recovery accounting law.
            self._checkers = (
                recovery_checkers()
                if self.config.recovery is not None
                else default_checkers()
            )
            sinks.extend(self._checkers)
        env = self.env
        self.tracer = Tracer(clock=lambda: env.now, sinks=sinks)
        env.tracer = self.tracer

    # ------------------------------------------------------------------ run
    def execute(self) -> ParallelJoinResult:
        for p in range(self.config.processors):
            self.env.process(self._processor(p), name=f"P{p}")
        if self.lease_table is not None:
            self.env.process(self._lease_sweeper(), name="lease-sweeper")
        self.env.run()
        replayed_pairs: list = []
        recovery_summary = None
        if self.lease_table is not None:
            for tid in self._replayed_tids:
                replayed_pairs.extend(self.ledger.rows_for(tid))
            recovery_summary = {
                "complete": len(self.ledger) >= self.tasks_created,
                "orphans_requeued": self._orphans_requeued,
                **self.ledger.stats(),
                **self.lease_table.stats(),
            }
            if self.journal is not None:
                self.journal.close()
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.RUN_END,
                reassignments=self.reassignments,
                disk_reads=self.metrics.disk_accesses,
                candidates=sum(len(p) for p in self.pairs_by_processor)
                + len(replayed_pairs),
            )
        return ParallelJoinResult(
            pairs_by_processor=self.pairs_by_processor,
            metrics=self.metrics,
            times=self.times,
            tasks_created=self.tasks_created,
            task_level=self.task_level,
            tasks_by_processor=self.tasks_by_processor,
            reassignments=self.reassignments,
            trace=self._finish_trace(),
            replayed_pairs=replayed_pairs,
            recovery=recovery_summary,
        )

    def _finish_trace(self) -> Optional[TraceHandle]:
        """Close sinks and collect checker verdicts into the handle."""
        if not self.tracer.enabled:
            return None
        verdicts = [checker.finish() for checker in self._checkers]
        self.tracer.close()
        return TraceHandle(
            events=self._record_sink.events if self._record_sink else [],
            verdicts=verdicts,
            jsonl_path=(
                self.config.trace.jsonl_path if self.config.trace else None
            ),
            events_emitted=self.tracer.events_emitted,
        )

    # -------------------------------------------------------- processor loop
    def _processor(self, p: int) -> Generator:
        workload = self.workloads[p]
        recovery = self.lease_table is not None
        while True:
            if recovery:
                self.lease_table.renew_holder(p)
            item = workload.pop_deepest()
            if item is None:
                self.idle[p] = True
                got_work = yield from self._acquire_work(p)
                if not got_work:
                    break
                self.idle[p] = False
                continue
            level, node_r, node_s = item
            aid = None
            key = None
            if recovery:
                key = (node_r.page_id, node_s.page_id)
                aid = self._pair_attempt.get(key)
                if aid is None or not self.lease_table.is_active(aid):
                    # The pair belonged to an attempt that expired while it
                    # was in steal transit — its task has been requeued.
                    self.metrics.add("stale_pairs_dropped")
                    continue
                if (
                    level == self.task_level
                    and self.injector is not None
                    and self.injector.should_kill_at_task(
                        self._attempt_tid[aid], proc=p
                    )
                ):
                    self._die(p)
                    return
            started = self.env.now
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit(
                    EventKind.EXEC_START,
                    proc=p,
                    level=level,
                    r=node_r.page_id,
                    s=node_s.page_id,
                )
            yield from self._process_pair(p, node_r, node_s, aid)
            if tracer.enabled:
                tracer.emit(
                    EventKind.EXEC_END,
                    proc=p,
                    level=level,
                    r=node_r.page_id,
                    s=node_s.page_id,
                )
            self.times.busy[p] += self.env.now - started
            # Response time is defined by the last processor *computing*
            # (section 4.5); idle waiting at the very end does not count.
            self.times.finish[p] = self.env.now
            if recovery:
                self._finish_pair(p, aid, key)
        self.finished[p] = True

    def _process_pair(self, p: int, node_r, node_s, aid=None) -> Generator:
        """Execute the sequential join step for one qualifying node pair."""
        config = self.config
        manager = self.managers[p]
        store = self.store
        yield from manager.access(
            0, store.depth(0, node_r), node_r.page_id, store.kind(node_r.page_id)
        )
        yield from manager.access(
            1, store.depth(1, node_s), node_s.page_id, store.kind(node_s.page_id)
        )
        window = PairWindow(node_r, node_s)
        if window.empty:
            return
        entries_r = restrict_to_window(node_r.entries, window)
        entries_s = restrict_to_window(node_s.entries, window)
        sweep = sweep_pairs(entries_r, entries_s)
        tests = sweep.tests + len(node_r.entries) + len(node_s.entries)
        self.metrics.add("intersection_tests", tests)
        cpu_time = tests * config.machine.cpu_rect_test_time
        if cpu_time > 0:
            yield self.env.timeout(cpu_time)
        if node_r.is_leaf:
            if aid is not None:
                # Rows of a leased attempt stay buffered until the whole
                # attempt completes, then commit exactly once through the
                # ledger; a None sink means the attempt expired mid-pair.
                my_pairs = self._attempt_rows.get(aid)
            else:
                my_pairs = self.pairs_by_processor[p]
            refine_time = 0.0
            for er, es in sweep.pairs:
                if my_pairs is not None:
                    my_pairs.append((er.oid, es.oid))
                if config.refinement is not None:
                    refine_time += config.refinement.cost(er, es)
            self.metrics.add("candidates", len(sweep.pairs))
            if refine_time > 0:
                # The same processor that found the candidates refines
                # them (section 3's distribution principle); the exact
                # geometry came along with the data pages (section 4.2).
                if aid is None:
                    yield self.env.timeout(refine_time)
                else:
                    # A long refinement must not outlive the lease: sleep
                    # in heartbeat-sized slices, renewing between them.
                    heartbeat = self.lease_table.heartbeat_s
                    remaining = refine_time
                    while remaining > 0:
                        step = min(remaining, heartbeat)
                        yield self.env.timeout(step)
                        remaining -= step
                        self.lease_table.renew_holder(p)
        else:
            workload = self.workloads[p]
            child_level = node_r.level - 1
            for er, es in sweep.pairs:
                if aid is not None and not self._register_child(
                    aid, er.child, es.child
                ):
                    continue
                workload.push_pair(child_level, er.child, es.child)

    # ------------------------------------------------------ work acquisition
    def _acquire_work(self, p: int) -> Generator:
        """Idle processor: dynamic queue first, then task reassignment.

        Returns True when new work landed in the processor's workload,
        False when the join is globally complete.
        """
        config = self.config
        policy = config.reassignment
        tracer = self.tracer
        while True:
            if self.lease_table is not None:
                # Heartbeat: an idle processor may still hold leases (a
                # thief took all its pairs); letting them lapse would
                # needlessly kill the thief's in-flight attempt.
                self.lease_table.renew_holder(p)
                if self.orphans:
                    tid = self.orphans.popleft()
                    task = self._task_objs[tid]
                    if tracer.enabled:
                        tracer.emit(
                            EventKind.TASK_ASSIGNED,
                            proc=p,
                            level=task.level,
                            r=task.node_r.page_id,
                            s=task.node_s.page_id,
                            mode="requeue",
                        )
                    self._grant_task(tid, task, p)
                    self.tasks_by_processor[p] += 1
                    self.metrics.add("orphan_grants")
                    return True
            if self.queue is not None and not (
                self.queue.closed and len(self.queue) == 0
            ):
                yield self.env.timeout(config.machine.sync_time)
                item = yield self.queue.get()
                if item is not None:
                    tid, task = item
                    if tracer.enabled:
                        tracer.emit(
                            EventKind.TASK_ASSIGNED,
                            proc=p,
                            level=task.level,
                            r=task.node_r.page_id,
                            s=task.node_s.page_id,
                            mode=AssignmentMode.DYNAMIC.value,
                        )
                    if self.lease_table is not None:
                        self._grant_task(tid, task, p)
                    else:
                        self.workloads[p].push_task(task.node_r, task.node_s)
                    self.tasks_by_processor[p] += 1
                    self.metrics.add("queue_fetches")
                    return True
            if policy.enabled:
                if tracer.enabled:
                    tracer.emit(EventKind.STEAL_REQUESTED, proc=p)
                victim = self._pick_victim(p)
                if victim is not None:
                    level = self.workloads[victim].stealable_level(policy.level, policy.min_pairs)
                    stolen = self.workloads[victim].steal_from(level, thief=p)
                    if stolen:
                        if tracer.enabled:
                            tracer.emit(
                                EventKind.STEAL_GRANTED,
                                proc=p,
                                victim=victim,
                                level=level,
                                count=len(stolen),
                            )
                        yield self.env.timeout(config.machine.reassign_overhead)
                        for node_r, node_s in stolen:
                            self.workloads[p].push_pair(level, node_r, node_s)
                        if self.lease_table is not None:
                            self._grant_split_leases(p, stolen)
                        if tracer.enabled and self.buddies[p] != victim:
                            tracer.emit(
                                EventKind.BUDDY_FORMED, proc=p, buddy=victim
                            )
                        self.buddies[p] = victim
                        self.buddies[victim] = p
                        self.reassignments += 1
                        self.metrics.add("reassignments")
                        self.metrics.add("pairs_reassigned", len(stolen))
                        return True
                elif tracer.enabled:
                    tracer.emit(EventKind.STEAL_DENIED, proc=p)
            if self.lease_table is not None:
                # Even with reassignment disabled a lease-enabled run must
                # keep waiting: leases held by dead processors will expire
                # and their tasks re-appear on the orphan queue.
                if self._recovery_done():
                    return False
                yield self.env.timeout(config.idle_retry)
                continue
            if policy.enabled and not self._join_finished():
                # Others are still busy and may produce stealable
                # pairs; check again shortly (the "waiting periods"
                # the paper observes in the final phase).
                yield self.env.timeout(config.idle_retry)
                continue
            return False

    def _pick_victim(self, p: int) -> Optional[int]:
        policy = self.config.reassignment
        candidates = [
            q
            for q in range(self.config.processors)
            if q != p and self.workloads[q].stealable_level(policy.level, policy.min_pairs) is not None
        ]
        if not candidates:
            return None
        buddy = self.buddies[p]
        if buddy in candidates:
            return buddy
        if policy.victim is VictimChoice.ARBITRARY:
            return self.rng.choice(candidates)
        # Highest expected workload: highest level with pending pairs
        # (hl), most pairs there (ns) — the (hl, ns) report of section 3.4.
        return max(candidates, key=lambda q: self.workloads[q].highest_pending())

    def _join_finished(self) -> bool:
        """No task, pending pair or busy processor left anywhere."""
        if self.queue is not None and len(self.queue) > 0:
            return False
        for q in range(self.config.processors):
            if not self.workloads[q].empty:
                return False
            if not self.idle[q] and not self.finished[q]:
                return False
        return True

    # ------------------------------------------------------- recovery layer
    def _load_journal(self, tasks) -> None:
        """Adopt completed tasks from an existing journal (resume path)."""
        scan = self.journal.existing
        sig = task_signature(tasks)
        meta = scan.meta
        if meta is None:
            self.journal.append(
                "meta", mode="sim", tasks=len(tasks), signature=sig
            )
        elif meta.get("signature") != sig or meta.get("tasks") != len(tasks):
            raise ValueError(
                "journal does not match this join: it records "
                f"{meta.get('tasks')} tasks with signature "
                f"{meta.get('signature')!r}, the trees produce "
                f"{len(tasks)} with {sig!r}"
            )
        for tid, record in sorted(scan.completions().items()):
            rows = [tuple(row) for row in record.get("rows", ())]
            self.ledger.replay(tid, rows)
            self._replayed_tids.append(tid)

    def _grant_task(self, tid: int, task, p: int) -> None:
        """Grant the primary lease for one task execution (an *attempt*)
        and enqueue its root pair on processor *p*'s workload."""
        lease = self.lease_table.grant(tid, holder=p)
        aid = lease.id
        self._attempt_tid[aid] = tid
        self._attempt_rows[aid] = []
        self._attempt_outstanding[aid] = 0
        self._attempt_pairs[aid] = set()
        self._attempt_splits[aid] = set()
        if self.journal is not None:
            self.journal.append("grant", task=tid, lease=aid, proc=p)
        self._register_pair(aid, task.node_r, task.node_s)
        self.workloads[p].push_task(task.node_r, task.node_s)

    def _register_pair(self, aid: int, node_r, node_s) -> None:
        key = (node_r.page_id, node_s.page_id)
        self._pair_attempt[key] = aid
        self._attempt_pairs[aid].add(key)
        self._attempt_outstanding[aid] += 1

    def _register_child(self, aid: int, node_r, node_s) -> bool:
        """Attribute a child pair to its attempt; False when the attempt
        expired mid-execution (the child must not be enqueued)."""
        if not self.lease_table.is_active(aid):
            return False
        self._register_pair(aid, node_r, node_s)
        return True

    def _grant_split_leases(self, p: int, stolen) -> None:
        """After a steal lands, grant thief *p* a split lease on every
        attempt it now carries pairs of (unless it already holds one)."""
        attempts = set()
        for node_r, node_s in stolen:
            aid = self._pair_attempt.get((node_r.page_id, node_s.page_id))
            if aid is not None and self.lease_table.is_active(aid):
                attempts.add(aid)
        for aid in attempts:
            tid = self._attempt_tid[aid]
            if self.lease_table.find_active(tid, p) is not None:
                continue
            split = self.lease_table.grant(tid, holder=p, split=True)
            self._attempt_splits[aid].add(split.id)
            self._split_primary[split.id] = aid

    def _finish_pair(self, p: int, aid: int, key: tuple) -> None:
        """One pair of an attempt fully processed; complete the attempt
        when it was the last outstanding one."""
        if not self.lease_table.is_active(aid):
            return  # expired mid-execution; results already discarded
        self._attempt_pairs[aid].discard(key)
        if self._pair_attempt.get(key) == aid:
            del self._pair_attempt[key]
        self._attempt_outstanding[aid] -= 1
        if self._attempt_outstanding[aid] == 0:
            self._complete_attempt(p, aid)

    def _complete_attempt(self, p: int, aid: int) -> None:
        tid = self._attempt_tid[aid]
        rows = self._attempt_rows.pop(aid, [])
        self._attempt_outstanding.pop(aid, None)
        self._attempt_pairs.pop(aid, None)
        self.lease_table.complete(aid, rows=len(rows))
        for sid in self._attempt_splits.pop(aid, ()):
            self._split_primary.pop(sid, None)
            if self.lease_table.is_active(sid):
                self.lease_table.complete(sid, rows=0)
        if self.ledger.commit(tid, rows, lease=aid, proc=p):
            self.pairs_by_processor[p].extend(rows)
            if self.journal is not None:
                self.journal.append(
                    "complete",
                    task=tid,
                    lease=aid,
                    proc=p,
                    rows=[list(row) for row in rows],
                )

    def _die(self, p: int) -> None:
        """Processor *p* crashes: it stops renewing and never runs again.
        Its pending pairs stay in its workload until the sweeper expires
        its leases and purges them."""
        self.dead[p] = True
        self.finished[p] = True

    def _expire_attempt(self, aid: int) -> None:
        """Tear an attempt down after any of its leases expired: close the
        sibling leases, discard buffered rows, withdraw its pending pairs
        from every workload, and requeue the task as an orphan."""
        if aid not in self._attempt_outstanding:
            return  # already completed or torn down (sibling expiry)
        if self.lease_table.is_active(aid):
            self.lease_table.expire(aid, reason="attempt")
        for sid in self._attempt_splits.pop(aid, ()):
            self._split_primary.pop(sid, None)
            if self.lease_table.is_active(sid):
                self.lease_table.expire(sid, reason="attempt")
        keys = self._attempt_pairs.pop(aid, set())
        removed = 0
        for workload in self.workloads:
            removed += workload.purge_keys(keys)
        if removed:
            self.metrics.add("pairs_purged", removed)
        for key in keys:
            if self._pair_attempt.get(key) == aid:
                del self._pair_attempt[key]
        self._attempt_rows.pop(aid, None)
        self._attempt_outstanding.pop(aid, None)
        tid = self._attempt_tid.pop(aid)
        self.orphans.append(tid)
        self._orphans_requeued += 1
        self.metrics.add("orphans_requeued")
        if self.tracer.enabled:
            self.tracer.emit(EventKind.LSE_REQUEUED, task=tid, lease=aid)

    def _lease_sweeper(self) -> Generator:
        """Background process: periodically expire overdue leases and
        requeue their tasks until every task committed (or nobody is left
        to run them — the journal then carries the orphans to a resume)."""
        rec = self.config.recovery
        while len(self.ledger) < self.tasks_created:
            if all(self.finished):
                # Every processor dead or retired; expire what is left so
                # the trace reconciles, then let the run end incomplete.
                for lease in list(self.lease_table.active_leases()):
                    aid = self._split_primary.get(lease.id, lease.id)
                    self._expire_attempt(aid)
                return
            yield self.env.timeout(rec.sweep_s)
            for lease in self.lease_table.sweep():
                aid = (
                    self._split_primary.get(lease.id, lease.id)
                    if lease.split
                    else lease.id
                )
                self._expire_attempt(aid)

    def _recovery_done(self) -> bool:
        """Whether an idle processor may retire for good: everything
        committed, or every *other* processor is dead/retired too (the
        remaining orphans then need a resumed run)."""
        if len(self.ledger) >= self.tasks_created:
            return True
        return all(
            self.dead[q] or self.finished[q]
            for q in range(self.config.processors)
        )
