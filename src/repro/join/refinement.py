"""The refinement step and its simulated cost model (section 4.2).

The paper replaces the exact-geometry intersection test by "waiting periods
whose lengths depend on the degree of overlap between the corresponding
MBRs": on average 10 ms per candidate pair, varying between 2 ms and 18 ms.
:class:`RefinementModel` reproduces that substitution.  The *degree of
overlap* is computed per axis as ``overlap-width / sqrt(smaller-extent *
union-extent)`` — the geometric mean of "how much of the smaller object is
covered" and "how similar the two extents are".  This avoids the saturation
a pure containment ratio suffers on street-inside-boundary pairs while
still reaching 1.0 for identical MBRs; the default response exponent is
calibrated so the mean cost on the standard synthetic workload is the
paper's 10 ms.

:class:`ExactRefinement` is the real thing for data generated with exact
geometry: polyline/polyline intersection via the plane-sweep of
:mod:`repro.geometry.polyline`.  It is used by examples and tests; the
simulation experiments use the cost model, as the paper did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from ..geometry.polyline import Polyline

__all__ = ["RefinementModel", "ExactRefinement", "overlap_degree"]


def overlap_degree(a, b) -> float:
    """Degree of overlap of two intersecting MBRs, in ``[0, 1]``.

    ``a`` and ``b`` are anything with ``xl, yl, xu, yu``.  Per axis the
    factor is ``w / sqrt(min_extent * union_extent)``; degenerate axes
    (zero extent on either side) count as fully covered.  Returns 0 for
    disjoint MBRs.
    """
    degree = 1.0
    for al, au, bl, bu in ((a.xl, a.xu, b.xl, b.xu), (a.yl, a.yu, b.yl, b.yu)):
        w = (au if au < bu else bu) - (al if al > bl else bl)
        if w < 0.0:
            return 0.0
        smaller = min(au - al, bu - bl)
        union = (au if au > bu else bu) - (al if al < bl else bl)
        if smaller <= 1e-12 or union <= 1e-12:
            continue
        degree *= w / (smaller * union) ** 0.5
    return degree


@dataclass(frozen=True)
class RefinementModel:
    """Simulated exact-geometry test duration (seconds).

    ``cost = t_min + (t_max - t_min) * degree ** exponent`` — 2 ms for
    barely touching MBRs up to 18 ms for coincident ones, averaging about
    10 ms on the standard workload (the paper's calibration, section 4.2).
    """

    t_min: float = 2e-3
    t_max: float = 18e-3
    exponent: float = 0.38

    def cost(self, a, b) -> float:
        """Duration of testing one candidate pair of MBRs."""
        return self.t_min + (self.t_max - self.t_min) * (
            overlap_degree(a, b) ** self.exponent
        )


class ExactRefinement:
    """Real refinement: test the exact polylines of candidate pairs.

    Construct with two geometry lookups (oid → point tuple), as produced by
    generating maps with ``include_geometry=True``.
    """

    def __init__(
        self,
        geometry_r: Mapping[Hashable, tuple],
        geometry_s: Mapping[Hashable, tuple],
    ):
        self._geometry_r = geometry_r
        self._geometry_s = geometry_s
        self.tests = 0
        self.answers = 0

    def is_answer(self, oid_r: Hashable, oid_s: Hashable) -> bool:
        """True when the exact geometries intersect (candidate is a hit)."""
        self.tests += 1
        line_r = Polyline(self._geometry_r[oid_r])
        line_s = Polyline(self._geometry_s[oid_s])
        if line_r.intersects(line_s):
            self.answers += 1
            return True
        return False

    def filter_answers(self, candidates) -> list[tuple[Hashable, Hashable]]:
        """Split candidate pairs into answers, dropping the false hits."""
        return [(r, s) for r, s in candidates if self.is_answer(r, s)]
