"""Task creation — phase 1 of the parallel join (section 3.1).

A task is a pair of subtrees (one of each R*-tree) whose root MBRs
intersect.  The m intersecting pairs of root entries are computed with the
node-level plane sweep, so the produced task sequence is already in *local
plane-sweep order* — the order both static assignments and the dynamic
queue hand tasks out in.

When m is not "much larger" than the number of processors, the paper
descends one directory level and uses the pairs of the next level as
tasks; :func:`create_tasks` repeats that until the task count reaches
``min_tasks`` or the leaf level is hit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry.planesweep import restrict_to_window, sweep_pairs
from ..rtree.node import Node
from ..rtree.rstar import RStarTree

__all__ = [
    "Task",
    "PairWindow",
    "create_tasks",
    "count_root_tasks",
    "expand_node_pair",
    "task_signature",
]


@dataclass(frozen=True)
class Task:
    """One unit of parallel work: a pair of subtrees to be joined."""

    node_r: Node
    node_s: Node

    @property
    def level(self) -> int:
        """Tree level of the subtree roots (0 = leaves)."""
        return self.node_r.level

    @property
    def sweep_position(self) -> float:
        """Where the sweep line stops for this pair (for global ordering)."""
        xl_r = min(e.xl for e in self.node_r.entries)
        xl_s = min(e.xl for e in self.node_s.entries)
        return min(xl_r, xl_s)


class PairWindow:
    """MBR intersection of a node pair — the search-space restriction
    window of [BKS 93] (tuning technique (i))."""

    __slots__ = ("xl", "yl", "xu", "yu", "empty")

    def __init__(self, a: Node, b: Node):
        a_xl, a_yl, a_xu, a_yu = a.mbr_tuple()
        b_xl, b_yl, b_xu, b_yu = b.mbr_tuple()
        self.xl = max(a_xl, b_xl)
        self.yl = max(a_yl, b_yl)
        self.xu = min(a_xu, b_xu)
        self.yu = min(a_yu, b_yu)
        self.empty = self.xu < self.xl or self.yu < self.yl


def expand_node_pair(node_r: Node, node_s: Node) -> list[tuple[Node, Node]]:
    """Child node pairs of a qualifying directory pair, in plane-sweep
    order, with search-space restriction applied.

    Entries are re-sorted locally, so the function is correct whether or
    not the trees were prepared with pre-sorted nodes.
    """
    window = PairWindow(node_r, node_s)
    if window.empty:
        return []
    entries_r = sorted(restrict_to_window(node_r.entries, window), key=_entry_xl)
    entries_s = sorted(restrict_to_window(node_s.entries, window), key=_entry_xl)
    result = sweep_pairs(entries_r, entries_s)
    return [(er.child, es.child) for er, es in result.pairs]


def _entry_xl(entry) -> float:
    return entry.xl


def create_tasks(
    tree_r: RStarTree, tree_s: RStarTree, min_tasks: int = 1
) -> list[Task]:
    """Phase 1: the task list in local plane-sweep order.

    Starts from the pairs of intersecting root entries; descends one level
    at a time while there are fewer than *min_tasks* tasks and the nodes
    are not yet leaves.  Nodes must be kept with entries sorted by ``xl``
    (see :func:`repro.join.parallel.prepare_trees`).
    """
    if hasattr(tree_r, "as_node_tree"):  # flat packed backend
        tree_r = tree_r.as_node_tree()
    if hasattr(tree_s, "as_node_tree"):
        tree_s = tree_s.as_node_tree()
    if tree_r.size == 0 or tree_s.size == 0:
        return []
    root_window = PairWindow(tree_r.root, tree_s.root)
    if root_window.empty:
        return []
    if tree_r.height != tree_s.height:
        raise ValueError(
            "parallel task creation assumes equally tall trees "
            f"(got heights {tree_r.height} and {tree_s.height})"
        )
    if tree_r.height == 1:
        return [Task(tree_r.root, tree_s.root)]

    pairs = expand_node_pair(tree_r.root, tree_s.root)
    while pairs and len(pairs) < min_tasks and not pairs[0][0].is_leaf:
        descended: list[tuple[Node, Node]] = []
        for node_r, node_s in pairs:
            descended.extend(expand_node_pair(node_r, node_s))
        # Re-establish one global plane-sweep order over all pairs: sort by
        # the sweep-stop position (the smaller of the two xl coordinates).
        descended.sort(key=_pair_sweep_position)
        pairs = descended
    return [Task(node_r, node_s) for node_r, node_s in pairs]


def task_signature(tasks: list[Task]) -> str:
    """A cheap fingerprint of one task list, for journal-resume sanity.

    Task creation is deterministic given the prepared trees, so a resumed
    join recomputes the identical list; the durable journal stores this
    signature in its ``meta`` record and :mod:`repro.recovery` refuses to
    replay a journal against trees that produce a different one (which
    would silently mis-map completed task ids onto different subtrees).
    """
    if not tasks:
        return "0:empty"
    head = tasks[0]
    tail = tasks[-1]
    return (
        f"{len(tasks)}:{head.level}:"
        f"{head.node_r.page_id}-{head.node_s.page_id}:"
        f"{tail.node_r.page_id}-{tail.node_s.page_id}"
    )


def count_root_tasks(tree_r: RStarTree, tree_s: RStarTree) -> int:
    """m of the paper's Table 1: intersecting pairs of root entries."""
    if hasattr(tree_r, "as_node_tree"):  # flat packed backend
        tree_r = tree_r.as_node_tree()
    if hasattr(tree_s, "as_node_tree"):
        tree_s = tree_s.as_node_tree()
    if tree_r.size == 0 or tree_s.size == 0:
        return 0
    if tree_r.height == 1 or tree_s.height == 1:
        window = PairWindow(tree_r.root, tree_s.root)
        return 0 if window.empty else 1
    return len(expand_node_pair(tree_r.root, tree_s.root))


def _pair_sweep_position(pair: tuple[Node, Node]) -> float:
    node_r, node_s = pair
    # Entries are xl-sorted, so the first entry carries the minimum.
    return min(node_r.entries[0].xl, node_s.entries[0].xl)
