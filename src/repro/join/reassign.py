"""Load balancing through task reassignment (section 3.4).

Each simulated processor keeps its unprocessed subtree pairs in a
:class:`Workload`: one FIFO deque per tree level.  Execution pops from the
*deepest* pending level (depth-first, preserving the sequential
algorithm's traversal and the plane-sweep order within a level); an idle
processor steals from the *highest* pending level of a victim — the pairs
closest to the root, i.e. the largest chunks of remaining work — and takes
them from the back of the deque, so the victim keeps the spatially
adjacent work it would process next.

Two knobs from the paper's experiments:

* ``level`` — no reassignment at all, reassignment only of pairs at the
  original task level ("root level"), or at *all* directory levels
  (section 4.4's variants 1-3);
* ``victim`` — help the processor with the highest expected workload
  (largest ``(hl, ns)``: highest level with pending pairs, then their
  count) or an arbitrary one (the [SN 93] proposal, section 4.4's test
  series a/b).

After a successful steal the two processors become *buddies*: next time
either runs dry it first asks the other (the paper's repeated cooperation
until both are idle).
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..rtree.node import Node
from ..trace import NULL_TRACER, EventKind, Tracer

__all__ = ["ReassignLevel", "VictimChoice", "ReassignmentPolicy", "Workload"]


class ReassignLevel(enum.Enum):
    NONE = "none"
    ROOT = "root"
    ALL = "all"


class VictimChoice(enum.Enum):
    MAX_LOAD = "max load"
    ARBITRARY = "arbitrary"


@dataclass(frozen=True)
class ReassignmentPolicy:
    """Which pairs may move, and to whose aid an idle processor goes.

    ``min_pairs`` is the paper's "minimum size of the work load which is
    worth to be divided into two" (section 3.4): a victim with fewer
    pending pairs at its highest level is not worth the reassignment
    overhead and is left alone.
    """

    level: ReassignLevel = ReassignLevel.ALL
    victim: VictimChoice = VictimChoice.MAX_LOAD
    seed: int = 0
    min_pairs: int = 1

    def __post_init__(self):
        if self.min_pairs < 1:
            raise ValueError("min_pairs must be at least 1")

    @property
    def enabled(self) -> bool:
        return self.level is not ReassignLevel.NONE

    def make_rng(self) -> random.Random:
        return random.Random(self.seed)


class Workload:
    """Per-processor pending subtree pairs, organised by tree level.

    ``owner``/``tracer`` make the workload self-reporting: every enqueue,
    dequeue and steal removal becomes a trace event attributed to the
    owning processor (no-ops with the default null tracer).
    """

    def __init__(
        self, task_level: int, owner: int = -1, tracer: Tracer = NULL_TRACER
    ):
        self.task_level = task_level
        self.owner = owner
        self.tracer = tracer
        self._pending: dict[int, Deque[tuple[Node, Node]]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    def push_task(self, node_r: Node, node_s: Node) -> None:
        """Enqueue a task-level pair (initial assignment / stolen work)."""
        self.push_pair(node_r.level, node_r, node_s)

    def push_pair(self, level: int, node_r: Node, node_s: Node) -> None:
        queue = self._pending.get(level)
        if queue is None:
            queue = deque()
            self._pending[level] = queue
        queue.append((node_r, node_s))
        self._count += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.PAIR_ENQUEUED,
                proc=self.owner,
                level=level,
                r=node_r.page_id,
                s=node_s.page_id,
            )

    def pop_deepest(self) -> Optional[tuple[int, Node, Node]]:
        """Next pair in depth-first plane-sweep order, or None when empty."""
        if self._count == 0:
            return None
        level = min(l for l, q in self._pending.items() if q)
        node_r, node_s = self._pending[level].popleft()
        self._count -= 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.PAIR_DEQUEUED,
                proc=self.owner,
                level=level,
                r=node_r.page_id,
                s=node_s.page_id,
            )
        return (level, node_r, node_s)

    def purge_keys(self, keys) -> int:
        """Remove every pending pair whose ``(r_page, s_page)`` key is in
        *keys* — the recovery layer's expiry path: when a lease expires,
        the orphaned attempt's pairs are withdrawn from every workload
        (including thieves') before the task is requeued, so no processor
        wastes time on an execution whose results can no longer commit.
        Returns the number of pairs removed.
        """
        removed = 0
        for level, queue in self._pending.items():
            if not queue:
                continue
            kept = [
                pair
                for pair in queue
                if (pair[0].page_id, pair[1].page_id) not in keys
            ]
            removed += len(queue) - len(kept)
            if len(kept) != len(queue):
                self._pending[level] = deque(kept)
        self._count -= removed
        return removed

    # -- what other processors see -------------------------------------------
    def highest_pending(self) -> Optional[tuple[int, int]]:
        """``(hl, ns)``: the highest level with pending pairs and their
        count there — what each processor "reports" (section 3.4)."""
        best: Optional[tuple[int, int]] = None
        for level, queue in self._pending.items():
            if queue and (best is None or level > best[0]):
                best = (level, len(queue))
        return best

    def stealable_level(
        self, policy_level: ReassignLevel, min_pairs: int = 1
    ) -> Optional[int]:
        """The level a thief may take pairs from under *policy_level*,
        or None when nothing qualifies (including workloads below the
        minimum split size)."""
        if policy_level is ReassignLevel.NONE:
            return None
        report = self.highest_pending()
        if report is None:
            return None
        level, count = report
        if policy_level is ReassignLevel.ROOT and level != self.task_level:
            return None
        if count < min_pairs:
            return None
        return level

    def steal_from(self, level: int, thief: int = -1) -> list[tuple[Node, Node]]:
        """Remove about half the pending pairs of *level* from the back
        (the victim keeps its near-future, spatially adjacent work).

        ``thief`` is the processor the pairs are destined for — purely
        observability, recorded on the emitted steal events.
        """
        queue = self._pending.get(level)
        if not queue:
            return []
        count = max(1, len(queue) // 2)
        stolen = [queue.pop() for _ in range(count)]
        stolen.reverse()  # keep plane-sweep order for the thief
        self._count -= count
        if self.tracer.enabled:
            for node_r, node_s in stolen:
                self.tracer.emit(
                    EventKind.STEAL_TAKE,
                    proc=self.owner,
                    level=level,
                    r=node_r.page_id,
                    s=node_s.page_id,
                    thief=thief,
                )
        return stolen

    def __repr__(self) -> str:
        levels = {l: len(q) for l, q in self._pending.items() if q}
        return f"<Workload {self._count} pairs {levels}>"
