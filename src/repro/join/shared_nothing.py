"""Shared-nothing parallel spatial join (the paper's future work, section 5).

The paper closes with: "In our future work, we are particularly interested
in a distributed spatial join processing using a shared-nothing
architecture ... In contrast to the SVM-model, in a shared-nothing
architecture the assignment of the data to the different disks is of
special interest."  This module builds that system:

* every processor owns a **private disk** and a **private buffer**; there
  is no shared memory and no global buffer directory;
* pages are **declustered** over the owners — either *round-robin* (page
  number modulo n, the paper's spatially-blind placement) or *spatial*
  (contiguous runs of the spatially ordered pages per tree, so each
  processor owns a region of the map);
* a processor missing a page it does not own sends a **message** to the
  owner, whose disk/buffer services it; the reply ships the page over a
  shared interconnect (latency + bandwidth model, ATM-class defaults);
  remote pages are **cached locally** — replication instead of the SVM's
  at-most-once invariant;
* tasks are assigned statically (range or round-robin) or dynamically
  through a **coordinator** at processor 0, each fetch paying a message
  round trip.

The interesting trade-off — measurable with the bench — is placement ×
assignment: spatial placement with the range assignment keeps accesses
local but concentrates load; round-robin placement spreads disk load but
turns most accesses into network traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..buffer.lru import LRUBuffer
from ..buffer.path_buffer import PathBuffer
from ..rtree.pagestore import PageStore
from ..rtree.rstar import RStarTree
from ..sim.engine import Environment
from ..sim.machine import KSR1_CONFIG, Machine, MachineConfig
from ..sim.metrics import ProcessorTimes
from ..sim.resources import Resource, Store
from ..storage.disk import DEFAULT_DISK, DiskParams
from ..storage.page import PageKind
from .assignment import (
    AssignmentMode,
    static_range_assignment,
    static_round_robin_assignment,
)
from .parallel import prepare_trees
from .refinement import RefinementModel
from .result import ParallelJoinResult
from .tasks import PairWindow, create_tasks
from ..geometry.planesweep import restrict_to_window, sweep_pairs
from ..sim.metrics import Metrics

__all__ = [
    "Placement",
    "NetworkParams",
    "SharedNothingConfig",
    "shared_nothing_join",
]


class Placement(enum.Enum):
    """How pages are declustered over the node-private disks."""

    ROUND_ROBIN = "round-robin"
    SPATIAL = "spatial"


@dataclass(frozen=True)
class NetworkParams:
    """Message-passing interconnect (workstation-cluster / ATM class)."""

    #: One-way message latency in seconds.
    latency: float = 0.5e-3
    #: Payload bandwidth in MB/s (ATM-622 style default).
    bandwidth_mb_per_s: float = 16.0
    page_size: int = 4096

    @property
    def page_transfer_time(self) -> float:
        return self.page_size / (self.bandwidth_mb_per_s * 1024 * 1024)

    @property
    def request_round_trip(self) -> float:
        """Request message out, reply with page back."""
        return 2 * self.latency + self.page_transfer_time

    @property
    def control_round_trip(self) -> float:
        """Request/notification without a page payload (task fetches)."""
        return 2 * self.latency


@dataclass(frozen=True)
class SharedNothingConfig:
    """One shared-nothing experiment run."""

    processors: int = 8
    #: Private buffer pages per processor.
    buffer_pages_per_processor: int = 100
    placement: Placement = Placement.SPATIAL
    assignment: AssignmentMode = AssignmentMode.STATIC_RANGE
    machine: MachineConfig = KSR1_CONFIG
    disk_params: DiskParams = DEFAULT_DISK
    network: NetworkParams = field(default_factory=NetworkParams)
    refinement: Optional[RefinementModel] = field(default_factory=RefinementModel)
    min_tasks_factor: int = 1


def shared_nothing_join(
    tree_r: RStarTree,
    tree_s: RStarTree,
    config: SharedNothingConfig,
    page_store: Optional[PageStore] = None,
) -> ParallelJoinResult:
    """Run the spatial join on the shared-nothing cluster model."""
    run = _SharedNothingRun(tree_r, tree_s, config, page_store)
    return run.execute()


class _SharedNothingRun:
    def __init__(
        self,
        tree_r: RStarTree,
        tree_s: RStarTree,
        config: SharedNothingConfig,
        page_store: Optional[PageStore],
    ):
        if config.processors < 1:
            raise ValueError("need at least one processor")
        self.config = config
        self.env = Environment()
        self.machine = Machine(self.env, config.machine)
        self.metrics: Metrics = self.machine.metrics
        self.store = page_store or prepare_trees(tree_r, tree_s)
        n = config.processors

        # One private disk per node; one shared interconnect.
        self.disks = [Resource(self.env, 1, name=f"disk@{p}") for p in range(n)]
        self.network = Resource(self.env, 1, name="interconnect")

        # Private buffers.
        heights = self.store.tree_heights()
        self.lru = [LRUBuffer(max(1, config.buffer_pages_per_processor)) for _ in range(n)]
        self.paths = [
            {tree_id: PathBuffer(height) for tree_id, height in heights.items()}
            for _ in range(n)
        ]

        # Data placement.
        self.owner = self._place_pages(tree_r, tree_s, n)

        # Tasks & assignment.
        tasks = create_tasks(tree_r, tree_s, min_tasks=max(1, n * config.min_tasks_factor))
        self.tasks_created = len(tasks)
        self.task_level = tasks[0].level if tasks else 0
        self.local_tasks: list[list] = [[] for _ in range(n)]
        self.queue: Optional[Store] = None
        if config.assignment is AssignmentMode.DYNAMIC:
            self.queue = Store(self.env, name="coordinator-queue")
            for task in tasks:
                self.queue.put(task)
            self.queue.close()
            self.tasks_by_processor = [0] * n
        else:
            if config.assignment is AssignmentMode.STATIC_RANGE:
                split = static_range_assignment(tasks, n)
            else:
                split = static_round_robin_assignment(tasks, n)
            for p, chunk in enumerate(split):
                self.local_tasks[p] = list(chunk)
            self.tasks_by_processor = [len(c) for c in self.local_tasks]

        self.times = ProcessorTimes(n)
        self.pairs_by_processor: list[list] = [[] for _ in range(n)]

    def _place_pages(self, tree_r, tree_s, n: int) -> dict[int, int]:
        """page id → owning node, per the configured placement."""
        owner: dict[int, int] = {}
        if self.config.placement is Placement.ROUND_ROBIN:
            for page in self.store.pages():
                owner[page] = page % n
            return owner
        # Spatial: contiguous runs of each tree's (spatially ordered) pages.
        for tree in (tree_r, tree_s):
            pages = [node.page_id for node in tree.nodes()]
            total = len(pages)
            for index, page in enumerate(pages):
                owner[page] = min(n - 1, index * n // total)
        return owner

    # --------------------------------------------------------------- access
    def access(self, p: int, tree_id: int, node) -> Generator:
        """Obtain one page: path buffer, own LRU, owner's node, own disk."""
        page_id = node.page_id
        path_buffer = self.paths[p][tree_id]
        if path_buffer.contains(page_id):
            self.metrics.add("path_hits")
            return
        level = self.store.depth(tree_id, node)
        if self.lru[p].touch(page_id):
            self.metrics.add("lru_hits")
            yield self.env.timeout(self.config.machine.local_page_access_time)
            path_buffer.record(level, page_id)
            return
        owner = self.owner[page_id]
        kind = self.store.kind(page_id)
        if owner == p:
            yield from self._read_own_disk(p, page_id, kind)
        else:
            yield from self._fetch_remote(p, owner, page_id, kind)
        self.lru[p].insert(page_id)
        path_buffer.record(level, page_id)

    def _read_own_disk(self, p: int, page_id: int, kind: PageKind) -> Generator:
        disk = self.disks[p]
        yield disk.acquire()
        try:
            yield self.env.timeout(self.config.disk_params.service_time(kind))
        finally:
            disk.release()
        self.metrics.record_disk_read(p)

    def _fetch_remote(self, p: int, owner: int, page_id: int, kind: PageKind) -> Generator:
        """Message to *owner*; owner serves from its buffer or its disk."""
        network = self.network
        params = self.config.network
        # Request message.
        yield network.acquire()
        try:
            yield self.env.timeout(params.latency)
        finally:
            network.release()
        # Owner side: buffer hit or disk read at the owner's disk.
        if self.lru[owner].touch(page_id):
            self.metrics.add("owner_buffer_hits")
            yield self.env.timeout(self.config.machine.local_page_access_time)
        else:
            yield from self._read_own_disk(owner, page_id, kind)
            self.lru[owner].insert(page_id)
        # Reply carrying the page.
        yield network.acquire()
        try:
            yield self.env.timeout(params.latency + params.page_transfer_time)
        finally:
            network.release()
        self.metrics.add("remote_fetches")

    # -------------------------------------------------------------- execute
    def execute(self) -> ParallelJoinResult:
        for p in range(self.config.processors):
            self.env.process(self._processor(p), name=f"SN{p}")
        self.env.run()
        return ParallelJoinResult(
            pairs_by_processor=self.pairs_by_processor,
            metrics=self.metrics,
            times=self.times,
            tasks_created=self.tasks_created,
            task_level=self.task_level,
            tasks_by_processor=self.tasks_by_processor,
        )

    def _processor(self, p: int) -> Generator:
        stack: list = []
        while True:
            if not stack:
                task = yield from self._next_task(p)
                if task is None:
                    break
                stack.append((task.node_r, task.node_s))
            started = self.env.now
            while stack:
                node_r, node_s = stack.pop()
                children = yield from self._process_pair(p, node_r, node_s)
                stack.extend(reversed(children))
            self.times.busy[p] += self.env.now - started
            self.times.finish[p] = self.env.now

    def _next_task(self, p: int):
        if self.queue is None:
            if self.local_tasks[p]:
                return self.local_tasks[p].pop(0)
            return None
        # Dynamic: ask the coordinator (processor 0) for the next task.
        if p != 0:
            yield self.env.timeout(self.config.network.control_round_trip)
        task = yield self.queue.get()
        if task is not None:
            self.tasks_by_processor[p] += 1
            self.metrics.add("queue_fetches")
        return task

    def _process_pair(self, p: int, node_r, node_s) -> Generator:
        config = self.config
        yield from self.access(p, 0, node_r)
        yield from self.access(p, 1, node_s)
        window = PairWindow(node_r, node_s)
        if window.empty:
            return []
        entries_r = restrict_to_window(node_r.entries, window)
        entries_s = restrict_to_window(node_s.entries, window)
        sweep = sweep_pairs(entries_r, entries_s)
        tests = sweep.tests + len(node_r.entries) + len(node_s.entries)
        self.metrics.add("intersection_tests", tests)
        cpu = tests * config.machine.cpu_rect_test_time
        if cpu > 0:
            yield self.env.timeout(cpu)
        if node_r.is_leaf:
            pairs = self.pairs_by_processor[p]
            refine_time = 0.0
            for er, es in sweep.pairs:
                pairs.append((er.oid, es.oid))
                if config.refinement is not None:
                    refine_time += config.refinement.cost(er, es)
            self.metrics.add("candidates", len(sweep.pairs))
            if refine_time > 0:
                yield self.env.timeout(refine_time)
            return []
        return [(er.child, es.child) for er, es in sweep.pairs]
