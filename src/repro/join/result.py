"""Result containers for sequential and parallel spatial joins."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from ..sim.metrics import Metrics, ProcessorTimes
from ..trace import TraceHandle

__all__ = ["SequentialJoinResult", "ParallelJoinResult"]


@dataclass
class SequentialJoinResult:
    """Outcome of the in-memory sequential filter step ([BKS 93]).

    ``pairs`` holds ``(oid_r, oid_s)`` candidates in the order they were
    produced — the local plane-sweep order when the sweep is enabled.
    """

    pairs: list[tuple[Hashable, Hashable]]
    node_pairs_visited: int = 0
    intersection_tests: int = 0

    @property
    def candidates(self) -> int:
        return len(self.pairs)

    def pair_set(self) -> set[tuple[Hashable, Hashable]]:
        return set(self.pairs)

    def __repr__(self) -> str:
        return (
            f"SequentialJoinResult({self.candidates} candidates, "
            f"{self.node_pairs_visited} node pairs, "
            f"{self.intersection_tests} tests)"
        )


@dataclass
class ParallelJoinResult:
    """Outcome of one simulated parallel join run.

    The quantities mirror the paper's evaluation: ``metrics.disk_accesses``
    (Figures 5, 8, 10), ``times.response_time`` / per-processor finish
    times (Figures 7, 9), speed-up via :meth:`speedup_against`.
    """

    pairs_by_processor: list[list[tuple[Hashable, Hashable]]]
    metrics: Metrics
    times: ProcessorTimes
    tasks_created: int = 0
    task_level: int = 0
    tasks_by_processor: list[int] = field(default_factory=list)
    reassignments: int = 0
    #: Event record + invariant-checker verdicts of a traced run
    #: (``ParallelJoinConfig.trace``); None when tracing was off.
    trace: Optional[TraceHandle] = None
    #: Rows adopted from a durable journal on resume (recovery runs);
    #: they count toward ``candidates``/``pair_set`` but belong to no
    #: processor of *this* run.
    replayed_pairs: list[tuple[Hashable, Hashable]] = field(default_factory=list)
    #: Recovery summary of a lease-enabled run (grants, expiries, orphans
    #: requeued, tasks committed/replayed, ``complete`` flag); None when
    #: ``ParallelJoinConfig.recovery`` was off.
    recovery: Optional[dict] = None

    @property
    def candidates(self) -> int:
        return sum(len(pairs) for pairs in self.pairs_by_processor) + len(
            self.replayed_pairs
        )

    def pair_set(self) -> set[tuple[Hashable, Hashable]]:
        out: set[tuple[Hashable, Hashable]] = set()
        for pairs in self.pairs_by_processor:
            out.update(pairs)
        out.update(self.replayed_pairs)
        return out

    @property
    def disk_accesses(self) -> int:
        return self.metrics.disk_accesses

    @property
    def response_time(self) -> float:
        return self.times.response_time

    def speedup_against(self, single: "ParallelJoinResult") -> float:
        """Speed-up t(1)/t(n) against a one-processor run (section 4.5)."""
        if self.response_time == 0:
            return float("inf")
        return single.response_time / self.response_time

    def __repr__(self) -> str:
        return (
            f"ParallelJoinResult(n={self.times.n}, "
            f"candidates={self.candidates}, "
            f"disk_accesses={self.disk_accesses}, "
            f"response={self.response_time:.2f}s)"
        )
