"""The sequential R*-tree spatial join of [BKS 93] (paper section 2.2).

This is the *in-memory* filter step: synchronized depth-first traversal of
both trees, with the two CPU tuning techniques of the paper —
search-space restriction and the node-level plane sweep — individually
switchable so their effect can be measured (ablation benches).

I/O behaviour of the sequential join is obtained by running the *parallel*
join of :mod:`repro.join.parallel` with one processor, exactly as the
paper's t(1) baseline does; this module is the algorithmic ground truth
(used to validate every parallel variant) and the engine of the real
``multiprocessing`` backend.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..geometry.planesweep import restrict_to_window, sweep_pairs
from ..rtree.node import Node
from ..rtree.rstar import RStarTree
from .refinement import ExactRefinement
from .result import SequentialJoinResult
from .tasks import PairWindow

__all__ = ["sequential_join", "join_node_pair"]


def sequential_join(
    tree_r: RStarTree,
    tree_s: RStarTree,
    *,
    use_restriction: bool = True,
    use_sweep: bool = True,
    refinement: Optional[ExactRefinement] = None,
) -> SequentialJoinResult:
    """Compute all pairs of data entries with intersecting MBRs.

    With ``refinement`` given, candidates are immediately tested against
    their exact geometry and only the answers are kept (multi-step
    processing); otherwise the candidate set of the filter step is
    returned.  Candidates appear in the local plane-sweep order when
    ``use_sweep`` is on.
    """
    flat_r = hasattr(tree_r, "as_node_tree")  # flat packed backend
    flat_s = hasattr(tree_s, "as_node_tree")
    if flat_r and flat_s and use_restriction and use_sweep:
        from .flat import flat_join  # deferred: needs numpy

        return flat_join(tree_r, tree_s, refinement=refinement)
    # Mixed backends (or an ablation run, whose tuning knobs have no
    # analogue in the vectorized kernel): join the materialised node trees.
    if flat_r:
        tree_r = tree_r.as_node_tree()
    if flat_s:
        tree_s = tree_s.as_node_tree()
    result = SequentialJoinResult(pairs=[])
    if tree_r.size == 0 or tree_s.size == 0:
        return result
    stack: list[tuple[Node, Node]] = [(tree_r.root, tree_s.root)]
    while stack:
        node_r, node_s = stack.pop()
        result.node_pairs_visited += 1
        if node_r.level > node_s.level:
            _descend_one_side(node_r, node_s, stack, result, left=True)
            continue
        if node_s.level > node_r.level:
            _descend_one_side(node_s, node_r, stack, result, left=False)
            continue
        children = join_node_pair(
            node_r,
            node_s,
            result,
            use_restriction=use_restriction,
            use_sweep=use_sweep,
            refinement=refinement,
        )
        # Reversed push: children are processed in plane-sweep order
        # before the next sibling pair (depth-first).
        stack.extend(reversed(children))
    return result


def join_node_pair(
    node_r: Node,
    node_s: Node,
    result: SequentialJoinResult,
    *,
    use_restriction: bool = True,
    use_sweep: bool = True,
    refinement: Optional[ExactRefinement] = None,
) -> list[tuple[Node, Node]]:
    """Join one pair of same-level nodes.

    Appends candidate (or refined) object pairs to *result* when the nodes
    are leaves; returns the qualifying child node pairs otherwise.
    """
    window = PairWindow(node_r, node_s)
    if window.empty:
        return []
    entries_r = node_r.entries
    entries_s = node_s.entries
    if use_restriction:
        result.intersection_tests += len(entries_r) + len(entries_s)
        entries_r = restrict_to_window(entries_r, window)
        entries_s = restrict_to_window(entries_s, window)
    if use_sweep:
        entries_r = sorted(entries_r, key=_xl)
        entries_s = sorted(entries_s, key=_xl)
        sweep = sweep_pairs(entries_r, entries_s)
        result.intersection_tests += sweep.tests
        matched = sweep.pairs
    else:
        result.intersection_tests += len(entries_r) * len(entries_s)
        matched = [
            (er, es)
            for er in entries_r
            for es in entries_s
            if er.intersects(es)
        ]
    if node_r.is_leaf:
        for er, es in matched:
            _emit(er.oid, es.oid, result, refinement)
        return []
    return [(er.child, es.child) for er, es in matched]


def _descend_one_side(
    taller: Node,
    shorter: Node,
    stack: list[tuple[Node, Node]],
    result: SequentialJoinResult,
    left: bool,
) -> None:
    """Unequal heights: only the taller side descends (window query style)."""
    s_xl, s_yl, s_xu, s_yu = shorter.mbr_tuple()

    class _ShortMBR:
        xl, yl, xu, yu = s_xl, s_yl, s_xu, s_yu

    matches = []
    for entry in taller.entries:
        result.intersection_tests += 1
        if entry.intersects(_ShortMBR):
            matches.append(entry.child)
    if left:
        stack.extend((child, shorter) for child in reversed(matches))
    else:
        stack.extend((shorter, child) for child in reversed(matches))


def _emit(
    oid_r: Hashable,
    oid_s: Hashable,
    result: SequentialJoinResult,
    refinement: Optional[ExactRefinement],
) -> None:
    if refinement is None or refinement.is_answer(oid_r, oid_s):
        result.pairs.append((oid_r, oid_s))


def _xl(entry) -> float:
    return entry.xl
