"""Real CPU-parallel filter step via ``multiprocessing`` (GIL workaround).

The simulation of :mod:`repro.join.parallel` reproduces the paper's
*measurements*; this module demonstrates genuine parallel speed-up on
today's hardware despite CPython's GIL: the task list of phase 1 is
partitioned exactly like the static range assignment, and each worker
process executes the sequential join on its pairs of subtrees.

Workers are created with the ``fork`` start method, so they inherit the
in-memory R*-trees from the parent without any serialisation — the
process-level analogue of the paper's shared virtual memory.  Only the
task index ranges travel to the workers and only ``(oid, oid)`` pairs
travel back.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Hashable, Optional

from ..rtree.node import Node
from ..rtree.rstar import RStarTree
from .refinement import ExactRefinement
from .result import SequentialJoinResult
from .sequential import join_node_pair
from .tasks import Task, create_tasks

__all__ = ["multiprocessing_join", "join_subtrees"]

# Set by the parent immediately before forking; inherited by workers.
_WORK: Optional[tuple] = None


def join_subtrees(node_r: Node, node_s: Node) -> list[tuple[Hashable, Hashable]]:
    """Sequential join of one pair of subtrees (one task's work)."""
    result = SequentialJoinResult(pairs=[])
    stack = [(node_r, node_s)]
    while stack:
        a, b = stack.pop()
        children = join_node_pair(a, b, result)
        stack.extend(reversed(children))
    return result.pairs


def _run_task_range(bounds: tuple[int, int]) -> list[tuple[Hashable, Hashable]]:
    tasks, geometry_r, geometry_s = _WORK
    start, stop = bounds
    pairs: list[tuple[Hashable, Hashable]] = []
    for index in range(start, stop):
        task = tasks[index]
        pairs.extend(join_subtrees(task.node_r, task.node_s))
    if geometry_r is not None:
        refinement = ExactRefinement(geometry_r, geometry_s)
        pairs = refinement.filter_answers(pairs)
    return pairs


def _serial_join(tasks, geometry_r, geometry_s) -> list:
    pairs: list[tuple[Hashable, Hashable]] = []
    for task in tasks:
        pairs.extend(join_subtrees(task.node_r, task.node_s))
    if geometry_r is not None:
        pairs = ExactRefinement(geometry_r, geometry_s).filter_answers(pairs)
    return pairs


def multiprocessing_join(
    tree_r: RStarTree,
    tree_s: RStarTree,
    processes: Optional[int] = None,
    *,
    geometry_r=None,
    geometry_s=None,
    timeout_s: Optional[float] = None,
) -> list[tuple[Hashable, Hashable]]:
    """Spatial join using *processes* OS processes.

    Without geometry, returns the candidate pairs of the filter step
    (identical, as a set, to
    :func:`repro.join.sequential.sequential_join`).  With ``geometry_r``
    and ``geometry_s`` (oid → point-tuple mappings), every worker also
    runs the exact refinement on the candidates it produced — the paper's
    distribution principle: the processor that finds a candidate refines
    it.  Falls back to a single process when ``processes`` is 1 or fork is
    unavailable.

    ``timeout_s`` bounds the parallel phase: if the workers have not
    delivered within the deadline (a worker hung, crashed, or the machine
    is badly oversubscribed), the pool is terminated and the join is
    recomputed on the **serial fallback path** in the parent, with a
    :class:`RuntimeWarning` — slower, but the caller always gets the
    answer instead of blocking forever.  ``None`` (the default) preserves
    the old unbounded behaviour.
    """
    global _WORK
    if (geometry_r is None) != (geometry_s is None):
        raise ValueError("pass geometry for both relations or for neither")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive (or None)")
    if processes is None:
        processes = min(8, os.cpu_count() or 1)
    tasks = create_tasks(tree_r, tree_s, min_tasks=processes * 4)
    if not tasks:
        return []
    fork_supported = "fork" in multiprocessing.get_all_start_methods()
    if processes > 1 and not fork_supported:
        warnings.warn(
            "the 'fork' start method is unavailable on this platform "
            "(spawn-only); multiprocessing_join runs the serial fallback — "
            "trees cannot be inherited without serialisation",
            RuntimeWarning,
            stacklevel=2,
        )
    if processes <= 1 or not fork_supported:
        return _serial_join(tasks, geometry_r, geometry_s)

    # Static range assignment over the plane-sweep-ordered task list.
    bounds: list[tuple[int, int]] = []
    base, extra = divmod(len(tasks), processes)
    start = 0
    for p in range(processes):
        size = base + (1 if p < extra else 0)
        if size:
            bounds.append((start, start + size))
        start += size

    _WORK = (tasks, geometry_r, geometry_s)  # repro: fork-init (parent-side parking)
    timed_out = False
    try:
        context = multiprocessing.get_context("fork")
        # The with-block terminates the pool on exit — which is exactly
        # the rescue needed when the deadline fires with workers stuck.
        with context.Pool(processes) as pool:
            if timeout_s is None:
                parts = pool.map(_run_task_range, bounds)
            else:
                try:
                    parts = pool.map_async(_run_task_range, bounds).get(
                        timeout_s
                    )
                except multiprocessing.TimeoutError:
                    timed_out = True
    finally:
        _WORK = None  # repro: fork-init (parent-side unparking)
    if timed_out:
        warnings.warn(
            f"multiprocessing_join did not finish within {timeout_s}s; "
            f"workers terminated, recomputing on the serial fallback path",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_join(tasks, geometry_r, geometry_s)
    return [pair for part in parts for pair in part]
