"""Real CPU-parallel filter step via ``multiprocessing`` (GIL workaround).

The simulation of :mod:`repro.join.parallel` reproduces the paper's
*measurements*; this module demonstrates genuine parallel speed-up on
today's hardware despite CPython's GIL: the task list of phase 1 is
partitioned exactly like the static range assignment, and each worker
process executes the sequential join on its pairs of subtrees.

Workers are created with the ``fork`` start method, so they inherit the
in-memory R*-trees from the parent without any serialisation — the
process-level analogue of the paper's shared virtual memory.  Only the
task index ranges travel to the workers and only ``(oid, oid)`` pairs
travel back.

**Fault tolerance** (:mod:`repro.recovery`): with ``recovery`` (or
``journal_path``/``faults``) set, the static ranges are split into
lease-sized *chunks* — one lease per dispatched chunk, heartbeats via a
fork-inherited lock-free progress counter per chunk, and a parent-side
sweep that expires silent chunks and redispatches them.  A worker death
therefore loses at most one chunk's partial work instead of the whole
static range (the old behaviour: ``pool.map`` over whole ranges never
returns the dead worker's part).  Completed chunks may be journalled
durably; :func:`repro.recovery.coordinator.resume_join` replays them and
re-runs only the orphans.  The result multiset is exactly-once either
way: the :class:`~repro.recovery.ledger.ResultLedger` commits the first
completion per chunk and drops duplicates.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import warnings
from collections import deque
from typing import Hashable, Optional

from ..faults import CRASH_EXIT_CODE, FaultInjector, FaultPlan
from ..recovery.config import RecoveryConfig, wall_clock
from ..recovery.journal import JoinJournal
from ..recovery.ledger import ResultLedger
from ..recovery.lease import LeaseTable
from ..rtree.node import Node
from ..rtree.rstar import RStarTree
from ..trace import NULL_TRACER, EventKind, Tracer
from .refinement import ExactRefinement
from .result import SequentialJoinResult
from .sequential import join_node_pair
from .tasks import Task, create_tasks, task_signature

__all__ = ["multiprocessing_join", "fault_tolerant_join", "join_subtrees"]

# Set by the parent immediately before forking; inherited by workers.
_WORK: Optional[tuple] = None
#: Fork-inherited heartbeat channel of the fault-tolerant engine: one
#: monotone progress counter per chunk, bumped by the executing worker at
#: every task boundary.  A RawArray is lock-free — a worker hard-killed
#: mid-bump cannot wedge anybody (an ``mp.Queue`` could die holding its
#: feeder lock).
_PROGRESS = None


def join_subtrees(node_r: Node, node_s: Node) -> list[tuple[Hashable, Hashable]]:
    """Sequential join of one pair of subtrees (one task's work)."""
    result = SequentialJoinResult(pairs=[])
    stack = [(node_r, node_s)]
    while stack:
        a, b = stack.pop()
        children = join_node_pair(a, b, result)
        stack.extend(reversed(children))
    return result.pairs


def _run_task_range(bounds: tuple[int, int]) -> list[tuple[Hashable, Hashable]]:
    tasks, geometry_r, geometry_s = _WORK
    start, stop = bounds
    pairs: list[tuple[Hashable, Hashable]] = []
    for index in range(start, stop):
        task = tasks[index]
        pairs.extend(join_subtrees(task.node_r, task.node_s))
    if geometry_r is not None:
        refinement = ExactRefinement(geometry_r, geometry_s)
        pairs = refinement.filter_answers(pairs)
    return pairs


def _run_chunk(spec: tuple) -> tuple[int, list]:
    """Worker body of the fault-tolerant engine: one chunk of tasks.

    ``kill_at`` is a parent-computed fault directive (offset of the task
    at whose *start* this execution hard-crashes, or None): the decision
    ledger lives in the parent's injector, so a redispatched chunk is
    never re-killed at the same task.  The crash is ``os._exit`` at a
    task boundary — no pool lock is held, so the pool survives and
    respawns the worker.
    """
    chunk_id, start, stop, kill_at = spec
    tasks, geometry_r, geometry_s = _WORK
    progress = _PROGRESS  # inherited shared array; this worker's cell only
    pairs: list[tuple[Hashable, Hashable]] = []
    for offset, index in enumerate(range(start, stop)):
        if kill_at is not None and offset == kill_at:
            os._exit(CRASH_EXIT_CODE)
        task = tasks[index]
        pairs.extend(join_subtrees(task.node_r, task.node_s))
        if progress is not None:
            progress[chunk_id] += 1  # heartbeat: monotone per-chunk counter
    if geometry_r is not None:
        pairs = ExactRefinement(geometry_r, geometry_s).filter_answers(pairs)
    return chunk_id, pairs


def _serial_join(tasks, geometry_r, geometry_s) -> list:
    pairs: list[tuple[Hashable, Hashable]] = []
    for task in tasks:
        pairs.extend(join_subtrees(task.node_r, task.node_s))
    if geometry_r is not None:
        pairs = ExactRefinement(geometry_r, geometry_s).filter_answers(pairs)
    return pairs


def multiprocessing_join(
    tree_r: RStarTree,
    tree_s: RStarTree,
    processes: Optional[int] = None,
    *,
    geometry_r=None,
    geometry_s=None,
    timeout_s: Optional[float] = None,
    recovery: Optional[RecoveryConfig] = None,
    journal_path: Optional[str] = None,
    faults: Optional[FaultPlan] = None,
    tracer: Tracer = NULL_TRACER,
) -> list[tuple[Hashable, Hashable]]:
    """Spatial join using *processes* OS processes.

    Without geometry, returns the candidate pairs of the filter step
    (identical, as a set, to
    :func:`repro.join.sequential.sequential_join`).  With ``geometry_r``
    and ``geometry_s`` (oid → point-tuple mappings), every worker also
    runs the exact refinement on the candidates it produced — the paper's
    distribution principle: the processor that finds a candidate refines
    it.  Falls back to a single process when ``processes`` is 1 or fork is
    unavailable.

    ``timeout_s`` bounds the parallel phase: if the workers have not
    delivered within the deadline (a worker hung, crashed, or the machine
    is badly oversubscribed), the pool is terminated and the join is
    recomputed on the **serial fallback path** in the parent, with a
    :class:`RuntimeWarning` — slower, but the caller always gets the
    answer instead of blocking forever.  ``None`` (the default) preserves
    the old unbounded behaviour.

    Any of ``recovery``/``journal_path``/``faults`` switches to the
    **fault-tolerant chunked engine** (:func:`fault_tolerant_join`):
    lease-sized chunks, heartbeat monitoring, orphan redispatch, an
    optional durable journal, and exactly-once results even under
    injected worker kills.  There ``timeout_s`` bounds the whole join
    too, but the rescue completes only the *missing* chunks inline
    instead of recomputing everything.
    """
    if (geometry_r is None) != (geometry_s is None):
        raise ValueError("pass geometry for both relations or for neither")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive (or None)")
    if processes is None:
        processes = min(8, os.cpu_count() or 1)
    flat_r = hasattr(tree_r, "as_node_tree")  # flat packed backend
    flat_s = hasattr(tree_s, "as_node_tree")
    wants_recovery = (
        recovery is not None or journal_path is not None or faults is not None
    )
    if flat_r and flat_s and not wants_recovery:
        from .flat import flat_multiprocessing_join  # deferred: needs numpy

        return flat_multiprocessing_join(
            tree_r,
            tree_s,
            processes,
            geometry_r=geometry_r,
            geometry_s=geometry_s,
            timeout_s=timeout_s,
        )
    # Mixed backends, or the fault-tolerant engine (leases, journal,
    # exactly-once resume): run the node path over materialised trees.
    if flat_r:
        tree_r = tree_r.as_node_tree()
    if flat_s:
        tree_s = tree_s.as_node_tree()
    if wants_recovery:
        pairs, _stats = fault_tolerant_join(
            tree_r,
            tree_s,
            processes,
            geometry_r=geometry_r,
            geometry_s=geometry_s,
            timeout_s=timeout_s,
            recovery=recovery,
            journal_path=journal_path,
            faults=faults,
            tracer=tracer,
        )
        return pairs
    global _WORK
    tasks = create_tasks(tree_r, tree_s, min_tasks=processes * 4)
    if not tasks:
        return []
    fork_supported = "fork" in multiprocessing.get_all_start_methods()
    if processes > 1 and not fork_supported:
        warnings.warn(
            "the 'fork' start method is unavailable on this platform "
            "(spawn-only); multiprocessing_join runs the serial fallback — "
            "trees cannot be inherited without serialisation",
            RuntimeWarning,
            stacklevel=2,
        )
    if processes <= 1 or not fork_supported:
        return _serial_join(tasks, geometry_r, geometry_s)

    # Static range assignment over the plane-sweep-ordered task list.
    bounds: list[tuple[int, int]] = []
    base, extra = divmod(len(tasks), processes)
    start = 0
    for p in range(processes):
        size = base + (1 if p < extra else 0)
        if size:
            bounds.append((start, start + size))
        start += size

    _WORK = (tasks, geometry_r, geometry_s)  # repro: fork-init (parent-side parking)
    timed_out = False
    try:
        context = multiprocessing.get_context("fork")
        # The with-block terminates the pool on exit — which is exactly
        # the rescue needed when the deadline fires with workers stuck.
        with context.Pool(processes) as pool:
            if timeout_s is None:
                parts = pool.map(_run_task_range, bounds)
            else:
                try:
                    parts = pool.map_async(_run_task_range, bounds).get(
                        timeout_s
                    )
                except multiprocessing.TimeoutError:
                    timed_out = True
    finally:
        _WORK = None  # repro: fork-init (parent-side unparking)
    if timed_out:
        warnings.warn(
            f"multiprocessing_join did not finish within {timeout_s}s; "
            f"workers terminated, recomputing on the serial fallback path",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_join(tasks, geometry_r, geometry_s)
    return [pair for part in parts for pair in part]


# --------------------------------------------------------------------------
# Fault-tolerant chunked engine
# --------------------------------------------------------------------------


class _Engine:
    """One fault-tolerant join: chunking, leases, journal, redispatch.

    The parent is the coordinator: it grants one lease per dispatched
    chunk, polls the fork-inherited progress counters as heartbeats,
    sweeps expired leases and redispatches their chunks (inline in the
    parent after ``max_redispatch`` strikes — guaranteed progress even
    with a wedged pool).  Results commit through the exactly-once ledger;
    with a journal every grant/completion is durable and a later
    :func:`~repro.recovery.coordinator.resume_join` replays the committed
    chunks.
    """

    def __init__(
        self,
        tasks: list[Task],
        geometry_r,
        geometry_s,
        processes: int,
        recovery: RecoveryConfig,
        faults: Optional[FaultPlan],
        tracer: Tracer,
        timeout_s: Optional[float],
    ):
        self.tasks = tasks
        self.geometry_r = geometry_r
        self.geometry_s = geometry_s
        self.processes = processes
        self.recovery = recovery
        self.tracer = tracer
        self.timeout_s = timeout_s
        self.clock = wall_clock()
        self.injector = (
            FaultInjector(faults, tracer=tracer)
            if faults is not None and faults.active
            else None
        )
        chunk = recovery.chunk_tasks or max(
            1, math.ceil(len(tasks) / (4 * max(1, processes)))
        )
        self.chunk_tasks = chunk
        self.n_chunks = math.ceil(len(tasks) / chunk) if tasks else 0
        self.bounds = [
            (cid * chunk, min(len(tasks), (cid + 1) * chunk))
            for cid in range(self.n_chunks)
        ]
        self.lease_table = LeaseTable(
            clock=self.clock,
            lease_s=recovery.lease_s,
            heartbeat_s=recovery.heartbeat_s,
            tracer=tracer,
        )
        self.ledger = ResultLedger(tracer=tracer)
        self.journal: Optional[JoinJournal] = None
        if recovery.journal_path is not None:
            self.journal = JoinJournal(
                recovery.journal_path,
                tracer=tracer,
                injector=self.injector,
                fsync=recovery.fsync,
            )
            self._load_journal()
        self.replayed_chunks = len(self.ledger)
        self.pending: deque = deque(
            cid for cid in range(self.n_chunks) if cid not in self.ledger
        )
        self.redispatches = {cid: 0 for cid in range(self.n_chunks)}
        self.inline_runs = 0
        self.commits = 0
        self._last_progress = [0] * self.n_chunks

    # -- journal ---------------------------------------------------------------
    def _load_journal(self) -> None:
        scan = self.journal.existing
        sig = task_signature(self.tasks)
        meta = scan.meta
        if meta is None:
            self.journal.append(
                "meta",
                mode="mp",
                tasks=len(self.tasks),
                chunk=self.chunk_tasks,
                signature=sig,
            )
        elif (
            meta.get("signature") != sig
            or meta.get("tasks") != len(self.tasks)
            or meta.get("chunk") != self.chunk_tasks
        ):
            raise ValueError(
                "journal does not match this join: it records "
                f"{meta.get('tasks')} tasks in chunks of "
                f"{meta.get('chunk')} with signature "
                f"{meta.get('signature')!r}; this run has "
                f"{len(self.tasks)} tasks in chunks of "
                f"{self.chunk_tasks} with {sig!r}"
            )
        for cid, record in sorted(scan.completions().items()):
            rows = [tuple(row) for row in record.get("rows", ())]
            self.ledger.replay(cid, rows)

    # -- chunk execution -------------------------------------------------------
    def _kill_directive(self, cid: int) -> Optional[int]:
        """Offset within chunk *cid* at which this dispatch must crash,
        or None.  Decided parent-side so the injector's fire-once ledger
        spans redispatches."""
        if self.injector is None:
            return None
        start, stop = self.bounds[cid]
        for offset, index in enumerate(range(start, stop)):
            if self.injector.should_kill_at_task(index, proc=cid):
                return offset
        return None

    def _commit(self, cid: int, lease_id: int, rows: list) -> None:
        if not self.ledger.commit(cid, rows, lease=lease_id, proc=cid):
            return
        self.commits += 1
        if self.journal is not None:
            self.journal.append(
                "complete",
                task=cid,
                lease=lease_id,
                proc=cid,
                rows=[list(row) for row in rows],
            )
        stop_after = self.recovery.stop_after_commits
        if stop_after is not None and self.commits >= stop_after:
            from ..recovery.coordinator import JoinInterrupted

            raise JoinInterrupted(
                f"stopped after {self.commits} commits "
                f"({len(self.ledger)}/{self.n_chunks} chunks done)"
            )

    def _run_inline(self, cid: int) -> None:
        """Execute one chunk in the parent (serial path / last resort)."""
        start, stop = self.bounds[cid]
        lease = self.lease_table.grant(cid, holder=cid)
        if self.journal is not None:
            self.journal.append("grant", task=cid, lease=lease.id, proc=cid)
        pairs: list = []
        for index in range(start, stop):
            task = self.tasks[index]
            pairs.extend(join_subtrees(task.node_r, task.node_s))
        if self.geometry_r is not None:
            pairs = ExactRefinement(
                self.geometry_r, self.geometry_s
            ).filter_answers(pairs)
        self.inline_runs += 1
        self.lease_table.complete(lease.id, rows=len(pairs))
        self._commit(cid, lease.id, pairs)

    def _requeue(self, lease_id: int, cid: int) -> None:
        if self.tracer.enabled:
            self.tracer.emit(EventKind.LSE_REQUEUED, task=cid, lease=lease_id)
        self.redispatches[cid] += 1
        self.pending.append(cid)

    # -- main loops ------------------------------------------------------------
    def run_serial(self) -> None:
        while self.pending:
            self._run_inline(self.pending.popleft())

    def run_parallel(self) -> None:
        global _WORK, _PROGRESS
        context = multiprocessing.get_context("fork")
        progress = context.RawArray("Q", max(1, self.n_chunks))
        _WORK = (self.tasks, self.geometry_r, self.geometry_s)  # repro: fork-init
        _PROGRESS = progress  # repro: fork-init (parent-side parking)
        deadline = (
            self.clock() + self.timeout_s if self.timeout_s is not None else None
        )
        from ..recovery.coordinator import JoinInterrupted

        try:
            with context.Pool(self.processes) as pool:
                inflight: dict[int, tuple[int, object]] = {}

                def dispatch(cid: int) -> None:
                    kill_at = self._kill_directive(cid)
                    lease = self.lease_table.grant(cid, holder=cid)
                    if self.journal is not None:
                        self.journal.append(
                            "grant", task=cid, lease=lease.id, proc=cid
                        )
                    start, stop = self.bounds[cid]
                    handle = pool.apply_async(
                        _run_chunk, ((cid, start, stop, kill_at),)
                    )
                    inflight[lease.id] = (cid, handle)

                try:
                    self._coordinate(pool, progress, inflight, dispatch, deadline)
                except JoinInterrupted:
                    # The abort hook emulates a dying parent, but the
                    # trace must still reconcile: the abandoned chunks'
                    # leases expire here (a real death leaves them to the
                    # next run's sweep — same outcome, observable now).
                    for lease_id, (cid, _handle) in list(inflight.items()):
                        if self.lease_table.is_active(lease_id):
                            self.lease_table.expire(lease_id, "interrupted")
                            self._requeue(lease_id, cid)
                    raise
        finally:
            _WORK = None  # repro: fork-init (parent-side unparking)
            _PROGRESS = None  # repro: fork-init

    def _coordinate(self, pool, progress, inflight, dispatch, deadline) -> None:
        while len(self.ledger) < self.n_chunks:
            while self.pending:
                cid = self.pending.popleft()
                if self.redispatches[cid] > self.recovery.max_redispatch:
                    # Too many strikes: stop trusting the pool with this
                    # chunk and finish it in the parent.
                    self._run_inline(cid)
                else:
                    dispatch(cid)
            if not inflight:
                continue
            # Collect finished chunks.
            for lease_id, (cid, handle) in list(inflight.items()):
                if not handle.ready():
                    continue
                del inflight[lease_id]
                try:
                    _rcid, rows = handle.get()
                except Exception:
                    # The worker raised (not crashed): treat like a
                    # death — expire and requeue.
                    if self.lease_table.is_active(lease_id):
                        self.lease_table.expire(lease_id, "error")
                        self._requeue(lease_id, cid)
                    continue
                if not self.lease_table.is_active(lease_id):
                    # Declared dead but delivered late: its chunk was
                    # requeued; drop the stale result (the re-execution's
                    # copy commits instead).
                    continue
                self.lease_table.complete(lease_id, rows=len(rows))
                self._commit(cid, lease_id, rows)
            # Heartbeats: progress counters renew leases.
            for lease_id, (cid, handle) in inflight.items():
                current = progress[cid]
                if current != self._last_progress[cid]:
                    self._last_progress[cid] = current
                    self.lease_table.renew(lease_id)
            # Sweep: silence past the deadline orphans the chunk.
            for lease in self.lease_table.sweep():
                cid, _handle = inflight.pop(lease.id, (lease.task, None))
                self._requeue(lease.id, cid)
            if deadline is not None and self.clock() > deadline:
                if len(self.ledger) < self.n_chunks:
                    self._rescue_timeout(inflight)
                break
            if inflight:
                # Block until something finishes or the sweep interval
                # passes (no busy spin, no time.sleep).
                next(iter(inflight.values()))[1].wait(self.recovery.sweep_s)

    def _rescue_timeout(self, inflight: dict) -> None:
        """Deadline fired: abandon the pool, finish missing chunks inline."""
        warnings.warn(
            f"fault-tolerant join did not finish within {self.timeout_s}s; "
            f"completing {self.n_chunks - len(self.ledger)} missing "
            f"chunk(s) on the inline path",
            RuntimeWarning,
            stacklevel=4,
        )
        for lease_id, (cid, _handle) in list(inflight.items()):
            if self.lease_table.is_active(lease_id):
                self.lease_table.expire(lease_id, "timeout")
                self._requeue(lease_id, cid)
        inflight.clear()
        while self.pending:
            cid = self.pending.popleft()
            if cid not in self.ledger:
                self._run_inline(cid)

    # -- results ---------------------------------------------------------------
    def stats(self) -> dict:
        out = {
            "tasks": len(self.tasks),
            "chunks": self.n_chunks,
            "chunk_tasks": self.chunk_tasks,
            "replayed_chunks": self.replayed_chunks,
            "inline_runs": self.inline_runs,
            "redispatches": sum(self.redispatches.values()),
            **self.ledger.stats(),
            **self.lease_table.stats(),
        }
        if self.injector is not None:
            out["fault_counts"] = self.injector.counts()
        return out

    def finish(self) -> tuple[list, dict]:
        pairs = self.ledger.all_rows()
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.RUN_END,
                candidates=len(pairs),
                chunks=self.n_chunks,
                redispatches=sum(self.redispatches.values()),
            )
        return pairs, self.stats()

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()


def fault_tolerant_join(
    tree_r: RStarTree,
    tree_s: RStarTree,
    processes: Optional[int] = None,
    *,
    geometry_r=None,
    geometry_s=None,
    timeout_s: Optional[float] = None,
    recovery: Optional[RecoveryConfig] = None,
    journal_path: Optional[str] = None,
    faults: Optional[FaultPlan] = None,
    tracer: Tracer = NULL_TRACER,
) -> tuple[list[tuple[Hashable, Hashable]], dict]:
    """The chunked lease-monitored join; returns ``(pairs, stats)``.

    ``pairs`` is the exactly-once result multiset, grouped by ascending
    chunk id (deterministic given the task list).  ``stats`` reports
    chunking, lease and ledger counters, redispatches and replays.  A
    ``recovery.stop_after_commits`` abort raises
    :class:`~repro.recovery.coordinator.JoinInterrupted`, leaving the
    journal behind for :func:`~repro.recovery.coordinator.resume_join`.
    """
    if (geometry_r is None) != (geometry_s is None):
        raise ValueError("pass geometry for both relations or for neither")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive (or None)")
    if processes is None:
        processes = min(8, os.cpu_count() or 1)
    if recovery is None:
        recovery = RecoveryConfig(journal_path=journal_path)
    elif journal_path is not None and recovery.journal_path is None:
        recovery = dataclasses.replace(recovery, journal_path=journal_path)
    tasks = create_tasks(tree_r, tree_s, min_tasks=max(1, processes) * 4)
    engine = _Engine(
        tasks,
        geometry_r,
        geometry_s,
        processes,
        recovery,
        faults,
        tracer,
        timeout_s,
    )
    try:
        if not tasks or not engine.pending:
            return engine.finish()
        fork_supported = "fork" in multiprocessing.get_all_start_methods()
        if processes <= 1 or not fork_supported:
            if processes > 1:
                warnings.warn(
                    "the 'fork' start method is unavailable on this "
                    "platform (spawn-only); fault_tolerant_join runs "
                    "chunks inline in the parent",
                    RuntimeWarning,
                    stacklevel=2,
                )
            engine.run_serial()
        else:
            engine.run_parallel()
        return engine.finish()
    finally:
        engine.close()
