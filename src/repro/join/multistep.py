"""Multi-step spatial join processing ([BKS 94], paper section 2.1).

The paper notes that "another filter step can further reduce the total
cost of spatial joins [BKS 94]" but leaves it out because it does not
affect the parallel design.  We implement it as an optional extension:

    MBR filter (R*-tree join)  →  hull filter  →  exact refinement

The **second filter step** tests the convex hulls of candidate pairs:
hulls are conservative, so disjoint hulls prove a false hit without the
expensive exact test; intersecting hulls stay candidates.  For convex
objects the hull test is even exact.  :class:`SecondFilter` reports how
many exact tests the step saved — the quantity [BKS 94] is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Optional

from ..geometry.hull import ConvexPolygon
from ..rtree.rstar import RStarTree
from .refinement import ExactRefinement
from .sequential import sequential_join

__all__ = ["SecondFilter", "MultiStepResult", "multi_step_join"]


class SecondFilter:
    """Convex-hull filter between the MBR filter and the exact test."""

    def __init__(
        self,
        geometry_r: Mapping[Hashable, tuple],
        geometry_s: Mapping[Hashable, tuple],
    ):
        self._geometry_r = geometry_r
        self._geometry_s = geometry_s
        self._hulls_r: dict[Hashable, ConvexPolygon] = {}
        self._hulls_s: dict[Hashable, ConvexPolygon] = {}
        self.tests = 0
        self.eliminated = 0

    def _hull(self, cache, geometry, oid) -> ConvexPolygon:
        hull = cache.get(oid)
        if hull is None:
            hull = ConvexPolygon.of(geometry[oid])
            cache[oid] = hull
        return hull

    def passes(self, oid_r: Hashable, oid_s: Hashable) -> bool:
        """False when the hulls are disjoint (candidate is a false hit)."""
        self.tests += 1
        hull_r = self._hull(self._hulls_r, self._geometry_r, oid_r)
        hull_s = self._hull(self._hulls_s, self._geometry_s, oid_s)
        if hull_r.intersects(hull_s):
            return True
        self.eliminated += 1
        return False

    def filter(self, candidates) -> list[tuple[Hashable, Hashable]]:
        return [(r, s) for r, s in candidates if self.passes(r, s)]


@dataclass
class MultiStepResult:
    """Per-step accounting of one multi-step join."""

    answers: list[tuple[Hashable, Hashable]]
    mbr_candidates: int
    hull_survivors: int
    exact_tests: int

    @property
    def hull_eliminated(self) -> int:
        return self.mbr_candidates - self.hull_survivors

    @property
    def false_hits_after_hull(self) -> int:
        return self.hull_survivors - len(self.answers)

    def __repr__(self) -> str:
        return (
            f"MultiStepResult(mbr={self.mbr_candidates} -> "
            f"hull={self.hull_survivors} -> answers={len(self.answers)})"
        )


def multi_step_join(
    tree_r: RStarTree,
    tree_s: RStarTree,
    geometry_r: Mapping[Hashable, tuple],
    geometry_s: Mapping[Hashable, tuple],
    *,
    use_second_filter: bool = True,
) -> MultiStepResult:
    """The full pipeline: MBR filter, optional hull filter, exact test.

    With ``use_second_filter=False`` the exact test runs on every MBR
    candidate (the two-step baseline), letting benches measure what the
    second filter saves.
    """
    filter_result = sequential_join(tree_r, tree_s)
    candidates = filter_result.pairs
    survivors = candidates
    if use_second_filter:
        second = SecondFilter(geometry_r, geometry_s)
        survivors = second.filter(candidates)
    refinement = ExactRefinement(geometry_r, geometry_s)
    answers = refinement.filter_answers(survivors)
    return MultiStepResult(
        answers=answers,
        mbr_candidates=len(candidates),
        hull_survivors=len(survivors),
        exact_tests=refinement.tests,
    )
