"""Task assignment — phase 2 of the parallel join (sections 3.1 and 3.3).

Three schemes from the paper, each paired with its buffer organisation in
the evaluation's named variants:

* ``lsr``  — **static range** assignment + local buffers: contiguous runs
  of the plane-sweep-ordered task list per processor, keeping each
  processor's pages spatially adjacent (good for private LRU buffers);
* ``gsrr`` — **static round-robin** assignment + global buffer: deals
  tasks like cards so spatially adjacent tasks land on *different*
  processors and are processed at roughly the same time — raising the
  chance that a needed page already sits in someone's buffer;
* ``gd``   — **dynamic** assignment + global buffer: a shared FCFS task
  queue; processors fetch the next task when they finish the previous one
  (the queue itself lives in :mod:`repro.join.parallel`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .tasks import Task

__all__ = [
    "BufferMode",
    "AssignmentMode",
    "JoinVariant",
    "LSR",
    "GSRR",
    "GD",
    "static_range_assignment",
    "static_round_robin_assignment",
]


class BufferMode(enum.Enum):
    LOCAL = "local"
    GLOBAL = "global"


class AssignmentMode(enum.Enum):
    STATIC_RANGE = "static range"
    STATIC_ROUND_ROBIN = "static round-robin"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class JoinVariant:
    """A buffer organisation plus an assignment scheme."""

    buffer: BufferMode
    assignment: AssignmentMode

    @property
    def short_name(self) -> str:
        names = {
            (BufferMode.LOCAL, AssignmentMode.STATIC_RANGE): "lsr",
            (BufferMode.GLOBAL, AssignmentMode.STATIC_ROUND_ROBIN): "gsrr",
            (BufferMode.GLOBAL, AssignmentMode.DYNAMIC): "gd",
        }
        return names.get(
            (self.buffer, self.assignment),
            f"{self.buffer.value[0]}{self.assignment.value[0]}",
        )


#: The three variants compared in section 4.3.
LSR = JoinVariant(BufferMode.LOCAL, AssignmentMode.STATIC_RANGE)
GSRR = JoinVariant(BufferMode.GLOBAL, AssignmentMode.STATIC_ROUND_ROBIN)
GD = JoinVariant(BufferMode.GLOBAL, AssignmentMode.DYNAMIC)


def static_range_assignment(tasks: list[Task], n: int) -> list[list[Task]]:
    """Contiguous plane-sweep runs: "the first m modulo n processors
    receive ceil(m/n) pairs of subtrees according to the order, whereas the
    others receive floor(m/n) pairs" (section 3.1)."""
    if n < 1:
        raise ValueError("need at least one processor")
    m = len(tasks)
    base, extra = divmod(m, n)
    workloads: list[list[Task]] = []
    start = 0
    for p in range(n):
        size = base + (1 if p < extra else 0)
        workloads.append(tasks[start : start + size])
        start += size
    return workloads


def static_round_robin_assignment(tasks: list[Task], n: int) -> list[list[Task]]:
    """Deal tasks round-robin in plane-sweep order (section 3.3)."""
    if n < 1:
        raise ValueError("need at least one processor")
    workloads: list[list[Task]] = [[] for _ in range(n)]
    for index, task in enumerate(tasks):
        workloads[index % n].append(task)
    return workloads
