"""Spatial join processing: the sequential BKS93 algorithm and the paper's
parallel variants on the simulated SVM machine."""

from .assignment import (
    GD,
    GSRR,
    LSR,
    AssignmentMode,
    BufferMode,
    JoinVariant,
    static_range_assignment,
    static_round_robin_assignment,
)
from .mp import multiprocessing_join
from .multistep import MultiStepResult, SecondFilter, multi_step_join
from .parallel import ParallelJoinConfig, parallel_spatial_join, prepare_trees
from .reassign import ReassignLevel, ReassignmentPolicy, VictimChoice, Workload
from .refinement import ExactRefinement, RefinementModel, overlap_degree
from .result import ParallelJoinResult, SequentialJoinResult
from .sequential import sequential_join
from .shared_nothing import (
    NetworkParams,
    Placement,
    SharedNothingConfig,
    shared_nothing_join,
)
from .tasks import PairWindow, Task, count_root_tasks, create_tasks, expand_node_pair

__all__ = [
    "sequential_join",
    "flat_join",
    "flat_multiprocessing_join",
    "SequentialJoinResult",
    "parallel_spatial_join",
    "ParallelJoinConfig",
    "ParallelJoinResult",
    "prepare_trees",
    "multiprocessing_join",
    "Task",
    "PairWindow",
    "create_tasks",
    "count_root_tasks",
    "expand_node_pair",
    "JoinVariant",
    "BufferMode",
    "AssignmentMode",
    "LSR",
    "GSRR",
    "GD",
    "static_range_assignment",
    "static_round_robin_assignment",
    "ReassignmentPolicy",
    "ReassignLevel",
    "VictimChoice",
    "Workload",
    "RefinementModel",
    "ExactRefinement",
    "overlap_degree",
    "shared_nothing_join",
    "SharedNothingConfig",
    "Placement",
    "NetworkParams",
    "SecondFilter",
    "MultiStepResult",
    "multi_step_join",
]

_LAZY = {"flat_join", "flat_multiprocessing_join"}


def __getattr__(name):
    # The flat-backend join needs numpy; load it only when actually asked
    # for, so the node-tree core keeps working on numpy-free installs.
    if name in _LAZY:
        from . import flat

        return getattr(flat, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
