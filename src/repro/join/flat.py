"""Vectorized spatial-join filter over the flat packed backend.

The synchronized traversal of [BKS 93] tests every child of node R
against every child of node S; on the pointer backend that is a Python
plane sweep per node pair.  Here the whole *frontier* of qualifying node
pairs descends one level per round, and all its ``M x N`` child-pair
intersection tests run as **one** numpy broadcast — the node-vs-node
filter the roadmap asks to SIMD-ify.  The emitted candidate pairs are
the exact result set of :func:`repro.join.sequential.sequential_join`
over the same data, so everything downstream of the filter (refinement,
window post-filters, the service pipeline) is backend-agnostic.

``flat_multiprocessing_join`` is the fork path: workers inherit the
packed arrays by copy-on-write — fork-inherits-*arrays*, the drop-in
replacement for :mod:`repro.join.mp`'s fork-inherits-trees — and each
executes the vectorized kernel on its static range of frontier pairs.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Hashable, Optional

import numpy as np

from ..rtree.flat import FlatRTree
from .refinement import ExactRefinement
from .result import SequentialJoinResult

__all__ = [
    "flat_join",
    "flat_join_pairs",
    "create_flat_tasks",
    "flat_multiprocessing_join",
]


def flat_join(
    tree_r: FlatRTree,
    tree_s: FlatRTree,
    *,
    refinement: Optional[ExactRefinement] = None,
) -> SequentialJoinResult:
    """All pairs of data entries with intersecting MBRs, vectorized.

    Mirrors :func:`repro.join.sequential.sequential_join`: returns the
    filter step's candidate pairs (or, with *refinement*, only the exact
    answers).  ``intersection_tests`` counts the broadcast comparisons,
    ``node_pairs_visited`` the frontier pairs expanded.
    """
    result = SequentialJoinResult(pairs=[])
    if tree_r.size == 0 or tree_s.size == 0:
        return result
    top_r = tree_r.num_levels - 1
    top_s = tree_s.num_levels - 1
    pairs = _frontier_join(
        tree_r,
        tree_s,
        top_r,
        top_s,
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        result,
    )
    if refinement is not None:
        pairs = refinement.filter_answers(pairs)
    result.pairs.extend(pairs)
    return result


def flat_join_pairs(
    tree_r: FlatRTree, tree_s: FlatRTree
) -> list[tuple[Hashable, Hashable]]:
    """Just the candidate pairs (no counters) — the kernel entry point."""
    return flat_join(tree_r, tree_s).pairs


def _frontier_join(
    tree_r: FlatRTree,
    tree_s: FlatRTree,
    level_r: int,
    level_s: int,
    nodes_r: np.ndarray,
    nodes_s: np.ndarray,
    result: Optional[SequentialJoinResult],
) -> list[tuple[Hashable, Hashable]]:
    """Descend a frontier of qualifying node pairs to the data level.

    ``nodes_r``/``nodes_s`` are positionally-aligned index arrays into
    levels ``level_r``/``level_s`` of the respective trees.  The root
    pair enters untested — like the sequential join, whose root pair is
    popped and window-checked rather than pre-filtered — and the first
    round's broadcast takes care of it (a root pair with disjoint MBRs
    simply produces an all-false mask).
    """
    while len(nodes_r) and (level_r > 0 or level_s > 0):
        if result is not None and level_r >= 1 and level_s >= 1:
            result.node_pairs_visited += len(nodes_r)
        if level_r > level_s:
            # Unequal heights: only the taller side descends.
            children, parent_pos = tree_r.children_of(level_r, nodes_r)
            partner = nodes_s[parent_pos]
            keep = _intersects(
                tree_r, level_r - 1, children, tree_s, level_s, partner
            )
            if result is not None:
                result.intersection_tests += len(children)
            nodes_r, nodes_s = children[keep], partner[keep]
            level_r -= 1
            continue
        if level_s > level_r:
            children, parent_pos = tree_s.children_of(level_s, nodes_s)
            partner = nodes_r[parent_pos]
            keep = _intersects(
                tree_r, level_r, partner, tree_s, level_s - 1, children
            )
            if result is not None:
                result.intersection_tests += len(children)
            nodes_r, nodes_s = partner[keep], children[keep]
            level_s -= 1
            continue
        # Equal levels.  First the search-space restriction of [BKS 93]
        # (tuning technique (i)), vectorized: each side's children are
        # tested against the *partner node's* MBR, so the cross products
        # below cover only children inside the pair's overlap window —
        # without this, every leaf pair costs node_size^2 tests.
        ch_r, pos_r, tested_r = _restricted_children(
            tree_r, level_r, nodes_r, tree_s, level_s, nodes_s
        )
        ch_s, pos_s, tested_s = _restricted_children(
            tree_s, level_s, nodes_s, tree_r, level_r, nodes_r
        )
        if result is not None:
            result.intersection_tests += tested_r + tested_s
        counts_r = np.bincount(pos_r, minlength=len(nodes_r))
        counts_s = np.bincount(pos_s, minlength=len(nodes_s))
        a, b = _cross_ragged(ch_r, counts_r, ch_s, counts_s)
        if len(a) == 0:
            return []
        keep = _intersects(tree_r, level_r - 1, a, tree_s, level_s - 1, b)
        if result is not None:
            result.intersection_tests += len(a)
        nodes_r, nodes_s = a[keep], b[keep]
        level_r -= 1
        level_s -= 1
    if len(nodes_r) == 0:
        return []
    oids_r, oids_s = tree_r.oids, tree_s.oids
    return [
        (oids_r[a], oids_s[b])
        for a, b in zip(nodes_r.tolist(), nodes_s.tolist())
    ]


def _restricted_children(tree_a, level_a, nodes_a, tree_b, level_b, nodes_b):
    """Children of each a-node that intersect its partner b-node's MBR.

    Returns ``(children, parent_pos, tested)``: the surviving child
    indices (grouped by frontier pair, in pair order), the frontier
    position of each survivor's parent, and how many children were
    tested (for the counters).
    """
    children, parent_pos = tree_a.children_of(level_a, nodes_a)
    keep = _intersects(
        tree_a, level_a - 1, children, tree_b, level_b, nodes_b[parent_pos]
    )
    return children[keep], parent_pos[keep], len(children)


def _cross_ragged(a_vals, a_counts, b_vals, b_counts):
    """Cross products of positionally-aligned ragged groups.

    ``a_vals``/``b_vals`` hold each frontier pair's surviving children,
    concatenated in pair order with per-pair group sizes in
    ``a_counts``/``b_counts``; emits all ``a_counts[p] * b_counts[p]``
    index pairs of every pair *p* — pure integer arithmetic, no Python
    loop.
    """
    sizes = a_counts * b_counts
    total = int(sizes.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pair_pos = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    first = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    local = np.arange(total, dtype=np.int64) - np.repeat(first, sizes)
    a_first = np.concatenate(([0], np.cumsum(a_counts)[:-1]))
    b_first = np.concatenate(([0], np.cumsum(b_counts)[:-1]))
    b_count_rep = b_counts[pair_pos]
    a = a_vals[a_first[pair_pos] + local // b_count_rep]
    b = b_vals[b_first[pair_pos] + local % b_count_rep]
    return a, b


def _intersects(tree_r, level_r, idx_r, tree_s, level_s, idx_s) -> np.ndarray:
    """Vectorized closed-interval box intersection between two levels."""
    ar = tree_r.level_offsets[level_r] + idx_r
    as_ = tree_s.level_offsets[level_s] + idx_s
    return (
        (tree_r.xmin[ar] <= tree_s.xmax[as_])
        & (tree_s.xmin[as_] <= tree_r.xmax[ar])
        & (tree_r.ymin[ar] <= tree_s.ymax[as_])
        & (tree_s.ymin[as_] <= tree_r.ymax[ar])
    )


# ---------------------------------------------------------------------------
# Task creation and the fork path (fork-inherits-arrays)
# ---------------------------------------------------------------------------


def create_flat_tasks(
    tree_r: FlatRTree, tree_s: FlatRTree, min_tasks: int = 1
) -> tuple[int, int, np.ndarray, np.ndarray]:
    """Descend the qualifying frontier until it carries *min_tasks* pairs.

    Returns ``(level_r, level_s, nodes_r, nodes_s)`` — the flat analogue
    of :func:`repro.join.tasks.create_tasks`'s subtree-pair list.  Unlike
    the node path it handles unequal tree heights (the taller side simply
    keeps descending).
    """
    level_r = tree_r.num_levels - 1
    level_s = tree_s.num_levels - 1
    nodes_r = np.zeros(1, dtype=np.int64)
    nodes_s = np.zeros(1, dtype=np.int64)
    if tree_r.size == 0 or tree_s.size == 0:
        return 1, 1, nodes_r[:0], nodes_s[:0]
    while (level_r > 1 or level_s > 1) and len(nodes_r) < min_tasks:
        if level_r >= level_s:
            children, parent_pos = tree_r.children_of(level_r, nodes_r)
            partner = nodes_s[parent_pos]
            keep = _intersects(
                tree_r, level_r - 1, children, tree_s, level_s, partner
            )
            nodes_r, nodes_s = children[keep], partner[keep]
            level_r -= 1
        else:
            children, parent_pos = tree_s.children_of(level_s, nodes_s)
            partner = nodes_r[parent_pos]
            keep = _intersects(
                tree_r, level_r, partner, tree_s, level_s - 1, children
            )
            nodes_r, nodes_s = partner[keep], children[keep]
            level_s -= 1
        if len(nodes_r) == 0:
            break
    return level_r, level_s, nodes_r, nodes_s


#: Parked by the parent immediately before forking; inherited by the
#: workers through copy-on-write.  Only (start, stop) range bounds travel
#: to a worker, only oid pairs travel back.
_FLAT_WORK: Optional[tuple] = None


def _run_flat_range(bounds: tuple[int, int]) -> list[tuple[Hashable, Hashable]]:
    tree_r, tree_s, level_r, level_s, nodes_r, nodes_s, geometry_r, geometry_s = (
        _FLAT_WORK
    )
    start, stop = bounds
    pairs = _frontier_join(
        tree_r,
        tree_s,
        level_r,
        level_s,
        nodes_r[start:stop],
        nodes_s[start:stop],
        None,
    )
    if geometry_r is not None:
        pairs = ExactRefinement(geometry_r, geometry_s).filter_answers(pairs)
    return pairs


def flat_multiprocessing_join(
    tree_r: FlatRTree,
    tree_s: FlatRTree,
    processes: Optional[int] = None,
    *,
    geometry_r=None,
    geometry_s=None,
    timeout_s: Optional[float] = None,
) -> list[tuple[Hashable, Hashable]]:
    """The :func:`repro.join.mp.multiprocessing_join` contract on packed
    arrays: fork workers, inherit the SoA index copy-on-write, split the
    qualifying frontier into static ranges, run the vectorized kernel.

    Same fallbacks as the node path: serial on one process or spawn-only
    platforms (with the same warning), and a serial *rescue* recompute if
    the pool misses ``timeout_s``.
    """
    if (geometry_r is None) != (geometry_s is None):
        raise ValueError("pass geometry for both relations or for neither")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive (or None)")
    if processes is None:
        processes = min(8, os.cpu_count() or 1)
    level_r, level_s, nodes_r, nodes_s = create_flat_tasks(
        tree_r, tree_s, min_tasks=processes * 4
    )
    if len(nodes_r) == 0:
        return []
    fork_supported = "fork" in multiprocessing.get_all_start_methods()
    if processes > 1 and not fork_supported:
        warnings.warn(
            "the 'fork' start method is unavailable on this platform "
            "(spawn-only); flat_multiprocessing_join runs the serial "
            "fallback — arrays cannot be inherited without serialisation",
            RuntimeWarning,
            stacklevel=2,
        )
    if processes <= 1 or not fork_supported:
        return _serial_flat(
            tree_r, tree_s, level_r, level_s, nodes_r, nodes_s,
            geometry_r, geometry_s,
        )

    bounds: list[tuple[int, int]] = []
    base, extra = divmod(len(nodes_r), processes)
    start = 0
    for p in range(processes):
        size = base + (1 if p < extra else 0)
        if size:
            bounds.append((start, start + size))
        start += size

    global _FLAT_WORK
    _FLAT_WORK = (  # repro: fork-init (parent-side parking)
        tree_r, tree_s, level_r, level_s, nodes_r, nodes_s,
        geometry_r, geometry_s,
    )
    timed_out = False
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes) as pool:
            if timeout_s is None:
                parts = pool.map(_run_flat_range, bounds)
            else:
                try:
                    parts = pool.map_async(_run_flat_range, bounds).get(
                        timeout_s
                    )
                except multiprocessing.TimeoutError:
                    timed_out = True
    finally:
        _FLAT_WORK = None  # repro: fork-init (parent-side unparking)
    if timed_out:
        warnings.warn(
            f"flat_multiprocessing_join did not finish within {timeout_s}s; "
            f"workers terminated, recomputing on the serial fallback path",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_flat(
            tree_r, tree_s, level_r, level_s, nodes_r, nodes_s,
            geometry_r, geometry_s,
        )
    return [pair for part in parts for pair in part]


def _serial_flat(
    tree_r, tree_s, level_r, level_s, nodes_r, nodes_s, geometry_r, geometry_s
) -> list:
    pairs = _frontier_join(
        tree_r, tree_s, level_r, level_s, nodes_r, nodes_s, None
    )
    if geometry_r is not None:
        pairs = ExactRefinement(geometry_r, geometry_s).filter_answers(pairs)
    return pairs
