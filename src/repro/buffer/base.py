"""Common vocabulary of the buffer layer."""

from __future__ import annotations

import enum

__all__ = ["AccessSource"]


class AccessSource(enum.Enum):
    """Where a page access was satisfied — the paper's cost hierarchy.

    ``PATH``   — the R*-tree's own path buffer (processor-local, free),
    ``LRU``    — the processor's local LRU buffer (local memory copy),
    ``REMOTE`` — another processor's buffer via the SVM (bus transfer);
                 only possible with the global buffer of section 3.2,
    ``DISK``   — secondary storage (16 ms / 37.5 ms per section 4.2).
    """

    PATH = "path"
    LRU = "lru"
    REMOTE = "remote"
    DISK = "disk"
