"""The R*-tree path buffer (section 2.2).

Each R*-tree keeps "all nodes of the path which was accessed last" in a
buffer of its own, *independent* of the LRU buffer: the path buffer belongs
to the tree (and in the parallel setting to the processor traversing it),
whereas the LRU buffer models the database/OS page cache.  During the
depth-first join traversal, the parent nodes of the current node pair are
therefore always found without I/O, and — important for the global buffer —
without any traffic on the interconnect (section 3.2).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["PathBuffer"]


class PathBuffer:
    """Holds the page of each level on the most recently accessed path.

    Level 0 is the root.  Setting a page at level ``k`` invalidates all
    deeper levels, exactly like a depth-first traversal replacing the tail
    of the current path.
    """

    def __init__(self, height: int):
        if height < 1:
            raise ValueError("path buffer height must be at least 1")
        self.height = height
        self._path: list[Optional[int]] = [None] * height
        self.hits = 0

    def record(self, level: int, page_id: int) -> None:
        """The traversal entered *page_id* at *level*; deeper slots clear."""
        if not 0 <= level < self.height:
            raise IndexError(f"level {level} outside path of height {self.height}")
        self._path[level] = page_id
        for deeper in range(level + 1, self.height):
            self._path[deeper] = None

    def contains(self, page_id: int) -> bool:
        if page_id in self._path:
            self.hits += 1
            return True
        return False

    def current_path(self) -> list[Optional[int]]:
        return list(self._path)

    def clear(self) -> None:
        self._path = [None] * self.height

    def __repr__(self) -> str:
        return f"<PathBuffer {self._path}>"
