"""Buffer organisation (section 3.2): LRU, path buffers, local vs global."""

from .base import AccessSource
from .global_buffer import GlobalDirectory
from .local import ProcessorBufferManager
from .lru import LRUBuffer
from .path_buffer import PathBuffer

__all__ = [
    "AccessSource",
    "LRUBuffer",
    "PathBuffer",
    "GlobalDirectory",
    "ProcessorBufferManager",
]
