"""The LRU page buffer ([GR 93], as used in section 4.2 of the paper).

A pure replacement-policy data structure: it tracks *which* pages are
resident and evicts the least recently used one on overflow.  Timing and
metrics live in the managers of :mod:`repro.buffer.local` and
:mod:`repro.buffer.global_buffer`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

__all__ = ["LRUBuffer"]


class LRUBuffer:
    """Fixed-capacity page set with least-recently-used replacement."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("LRU buffer capacity must be at least one page")
        self.capacity = capacity
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def touch(self, page_id: int) -> bool:
        """Access *page_id*: True and refreshed recency on a hit, False on
        a miss (the caller then fetches the page and calls :meth:`insert`)."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page_id: int) -> Optional[int]:
        """Make *page_id* resident (most recent); returns the evicted page
        id when the buffer overflowed, else None."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            return None
        evicted = None
        if len(self._pages) >= self.capacity:
            evicted, _ = self._pages.popitem(last=False)
        self._pages[page_id] = None
        return evicted

    def remove(self, page_id: int) -> bool:
        """Drop *page_id* if resident (used when ownership migrates)."""
        if page_id in self._pages:
            del self._pages[page_id]
            return True
        return False

    def pages(self) -> Iterable[int]:
        """Resident pages, least recent first."""
        return self._pages.keys()

    def clear(self) -> None:
        self._pages.clear()

    def __repr__(self) -> str:
        return f"<LRUBuffer {len(self._pages)}/{self.capacity}>"
