"""Per-processor buffer management: path buffer -> LRU -> (SVM) -> disk.

One :class:`ProcessorBufferManager` exists per simulated processor.  Every
page access of the join algorithm walks the paper's cost hierarchy:

1. the R*-tree **path buffers** (one per tree) — free, purely local;
2. the processor's **local LRU buffer** — a local-memory page copy;
3. with the global buffer of section 3.2: the **SVM directory** — if some
   other processor holds the page, copy it over the interconnect instead of
   touching the disk (the page is *not* duplicated into the local buffer,
   preserving the at-most-once invariant);
4. the **disk array** — 16 ms (directory page) or 37.5 ms (data page plus
   exact-geometry cluster), queued FCFS per disk.

Pages loaded from disk are inserted into the local LRU buffer and, in
global-buffer mode, registered in the directory; evicted pages are
deregistered.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.machine import Machine
from ..storage.diskarray import DiskArray
from ..storage.page import PageKind
from ..trace import NULL_TRACER, EventKind, Tracer
from .base import AccessSource
from .global_buffer import GlobalDirectory
from .lru import LRUBuffer
from .path_buffer import PathBuffer

__all__ = ["ProcessorBufferManager"]


class ProcessorBufferManager:
    """The buffer stack of one simulated processor.

    Parameters
    ----------
    proc_id:
        Identifier of the owning processor (0-based).
    machine:
        Shared machine model (timing constants, interconnect, metrics).
    disk_array:
        The shared simulated disk array.
    lru_capacity:
        Local LRU size in pages; the paper divides the total buffer space
        evenly, so this is ``total_pages // n``.
    tree_heights:
        Height of each R*-tree participating in the join, keyed by tree id;
        a path buffer of that height is kept per tree.
    directory:
        The shared :class:`GlobalDirectory` for the global-buffer variants
        (``gsrr``, ``gd``), or None for purely local buffers (``lsr``).
    """

    def __init__(
        self,
        proc_id: int,
        machine: Machine,
        disk_array: DiskArray,
        lru_capacity: int,
        tree_heights: dict[int, int],
        directory: Optional[GlobalDirectory] = None,
        tracer: Tracer = NULL_TRACER,
        integrity=None,
        injector=None,
    ):
        self.proc_id = proc_id
        self.machine = machine
        self.env = machine.env
        self.disk_array = disk_array
        self.lru = LRUBuffer(lru_capacity)
        self.path_buffers = {
            tree_id: PathBuffer(height) for tree_id, height in tree_heights.items()
        }
        self.directory = directory
        self.tracer = tracer
        #: Optional :class:`~repro.storage.page.PageIntegrityStore` +
        #: :class:`~repro.faults.injector.FaultInjector`: buffered page
        #: *copies* (LRU hits, remote SVM fetches) are checksum-verified
        #: on read, and a corrupted copy is healed from the authoritative
        #: store at the cost of one extra disk read.
        self.integrity = integrity
        self.injector = injector

    def access(
        self, tree_id: int, level: int, page_id: int, kind: PageKind
    ) -> Generator:
        """Process fragment: obtain one page; returns its :class:`AccessSource`.

        ``level`` is the page's depth in its tree (0 = root); it keeps the
        path buffer current so the nodes of the active path stay free to
        re-access during the depth-first traversal.
        """
        metrics = self.machine.metrics
        tracer = self.tracer
        path_buffer = self.path_buffers[tree_id]

        if path_buffer.contains(page_id):
            metrics.add("path_hits")
            if tracer.enabled:
                tracer.emit(
                    EventKind.BUFFER_HIT,
                    proc=self.proc_id,
                    page=page_id,
                    source="path",
                )
            return AccessSource.PATH

        if self.lru.touch(page_id):
            metrics.add("lru_hits")
            if tracer.enabled:
                tracer.emit(
                    EventKind.BUFFER_HIT,
                    proc=self.proc_id,
                    page=page_id,
                    source="lru",
                )
            yield self.env.timeout(self.machine.config.local_page_access_time)
            yield from self._verify_copy(page_id, kind)
            path_buffer.record(level, page_id)
            return AccessSource.LRU

        if tracer.enabled:
            tracer.emit(EventKind.BUFFER_MISS, proc=self.proc_id, page=page_id)

        if self.directory is not None:
            while True:
                outcome, payload = yield from self.directory.begin_access(
                    page_id, self.proc_id
                )
                if outcome == "owner":
                    if tracer.enabled:
                        tracer.emit(
                            EventKind.REMOTE_FETCH,
                            proc=self.proc_id,
                            page=page_id,
                            owner=payload,
                        )
                    yield from self.machine.remote_copy()
                    metrics.add("remote_hits")
                    yield from self._verify_copy(page_id, kind)
                    path_buffer.record(level, page_id)
                    return AccessSource.REMOTE
                if outcome == "wait":
                    # Another processor is reading this page from disk;
                    # piggyback on its load instead of duplicating it.
                    if tracer.enabled:
                        tracer.emit(
                            EventKind.LOAD_WAIT, proc=self.proc_id, page=page_id
                        )
                    yield payload
                    metrics.add("load_waits")
                    continue
                break  # we claimed the load

        yield from self.disk_array.read(page_id, kind, proc=self.proc_id)
        evicted = self.lru.insert(page_id)
        if tracer.enabled:
            tracer.emit(EventKind.BUFFER_INSERT, proc=self.proc_id, page=page_id)
            if evicted is not None:
                tracer.emit(
                    EventKind.BUFFER_EVICT, proc=self.proc_id, page=evicted
                )
        if self.directory is not None:
            if evicted is not None:
                yield from self.directory.deregister(evicted, self.proc_id)
            yield from self.directory.finish_load(page_id, self.proc_id)
        path_buffer.record(level, page_id)
        return AccessSource.DISK

    def _verify_copy(self, page_id: int, kind: PageKind) -> Generator:
        """Checksum-verify a buffered page copy; repair costs a disk read.

        Path-buffer hits skip this on purpose: the active path is pinned
        in registers/cache, not served as a fresh buffer copy.  With no
        integrity store configured this is free.
        """
        if self.integrity is None:
            return
        _, repaired = self.integrity.read_copy(
            page_id, proc=self.proc_id, injector=self.injector
        )
        if repaired:
            self.machine.metrics.add("page_repairs")
            yield from self.disk_array.read(page_id, kind, proc=self.proc_id)

    def reset_paths(self) -> None:
        """Forget the current paths (a new task starts from the roots)."""
        for path_buffer in self.path_buffers.values():
            path_buffer.clear()

    def __repr__(self) -> str:
        mode = "global" if self.directory is not None else "local"
        return (
            f"<ProcessorBufferManager p{self.proc_id} {mode} "
            f"lru={len(self.lru)}/{self.lru.capacity}>"
        )
