"""The (virtual) global buffer of section 3.2.

With shared virtual memory, "the global buffer consists of the sum of the
local buffers": a shared *directory* records which processor's local buffer
currently holds each page.  A processor missing its own buffer first asks
the directory; on a hit it copies the page from the owner's memory over the
interconnect instead of reading it from disk.  The invariant the paper
states — *a page occurs at most once in one of the local buffers* — is
maintained by never caching remote copies locally and by deregistering
pages on eviction.

Directory updates require synchronisation; every lookup/register/deregister
is a short critical section under one latch whose length is
``MachineConfig.sync_time``.  At high processor counts the latch queue is
part of the synchronisation cost the paper's speed-up analysis mentions.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.engine import Environment, Event
from ..sim.machine import Machine
from ..sim.resources import Lock
from ..trace import NULL_TRACER, EventKind, Tracer

__all__ = ["GlobalDirectory"]


class GlobalDirectory:
    """Shared page → owner map of the SVM global buffer.

    Besides completed registrations, the directory tracks *in-flight* disk
    loads: when a processor misses globally it atomically claims the load,
    and any processor requesting the same page while the read is under way
    waits for its completion instead of issuing a duplicate disk read —
    the behaviour a real SVM page directory gives for free and the reason
    the global buffer's disk-access counts drop below the local ones.
    """

    def __init__(self, machine: Machine, tracer: Tracer = NULL_TRACER):
        self.machine = machine
        self.env: Environment = machine.env
        self.tracer = tracer
        self._owner: dict[int, int] = {}
        self._loading: dict[int, Event] = {}
        self._latch = Lock(machine.env, name="global-directory")

    # -- synchronised operations (process fragments) -------------------------
    def lookup(self, page_id: int) -> Generator:
        """Who holds *page_id*?  Returns the owner id or None."""
        yield from self._critical_section()
        return self._owner.get(page_id)

    def begin_access(self, page_id: int, requester: int) -> Generator:
        """Atomically decide how *requester* obtains *page_id*.

        Returns one of
        ``("owner", proc_id)`` — some processor's buffer holds the page,
        ``("wait", event)``    — another processor is loading it; wait for
                                 the event, then retry,
        ``("load", None)``     — the requester claimed the load and must
                                 read from disk, then call :meth:`finish_load`.
        """
        yield from self._critical_section()
        owner = self._owner.get(page_id)
        if owner is not None and owner != requester:
            return ("owner", owner)
        if owner == requester:
            # Registered but missed the local LRU (cannot normally happen;
            # treat as a reload by the same owner).
            return ("load", None)
        pending = self._loading.get(page_id)
        if pending is not None:
            return ("wait", pending)
        self._loading[page_id] = self.env.event()
        return ("load", None)

    def finish_load(self, page_id: int, owner: int) -> Generator:
        """The claimed disk read completed: register and wake waiters."""
        yield from self._critical_section()
        self._owner[page_id] = owner
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.PAGE_REGISTERED, proc=owner, page=page_id
            )
        pending = self._loading.pop(page_id, None)
        if pending is not None:
            pending.succeed()

    def register(self, page_id: int, owner: int) -> Generator:
        """Record that *owner* just loaded *page_id* into its local buffer."""
        yield from self._critical_section()
        self._owner[page_id] = owner
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.PAGE_REGISTERED, proc=owner, page=page_id
            )

    def deregister(self, page_id: int, owner: int) -> Generator:
        """Remove the entry when *owner* evicts *page_id*.

        Only the current owner may deregister — a stale eviction (the page
        has since been reloaded by someone else) must not drop the newer
        registration.
        """
        yield from self._critical_section()
        if self._owner.get(page_id) == owner:
            del self._owner[page_id]
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.PAGE_DEREGISTERED, proc=owner, page=page_id
                )

    def _critical_section(self) -> Generator:
        yield self._latch.acquire()
        try:
            yield self.env.timeout(self.machine.config.sync_time)
        finally:
            self._latch.release()
        self.machine.metrics.add("directory_ops")

    # -- unsynchronised views (tests, assertions) -----------------------------
    def owner_of(self, page_id: int) -> Optional[int]:
        return self._owner.get(page_id)

    def __len__(self) -> int:
        return len(self._owner)

    def __repr__(self) -> str:
        return f"<GlobalDirectory {len(self._owner)} pages>"
