"""repro.shard: shared-nothing sharded serving of spatial queries.

The dataset is split by a spatial :class:`Partitioner` (uniform ``grid``
or Morton-ordered ``zrange`` cuts) into K shards, each owning its own
R-tree; the :class:`ShardRouter` fans each window / kNN / join request
out to only the shards its geometry overlaps — through per-shard replica
:class:`~repro.service.workers.WorkerPool`\\ s with lease-backed failover
— and merges the parts back into exactly the single-tree answer
(set-union for windows, best-first pruning for kNN, reference-point
duplicate elimination for joins).
"""

from .ops import (
    data_entries,
    knn_shard_order,
    merge_knn,
    mindist,
    reference_point,
    shard_join_pairs,
    sharded_join,
    sharded_knn,
    sharded_window,
)
from .partition import (
    PartitionMap,
    Partitioner,
    ShardedDataset,
    build_sharded,
    partition_items,
)
from .router import ShardConfig, ShardRouter

__all__ = [
    "PartitionMap",
    "Partitioner",
    "ShardedDataset",
    "build_sharded",
    "partition_items",
    "ShardConfig",
    "ShardRouter",
    "data_entries",
    "knn_shard_order",
    "merge_knn",
    "mindist",
    "reference_point",
    "shard_join_pairs",
    "sharded_join",
    "sharded_knn",
    "sharded_window",
]
