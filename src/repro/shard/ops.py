"""Shard-local execution and cross-shard merge kernels.

Pure synchronous functions shared by three callers: the
:class:`~repro.shard.router.ShardRouter` (which runs the shard-local
parts in per-shard worker pools and the merges on the event loop), the
worker-side ``shard_join`` execution function, and the parity tests —
which exercise the whole K × mode × backend grid against the unsharded
oracles without touching asyncio.

Result values use the canonical formats of :mod:`repro.service.model`,
so a merged sharded answer is *equal* to the single-tree answer:

* window — sorted oid tuple (set union across shards deduplicates the
  boundary replicas);
* kNN — ``((distance, oid), ...)`` ascending by ``(distance,
  oid_order_key)``, the exact single-tree tie order;
* join — sorted oid-pair tuple; the reference-point rule makes the
  per-shard lists disjoint, so concatenation needs no dedup (and the
  checker asserts it got none).
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Sequence

from ..geometry.rect import Rect
from ..join.sequential import sequential_join
from ..rtree.query import nearest_neighbors, oid_order_key, window_query
from .partition import PartitionMap, ShardedDataset

__all__ = [
    "data_entries",
    "mindist",
    "shard_join_pairs",
    "sharded_window",
    "sharded_knn",
    "sharded_join",
]


def data_entries(tree):
    """All data-level entries of either backend."""
    if hasattr(tree, "entry"):  # flat packed backend
        return [tree.entry(i) for i in range(len(tree))]
    return list(tree.data_entries())


def mindist(rect: Rect, x: float, y: float) -> float:
    """Minimum distance from a point to a rectangle.

    Must be bit-identical to the query kernels' ``_min_distance``
    (``math.sqrt`` of the squared clamped deltas, NOT ``math.hypot``):
    the kNN pruning bound is compared against entry distances, and an
    off-by-one-ulp bound on a shard whose content box IS the candidate
    entry's box could prune an exact tie.
    """
    dx = max(rect.xl - x, x - rect.xu, 0.0)
    dy = max(rect.yl - y, y - rect.yu, 0.0)
    return math.sqrt(dx * dx + dy * dy)


def reference_point(r, s) -> tuple[float, float]:
    """The lower-left corner of two MBRs' intersection — the PBSM
    duplicate-elimination reference point.  Both objects overlap it, so
    both are replicated into the shard owning it: exactly one shard can
    (and does) report the pair."""
    return (max(r.xl, s.xl), max(r.yl, s.yl))


def shard_join_pairs(
    tree_r,
    tree_s,
    pmap: PartitionMap,
    shard: int,
    window: Optional[tuple] = None,
) -> tuple:
    """Shard *shard*'s contribution to the join: the local filter-step
    pairs whose reference point this shard owns, window-filtered like the
    unsharded join kernel.  Runs inside a worker (or inline in tests)."""
    if getattr(tree_r, "size", 0) == 0 or getattr(tree_s, "size", 0) == 0:
        return ()
    pairs = sequential_join(tree_r, tree_s).pairs
    if not pairs:
        return ()
    rects_r = {e.oid: e for e in data_entries(tree_r)}
    rects_s = {e.oid: e for e in data_entries(tree_s)}
    kept = []
    for oid_r, oid_s in pairs:
        px, py = reference_point(rects_r[oid_r], rects_s[oid_s])
        if pmap.owner_of_point(px, py) == shard:
            kept.append((oid_r, oid_s))
    if window is not None:
        rect = Rect(*window)
        keep_r = {e.oid for e in window_query(tree_r, rect)}
        keep_s = {e.oid for e in window_query(tree_s, rect)}
        kept = [(r, s) for r, s in kept if r in keep_r and s in keep_s]
    return tuple(sorted(kept))


# -- whole-dataset reference implementations ----------------------------------
def sharded_window(sharded: ShardedDataset, name: str, window: Rect) -> tuple:
    """Route + union merge, synchronously (the router's window semantics)."""
    merged: set = set()
    for shard in sharded.routed_shards(name, window):
        tree = sharded.trees[shard][name]
        merged.update(e.oid for e in window_query(tree, window))
    return tuple(sorted(merged))


def knn_shard_order(
    sharded: ShardedDataset, name: str, x: float, y: float
) -> list[tuple[float, int]]:
    """Candidate shards as ``(mindist, shard)`` in best-first order."""
    order = []
    for shard in range(sharded.shards):
        mbr = sharded.content_mbrs[shard].get(name)
        if mbr is not None:
            order.append((mindist(mbr, x, y), shard))
    order.sort()
    return order


def merge_knn(
    best: list, shard_result: Sequence[tuple], k: int
) -> list:
    """Fold one shard's kNN answer into the running top-k.

    ``best`` holds ``(distance, order_key, oid)`` sorted ascending;
    boundary replicas (same oid from two shards) deduplicate on oid.
    """
    seen = {oid for _, _, oid in best}
    for distance, oid in shard_result:
        if oid in seen:
            continue
        seen.add(oid)
        best.append((distance, oid_order_key(oid), oid))
    best.sort()
    del best[k:]
    return best


def sharded_knn(
    sharded: ShardedDataset,
    name: str,
    x: float,
    y: float,
    k: int,
    skipped: Optional[list] = None,
) -> tuple:
    """Best-first pruning kNN across shards (the router's merge,
    synchronous).  A shard is queried only while its mindist can still
    beat the current k-th best; the non-strict boundary (query when
    ``mindist == kth``) is what lets an equal-distance neighbour across a
    shard edge displace the k-th result by ``oid_order_key``, matching
    the single-tree tie order exactly.  ``skipped``, if given, collects
    ``(shard, mindist, kth)`` for the pruned shards."""
    best: list = []
    for bound, shard in knn_shard_order(sharded, name, x, y):
        if len(best) >= k and bound > best[-1][0]:
            if skipped is not None:
                skipped.append((shard, bound, best[-1][0]))
            continue
        tree = sharded.trees[shard][name]
        found = nearest_neighbors(tree, x, y, k=k) if tree.size else []
        merge_knn(best, [(float(d), e.oid) for d, e in found], k)
    return tuple((d, oid) for d, _, oid in best)


def sharded_join(
    sharded: ShardedDataset,
    name_r: str,
    name_s: str,
    window: Optional[Rect] = None,
) -> tuple:
    """Route + reference-point merge, synchronously."""
    window_t = window.as_tuple() if window is not None else None
    merged: list = []
    for shard in sharded.join_shards(name_r, name_s, window):
        merged.extend(
            shard_join_pairs(
                sharded.trees[shard][name_r],
                sharded.trees[shard][name_s],
                sharded.pmap,
                shard,
                window_t,
            )
        )
    return tuple(sorted(merged))
