"""The shard router: a shared-nothing serving tier over K worker pools.

``ShardRouter`` is the sharded sibling of
:class:`~repro.service.engine.Engine` and speaks the same protocol —
typed requests in, :class:`~repro.service.model.Response` out, ``SVC_*``
life-cycle events on a wall-clocked tracer, an Engine-shaped
``snapshot()`` — so load generators, metrics sinks and the
:class:`~repro.trace.checkers.ServiceAccountingChecker` work on either
unchanged.  What changes is the execution plan:

* the dataset is **spatially partitioned** (:mod:`repro.shard.partition`)
  into K shards, each owning its own R-tree(s) served by its own
  :class:`~repro.service.workers.WorkerPool` — shared-nothing, the
  architecture the paper's closing section names as the step beyond its
  shared-virtual-memory model;
* a request **fans out only to the shards its geometry overlaps** —
  set-union merge for windows, a best-first pruning merge for kNN (a
  shard is queried only while its content box's mindist can still beat
  the current k-th best), and reference-point duplicate elimination for
  joins — every decision emitted as an ``SHD_*`` event the
  :class:`~repro.trace.checkers.ShardAccountingChecker` re-derives from
  the announced shard geometry;
* each shard runs **R replica pools** with round-robin read routing, and
  every routed sub-request executes under a
  :class:`~repro.recovery.lease.LeaseTable` lease: a crashed or hung
  replica fails the attempt, the lease expires and is requeued
  (``LSE_REQUEUED``), and the sub-request **fails over** to the next
  replica (``SHD_FAILOVER``) instead of failing the request — with one
  replica, the retry lands on the pool the per-pool
  :class:`~repro.service.supervisor.Supervisor` re-forks.  The
  :class:`~repro.recovery.ledger.ResultLedger` keeps the merge
  exactly-once if a lost attempt ever resurfaces.

The router deliberately has no micro-batcher and no circuit breakers:
batching belongs to the single-tree engine it can wrap per shard later,
and replica failover subsumes the breaker's fail-fast role here.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Optional, Sequence

from ..faults import FaultInjector, FaultPlan
from ..geometry.rect import Rect
from ..recovery.lease import LeaseTable
from ..recovery.ledger import ResultLedger
from ..service.cache import MISS, ResultCache
from ..service.metrics import ServiceMetrics
from ..service.model import (
    JoinRequest,
    KNNRequest,
    Request,
    RequestClass,
    Response,
    Status,
    WindowRequest,
    canonical_rect,
)
from ..service.resilience import WorkerError
from ..service.supervisor import Supervisor
from ..service.workers import WorkerPool
from ..trace import EventKind, Tracer
from .ops import merge_knn, mindist
from .partition import ShardedDataset, build_sharded

__all__ = ["ShardRouter", "ShardConfig"]

_UNSET = object()

#: Each replica pool owns a disjoint call-id range this wide, so the
#: ``FLT_INJECT_* .call`` / ``SUP_CALL_*`` ledgers of many pools sharing
#: one tracer reconcile per call, never across pools.
_CALL_ID_STRIDE = 1_000_000


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded tier.

    ``shards`` / ``mode`` / ``cells_per_side`` — the partitioner
    (:class:`~repro.shard.partition.Partitioner`);
    ``replicas``         — replica pools per shard (round-robin reads,
                           failover target on a crashed attempt);
    ``backend``          — per-shard tree backend (``node`` | ``flat``);
    ``workers``          — forked processes per replica pool (0 = threads);
    ``max_attempts``     — attempts per sub-request across replicas
                           before the request errors;
    ``lease_s``          — sub-request lease duration (failover expires
                           leases explicitly, so this only bounds
                           bookkeeping, not detection latency);
    the remaining knobs mirror
    :class:`~repro.service.engine.EngineConfig` and behave identically.
    """

    shards: int = 4
    mode: str = "grid"
    replicas: int = 1
    backend: str = "node"
    workers: int = 0
    cells_per_side: Optional[int] = None
    max_inflight: int = 128
    queue_limit: int = 1024
    window_limit: int = 32
    knn_limit: int = 16
    join_limit: int = 4
    default_timeout_s: Optional[float] = 10.0
    attempt_timeout_s: Optional[float] = 2.0
    max_attempts: int = 3
    cache_capacity: int = 1024
    cache_ttl_s: Optional[float] = 60.0
    lease_s: float = 5.0
    supervise: bool = True
    supervisor_interval_s: float = 0.2
    faults: Optional[FaultPlan] = None


class ShardRouter:
    """Routes spatial queries across per-shard replica worker pools."""

    def __init__(
        self,
        datasets: Mapping[str, Sequence[tuple[Hashable, Rect]]],
        config: Optional[ShardConfig] = None,
        *,
        sinks: Sequence = (),
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or ShardConfig()
        if self.config.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.config.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.metrics = ServiceMetrics()
        # The serving tier owns real time; tests inject a fake clock and
        # everything downstream (tracer, deadlines, leases) follows it.
        self._clock = clock
        self._t0 = clock()
        self.tracer = Tracer(
            clock=self._now,
            sinks=[self.metrics, *sinks],
        )
        self.sharded: ShardedDataset = build_sharded(
            datasets,
            self.config.shards,
            mode=self.config.mode,
            backend=self.config.backend,
            cells_per_side=self.config.cells_per_side,
        )
        self.cache = ResultCache(
            self.config.cache_capacity,
            self.config.cache_ttl_s,
            keep_stale=False,
            clock=self._now,
            tracer=self.tracer,
        )
        self.injector = (
            FaultInjector(self.config.faults, tracer=self.tracer)
            if self.config.faults is not None and self.config.faults.active
            else None
        )
        self.pools: list[list[WorkerPool]] = []
        self.supervisors: list[Supervisor] = []
        for shard in range(self.config.shards):
            replicas = []
            for replica in range(self.config.replicas):
                index = shard * self.config.replicas + replica
                pool = WorkerPool(
                    self.sharded.trees[shard],
                    self.config.workers,
                    injector=self.injector,
                    tracer=self.tracer,
                    label=f"shard{shard}/r{replica}",
                    call_id_base=index * _CALL_ID_STRIDE,
                )
                replicas.append(pool)
                if self.config.supervise:
                    self.supervisors.append(
                        Supervisor(
                            pool,
                            interval_s=self.config.supervisor_interval_s,
                            tracer=self.tracer,
                        )
                    )
            self.pools.append(replicas)
        self.leases = LeaseTable(
            clock=self._now, lease_s=self.config.lease_s, tracer=self.tracer
        )
        self.ledger = ResultLedger(self.tracer)
        self._rr = [0] * self.config.shards
        self._shard_stats = [
            {
                "routed": 0,
                "subrequests": 0,
                "rows": 0,
                "failovers": 0,
                "knn_skips": 0,
                "inflight": 0,
                "max_inflight": 0,
            }
            for _ in range(self.config.shards)
        ]
        self._req_seq = itertools.count()
        self._running = False
        self._draining = False
        self._inflight = 0
        self._waiting = {cls: 0 for cls in RequestClass}
        self._sems: dict[RequestClass, asyncio.Semaphore] = {}
        self._idle: Optional[asyncio.Event] = None

    @classmethod
    def from_maps(
        cls,
        maps: Mapping[str, object],
        config: Optional[ShardConfig] = None,
        *,
        sinks: Sequence = (),
    ) -> "ShardRouter":
        """Build from named :class:`~repro.datagen.maps.MapData` objects."""
        return cls(
            {name: data.items() for name, data in maps.items()},
            config,
            sinks=sinks,
        )

    # -- life cycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            raise RuntimeError("router already started")
        self._sems = {
            RequestClass.WINDOW: asyncio.Semaphore(self.config.window_limit),
            RequestClass.KNN: asyncio.Semaphore(self.config.knn_limit),
            RequestClass.JOIN: asyncio.Semaphore(self.config.join_limit),
        }
        self._idle = asyncio.Event()
        self._idle.set()
        for replicas in self.pools:
            for pool in replicas:
                pool.start()
        for supervisor in self.supervisors:
            supervisor.start()
        self._running = True
        self._draining = False
        self.tracer.emit(
            EventKind.SVC_ENGINE_START,
            trees=",".join(self.sharded.tree_names()),
            workers=self.config.workers,
            shards=self.config.shards,
            replicas=self.config.replicas,
            mode=self.config.mode,
            backend=self.config.backend,
            faulted=int(self.injector is not None),
        )
        self._announce_topology()

    def _announce_topology(self) -> None:
        """One ``SHD_SHARD_UP`` per (shard, tree): the content geometry
        every later routing decision is checked against."""
        if not self.tracer.enabled:
            return
        for shard in range(self.config.shards):
            for name in self.sharded.tree_names():
                mbr = self.sharded.content_mbrs[shard].get(name)
                payload = {
                    "shard": shard,
                    "tree": name,
                    "objects": self.sharded.counts[shard].get(name, 0),
                }
                if mbr is None:
                    payload["empty"] = 1
                else:
                    payload.update(
                        xl=mbr.xl, yl=mbr.yl, xu=mbr.xu, yu=mbr.yu
                    )
                self.tracer.emit(EventKind.SHD_SHARD_UP, **payload)

    async def stop(self) -> None:
        """Stop admitting, drain in-flight requests, release every pool."""
        if not self._running:
            return
        self._draining = True
        await self._idle.wait()
        for supervisor in self.supervisors:
            await supervisor.stop()
        for replicas in self.pools:
            for pool in replicas:
                await pool.close()
        self._running = False
        self.tracer.emit(
            EventKind.SVC_ENGINE_STOP,
            completed=self.metrics.completed,
            rejected=self.metrics.rejected,
            timeouts=self.metrics.timeouts,
        )
        self.tracer.close()

    async def __aenter__(self) -> "ShardRouter":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- front door (the Engine protocol) -------------------------------------
    async def submit(self, request: Request, timeout=_UNSET) -> Response:
        cls = request.cls
        t0 = self._now()
        self._emit(EventKind.SVC_REQUEST_SUBMITTED, cls)
        if not self._running or self._draining:
            return self._reject(
                cls, t0, "shutdown", "router is not accepting requests"
            )
        if self._inflight >= self.config.max_inflight:
            return self._reject(
                cls, t0, "capacity",
                f"in-flight limit {self.config.max_inflight} reached",
            )
        if self._waiting[cls] >= self.config.queue_limit:
            return self._reject(
                cls, t0, "queue",
                f"waiting-room limit {self.config.queue_limit} reached for "
                f"class {cls.value}",
            )
        use_cache = self.config.cache_capacity > 0 and request.cacheable
        self._inflight += 1
        self._idle.clear()
        self._emit(
            EventKind.SVC_REQUEST_ADMITTED,
            cls,
            cache=int(use_cache),
            inflight=self._inflight,
        )
        if timeout is _UNSET:
            timeout = self.config.default_timeout_s
        deadline = None if timeout is None else t0 + timeout
        try:
            try:
                work = self._process(request, use_cache, t0, deadline)
                if timeout is not None:
                    response = await asyncio.wait_for(work, timeout)
                else:
                    response = await work
            except asyncio.TimeoutError:
                self._emit(
                    EventKind.SVC_REQUEST_TIMEOUT, cls, cache=int(use_cache)
                )
                return Response(
                    Status.TIMEOUT,
                    cls,
                    latency_s=self._now() - t0,
                    detail=f"timed out after {timeout}s",
                )
            except asyncio.CancelledError:
                self._emit(
                    EventKind.SVC_REQUEST_CANCELLED, cls, cache=int(use_cache)
                )
                raise
            except Exception as exc:
                self._emit(
                    EventKind.SVC_REQUEST_ERROR, cls, error=type(exc).__name__
                )
                return Response(
                    Status.ERROR,
                    cls,
                    latency_s=self._now() - t0,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            self._emit(
                EventKind.SVC_REQUEST_COMPLETED,
                cls,
                latency_s=response.latency_s,
                cached=int(response.cached),
                stale=0,
                batch=0,
            )
            return response
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    # -- routing --------------------------------------------------------------
    async def _process(
        self,
        request: Request,
        use_cache: bool,
        t0: float,
        deadline: Optional[float],
    ) -> Response:
        cls = request.cls
        key = request.cache_key() if use_cache else None
        if use_cache:
            value = self.cache.get(key)
            if value is not MISS:
                return Response(
                    Status.OK, cls, value=value,
                    latency_s=self._now() - t0, cached=True,
                )
        rid = next(self._req_seq)
        if isinstance(request, WindowRequest):
            value = await self._route_window(rid, request, deadline)
        elif isinstance(request, KNNRequest):
            value = await self._route_knn(rid, request, deadline)
        elif isinstance(request, JoinRequest):
            value = await self._route_join(rid, request, deadline)
        else:
            raise TypeError(f"unknown request type {type(request).__name__}")
        if use_cache:
            self.cache.put(key, value)
        return Response(
            Status.OK, cls, value=value, latency_s=self._now() - t0
        )

    def _require_tree(self, name: str) -> None:
        if name not in self.sharded.trees[0]:
            raise KeyError(
                f"unknown tree {name!r}; have {self.sharded.tree_names()}"
            )

    async def _route_window(
        self, rid: int, request: WindowRequest, deadline
    ) -> tuple:
        self._require_tree(request.tree)
        canon = canonical_rect(request.window)
        rect = Rect(*canon)
        route = self.sharded.routed_shards(request.tree, rect)
        self._emit_routed(
            rid, "window", route,
            tree=request.tree,
            xl=canon[0], yl=canon[1], xu=canon[2], yu=canon[3],
        )
        parts = await self._fanout(
            rid,
            RequestClass.WINDOW,
            [
                (shard, "windows", (request.tree, [canon]))
                for shard in route
            ],
            deadline,
        )
        merged: set = set()
        total = 0
        for values in parts:
            total += len(values[0])
            merged.update(values[0])
        value = tuple(sorted(merged))
        self._emit_raw(
            EventKind.SHD_MERGED, req=rid, cls="window",
            rows=len(value), parts=total, duplicates=total - len(value),
        )
        return value

    async def _route_knn(
        self, rid: int, request: KNNRequest, deadline
    ) -> tuple:
        self._require_tree(request.tree)
        if request.k < 1:
            raise ValueError("k must be at least 1")
        x, y, k = float(request.x), float(request.y), int(request.k)
        order = []
        for shard in range(self.config.shards):
            mbr = self.sharded.content_mbrs[shard].get(request.tree)
            if mbr is not None:
                order.append((mindist(mbr, x, y), shard))
        order.sort()
        self._emit_routed(
            rid, "knn", [shard for _, shard in order],
            tree=request.tree, x=x, y=y, k=k,
        )
        best: list = []
        total = 0
        for bound, shard in order:
            if len(best) >= k and bound > best[-1][0]:
                # Strictly above the k-th distance: an equal-distance
                # shard may still hold a tie that wins by oid order.
                self._shard_stats[shard]["knn_skips"] += 1
                self._emit_raw(
                    EventKind.SHD_SHARD_SKIPPED, req=rid, shard=shard,
                    mindist=bound, kth=best[-1][0],
                )
                continue
            found = await self._sub(
                rid, shard, RequestClass.KNN,
                "knn", (request.tree, x, y, k), deadline,
            )
            total += len(found)
            merge_knn(best, found, k)
        value = tuple((d, oid) for d, _, oid in best)
        self._emit_raw(
            EventKind.SHD_MERGED, req=rid, cls="knn",
            rows=len(value), parts=total, duplicates=total - len(value),
        )
        return value

    async def _route_join(
        self, rid: int, request: JoinRequest, deadline
    ) -> tuple:
        self._require_tree(request.tree_r)
        self._require_tree(request.tree_s)
        window = (
            canonical_rect(request.window)
            if request.window is not None
            else None
        )
        rect = Rect(*window) if window is not None else None
        route = self.sharded.join_shards(request.tree_r, request.tree_s, rect)
        payload = {"tree_r": request.tree_r, "tree_s": request.tree_s}
        if window is not None:
            payload.update(
                wxl=window[0], wyl=window[1], wxu=window[2], wyu=window[3]
            )
        self._emit_routed(rid, "join", route, **payload)
        parts = await self._fanout(
            rid,
            RequestClass.JOIN,
            [
                (
                    shard,
                    "shard_join",
                    (
                        request.tree_r,
                        request.tree_s,
                        window,
                        self.sharded.pmap,
                        shard,
                    ),
                )
                for shard in route
            ],
            deadline,
        )
        merged: list = []
        for pairs in parts:
            merged.extend(pairs)
        value = tuple(sorted(merged))
        duplicates = len(merged) - len(set(merged))
        self._emit_raw(
            EventKind.SHD_MERGED, req=rid, cls="join",
            rows=len(value), parts=len(merged), duplicates=duplicates,
        )
        if duplicates:
            raise RuntimeError(
                f"join merge found {duplicates} duplicate pair(s) — "
                f"reference-point elimination failed"
            )
        return value

    # -- sub-request execution -------------------------------------------------
    async def _fanout(
        self, rid: int, cls: RequestClass, calls: list, deadline
    ) -> list:
        """Run one sub-request per shard concurrently; on any terminal
        failure, cancel the rest so no orphan task outlives the request."""
        if not calls:
            return []
        if len(calls) == 1:
            shard, kind, args = calls[0]
            return [await self._sub(rid, shard, cls, kind, args, deadline)]
        tasks = [
            asyncio.ensure_future(
                self._sub(rid, shard, cls, kind, args, deadline)
            )
            for shard, kind, args in calls
        ]
        try:
            return await asyncio.gather(*tasks)
        except BaseException:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise

    async def _sub(
        self,
        rid: int,
        shard: int,
        cls: RequestClass,
        kind: str,
        args: tuple,
        deadline: Optional[float],
    ):
        """One routed sub-request: leased execution with replica failover.

        Every ``SENT`` settles exactly once — DONE on success, FAILOVER
        between attempts, FAILED on the last attempt (or on abandonment
        by a cancelled request).  Three consequences the settlement spec
        (``repro.analysis.protocol``) holds us to:

        * a budget exhausted *before* the first attempt raises without
          any settlement event (there is no SENT to settle);
        * give-up vs failover is decided *before* a FAILOVER is emitted,
          so a FAILOVER always keeps its promise of a following SENT —
          a budget that dies between attempts settles the failed SENT
          as FAILED instead of announcing a retry that never comes;
        * a cancelled request emits FAILED only when the current
          attempt's SENT is still unsettled.

        Every attempt runs under its own lease; a failed attempt's lease
        expires and its task is requeued (the ``LSE_*`` ledger the
        RecoveryAccountingChecker reconciles) before the next replica
        picks it up.
        """
        self._waiting[cls] += 1
        try:
            await self._sems[cls].acquire()
        finally:
            self._waiting[cls] -= 1
        stats = self._shard_stats[shard]
        stats["subrequests"] += 1
        stats["inflight"] += 1
        stats["max_inflight"] = max(stats["max_inflight"], stats["inflight"])
        replicas = self.config.replicas
        start = self._rr[shard]
        self._rr[shard] = (start + 1) % replicas
        task = f"{rid}/{shard}"
        lease = None
        pending_sent = False  # the current attempt's SENT is unsettled
        try:
            for attempt in range(self.config.max_attempts):
                replica = (start + attempt) % replicas
                pool = self.pools[shard][replica]
                timeout_s = self.config.attempt_timeout_s
                if deadline is not None:
                    remaining = deadline - self._now()
                    if remaining <= 0 and attempt == 0:
                        # Nothing was ever sent: fail the sub-request
                        # with no settlement event — FAILED may only
                        # settle a SENT.
                        raise self._give_up(
                            rid, shard, cls, attempt, "deadline",
                            WorkerError(
                                "sub-request budget exhausted before "
                                f"attempt {attempt + 1}",
                                cause_type="deadline",
                                kind=kind,
                            ),
                            sent=False,
                        )
                    # attempt > 0: a FAILOVER promised this resend (the
                    # give-up decision already saw a live budget; the
                    # clock may have advanced since).  Send with the
                    # clamped remainder — an expired budget surfaces as
                    # an immediate attempt timeout, which settles the
                    # SENT lawfully through the WorkerError path.
                    timeout_s = (
                        max(0.0, remaining) if timeout_s is None
                        else min(timeout_s, max(0.0, remaining))
                    )
                holder = shard * replicas + replica
                lease = self.leases.grant(task, holder=holder)
                self._emit_raw(
                    EventKind.SHD_SUBREQUEST_SENT,
                    req=rid, shard=shard, replica=replica,
                    attempt=attempt, op=kind,
                )
                pending_sent = True
                try:
                    value = await pool.run(kind, *args, timeout_s=timeout_s)
                except WorkerError as exc:
                    self.leases.expire(lease.id, reason=exc.cause_type)
                    self._requeue(task, holder)
                    lease = None
                    # Decide give-up vs failover *now*, before promising
                    # a resend: out of attempts, or out of budget for
                    # another one.
                    out_of_budget = (
                        deadline is not None and deadline - self._now() <= 0
                    )
                    if attempt + 1 >= self.config.max_attempts or out_of_budget:
                        pending_sent = False
                        raise self._give_up(
                            rid, shard, cls, attempt + 1, exc.cause_type, exc
                        )
                    stats["failovers"] += 1
                    # The failover IS this tier's retry: answer the pool's
                    # SUP_CALL_FAILED so the resilience ledger balances.
                    payload = {"call": exc.call_id, "attempt": attempt + 1,
                               "delay_s": 0.0}
                    if deadline is not None:
                        payload["remaining_s"] = deadline - self._now()
                    self._emit(EventKind.SUP_CALL_RETRY, cls, **payload)
                    self._emit_raw(
                        EventKind.SHD_FAILOVER,
                        req=rid, shard=shard, replica=replica,
                        next_replica=(start + attempt + 1) % replicas,
                        attempt=attempt, error=exc.cause_type,
                    )
                    pending_sent = False
                    continue
                rows = self._row_count(kind, value)
                # First completion wins; a resurfacing lost attempt would
                # land here again and be dropped (LSE_DUP_DROPPED).
                if self.ledger.commit(task, (), lease=lease.id, proc=holder):
                    self.leases.complete(lease.id, rows=rows)
                    lease = None
                    stats["rows"] += rows
                    self._emit_raw(
                        EventKind.SHD_SUBREQUEST_DONE,
                        req=rid, shard=shard, replica=replica,
                        attempt=attempt, rows=rows,
                    )
                    pending_sent = False
                return value
            raise AssertionError("unreachable: attempts exhausted silently")
        except asyncio.CancelledError:
            # The awaiting request timed out or was cancelled: the
            # attempt's lease is released (expired + requeued, with no
            # taker — the request is gone) and, if the attempt's SENT is
            # still unsettled, the sub-request settles as FAILED so the
            # fan-out ledger balances.  With no SENT pending there is
            # nothing to settle and FAILED would unbalance it instead.
            if lease is not None and self.leases.is_active(lease.id):
                holder = lease.holder
                self.leases.expire(lease.id, reason="abandoned")
                self._requeue(task, holder, abandoned=1)
            if pending_sent:
                self._emit_raw(
                    EventKind.SHD_SUBREQUEST_FAILED,
                    req=rid, shard=shard, attempts=attempt + 1,
                    error="abandoned",
                )
            raise
        finally:
            stats["inflight"] -= 1
            self._sems[cls].release()

    def _give_up(
        self, rid: int, shard: int, cls: RequestClass, attempts: int,
        error: str, exc: WorkerError, sent: bool = True,
    ) -> WorkerError:
        if exc.call_id >= 0:
            # Answer the last attempt's SUP_CALL_FAILED (a synthetic
            # deadline error made no pool call, so there is none to
            # answer and call_id stays -1).
            self._emit(
                EventKind.SUP_CALL_GIVEUP, cls,
                call=exc.call_id, attempts=attempts, error=error,
            )
        if sent:
            # FAILED settles the attempt's SENT; with nothing sent (a
            # budget that expired before the first attempt) the failure
            # is the raised exception alone — an unmatched FAILED would
            # unbalance the settlement ledger.
            self._emit_raw(
                EventKind.SHD_SUBREQUEST_FAILED,
                req=rid, shard=shard, attempts=attempts, error=error,
            )
        return exc

    def _requeue(self, task: str, holder: int, **extra) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.LSE_REQUEUED, proc=holder, task=task, **extra
            )

    @staticmethod
    def _row_count(kind: str, value) -> int:
        if kind == "windows":
            return sum(len(part) for part in value)
        return len(value)

    # -- helpers --------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._t0

    def _emit(
        self, kind: EventKind, cls: Optional[RequestClass] = None, **data
    ) -> None:
        if self.tracer.enabled:
            if cls is not None:
                data["cls"] = cls.value
            self.tracer.emit(kind, **data)

    def _emit_raw(self, kind: EventKind, **data) -> None:
        """Emit with *data* verbatim (the ``SHD_*`` events carry their
        own string ``cls`` key)."""
        if self.tracer.enabled:
            self.tracer.emit(kind, **data)

    def _emit_routed(
        self, rid: int, cls: str, route: Sequence[int], **geometry
    ) -> None:
        for shard in route:
            self._shard_stats[shard]["routed"] += 1
        self._emit_raw(
            EventKind.SHD_REQUEST_ROUTED,
            req=rid, cls=cls, fanout=len(route),
            shards=",".join(str(s) for s in route),
            **geometry,
        )

    def _reject(
        self, cls: RequestClass, t0: float, reason: str, detail: str
    ) -> Response:
        self._emit(EventKind.SVC_REQUEST_REJECTED, cls, reason=reason)
        return Response(
            Status.REJECTED, cls, latency_s=self._now() - t0, detail=detail
        )

    @property
    def inflight(self) -> int:
        return self._inflight

    def snapshot(self) -> dict:
        """Engine-shaped snapshot plus per-shard serving metrics."""
        shards = {}
        for shard in range(self.config.shards):
            replicas = self.pools[shard]
            stats = self._shard_stats[shard]
            shards[str(shard)] = {
                "objects": dict(self.sharded.counts[shard]),
                "routed": stats["routed"],
                "subrequests": stats["subrequests"],
                "rows": stats["rows"],
                "failovers": stats["failovers"],
                "knn_skips": stats["knn_skips"],
                "inflight": stats["inflight"],
                "max_inflight": stats["max_inflight"],
                "queue_depth": sum(p.inflight_calls for p in replicas),
                "replicas": len(replicas),
                "pool_restarts": sum(p.restarts for p in replicas),
                "calls_failed": sum(p.calls_failed for p in replicas),
            }
        return {
            "metrics": self.metrics.report(),
            "cache": self.cache.stats(),
            "inflight": self._inflight,
            "running": self._running,
            "breakers": None,
            "supervisor": (
                {
                    "sweeps": sum(s.sweeps for s in self.supervisors),
                    "crashes_detected": sum(
                        s.crashes_detected for s in self.supervisors
                    ),
                    "respawns_detected": sum(
                        s.respawns_detected for s in self.supervisors
                    ),
                    "deadline_expiries": sum(
                        s.deadline_expiries for s in self.supervisors
                    ),
                    "pool_restarts": sum(
                        s.pool_restarts for s in self.supervisors
                    ),
                }
                if self.supervisors
                else None
            ),
            "pool": {
                "restarts": sum(
                    p.restarts for r in self.pools for p in r
                ),
                "calls_failed": sum(
                    p.calls_failed for r in self.pools for p in r
                ),
                "calls_abandoned": sum(
                    p.calls_abandoned for r in self.pools for p in r
                ),
            },
            "faults_injected": (
                self.injector.counts() if self.injector is not None else None
            ),
            "partition": {
                "mode": self.sharded.pmap.mode,
                "shards": self.config.shards,
                "replicas": self.config.replicas,
                "backend": self.config.backend,
                "grid": f"{self.sharded.pmap.gx}x{self.sharded.pmap.gy}",
            },
            "leases": self.leases.stats(),
            "ledger": self.ledger.stats(),
            "shards": shards,
        }

    def __repr__(self) -> str:
        state = (
            "draining" if self._draining and self._running
            else "running" if self._running else "stopped"
        )
        return (
            f"<ShardRouter {state} shards={self.config.shards} "
            f"replicas={self.config.replicas} mode={self.config.mode} "
            f"inflight={self._inflight}>"
        )
