"""Spatial partitioning for the shared-nothing serving tier.

The paper closes by naming the shared-nothing architecture — where "the
assignment of the data to the different disks is of special interest" —
as the step beyond its shared-virtual-memory model.  This module does
that assignment for the serving tier: it splits a dataset's space into
cells, assigns every cell to exactly one of *K* shards, and builds one
R-tree per shard (node or flat backend) over the objects that shard can
see.

Two assignments coexist on purpose, and the distinction carries every
correctness argument downstream:

* **ownership** — every *point* of the data MBR belongs to exactly one
  shard (:meth:`PartitionMap.owner_of_point`), and every *object* is
  owned by exactly one shard (the owner of its MBR center).  Ownership
  is what makes join duplicate elimination exact: a cross-shard pair is
  reported only by the shard owning the pair's reference point.
* **replication** — a shard's tree stores every object whose MBR
  *overlaps* the shard's region (PBSM-style boundary replication).  A
  window or kNN query routed to the shards its geometry overlaps then
  never misses a qualifying object, because any object intersecting the
  query inside shard *s*'s region is stored in *s*.

Partitioning modes:

* ``grid`` — a uniform ``gx × gy`` grid with one cell per shard (the
  factorization closest to square), the classic static decomposition;
* ``zrange`` — a finer power-of-two grid whose cells are ordered by
  their Z-order (Morton) code and cut into *K* contiguous code runs of
  approximately equal **object count** (the balance heuristic): skewed
  data gets small hot cells and large sparse runs, the
  space-filling-curve range sharding of "Parallel In-Memory Evaluation
  of Spatial Joins" (PAPERS.md).

A :class:`PartitionMap` is a frozen value object of primitives, so it
pickles cheaply into forked worker pools and its routing decisions are
reproducible anywhere — the worker-side join kernel re-runs the same
ownership test the router used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from ..geometry.rect import Rect
from ..rtree.bulk import str_bulk_load
from ..rtree.rstar import RStarTree
from ..zorder.curve import interleave

__all__ = [
    "PartitionMap",
    "Partitioner",
    "ShardedDataset",
    "build_sharded",
    "partition_items",
]

#: Default cell-grid side for ``zrange`` mode (power of two: Morton
#: codes interleave whole bits).  256 cells balance 8 shards finely.
DEFAULT_ZRANGE_CELLS = 16


def _near_square_factors(k: int) -> Tuple[int, int]:
    """``(gx, gy)`` with ``gx * gy == k`` and the ratio closest to 1."""
    best = (1, k)
    for gx in range(1, int(k**0.5) + 1):
        if k % gx == 0:
            best = (gx, k // gx)
    return best


@dataclass(frozen=True)
class PartitionMap:
    """The space → shard assignment: a cell grid plus a cell-owner table.

    ``owner[iy * gx + ix]`` is the shard owning cell ``(ix, iy)``.  Cell
    membership is half-open (``[x0 + ix*w, x0 + (ix+1)*w)``) with the
    last row/column closed, so the cells tile the data MBR exactly and
    every point has one owner; points outside the data MBR clamp to the
    nearest boundary cell, so routing never fails on out-of-range
    queries.
    """

    mode: str
    shards: int
    x0: float
    y0: float
    cell_w: float
    cell_h: float
    gx: int
    gy: int
    owner: Tuple[int, ...]

    # -- point / rect location -------------------------------------------------
    def cell_of_point(self, x: float, y: float) -> int:
        ix = int((x - self.x0) / self.cell_w)
        iy = int((y - self.y0) / self.cell_h)
        if ix < 0:
            ix = 0
        elif ix >= self.gx:
            ix = self.gx - 1
        if iy < 0:
            iy = 0
        elif iy >= self.gy:
            iy = self.gy - 1
        return iy * self.gx + ix

    def owner_of_point(self, x: float, y: float) -> int:
        return self.owner[self.cell_of_point(x, y)]

    def cells_of_rect(self, rect: Rect) -> Iterable[int]:
        """Indices of every cell the (clamped) rectangle overlaps."""
        lo = self.cell_of_point(rect.xl, rect.yl)
        hi = self.cell_of_point(rect.xu, rect.yu)
        ix0, iy0 = lo % self.gx, lo // self.gx
        ix1, iy1 = hi % self.gx, hi // self.gx
        for iy in range(iy0, iy1 + 1):
            base = iy * self.gx
            for ix in range(ix0, ix1 + 1):
                yield base + ix

    def shards_of_rect(self, rect: Rect) -> frozenset:
        """Every shard whose region the rectangle overlaps."""
        return frozenset(self.owner[c] for c in self.cells_of_rect(rect))

    # -- geometry of the decomposition ----------------------------------------
    def cell_rect(self, cell: int) -> Rect:
        ix, iy = cell % self.gx, cell // self.gx
        return Rect(
            self.x0 + ix * self.cell_w,
            self.y0 + iy * self.cell_h,
            self.x0 + (ix + 1) * self.cell_w,
            self.y0 + (iy + 1) * self.cell_h,
        )

    def shard_cells(self, shard: int) -> list[int]:
        return [c for c, s in enumerate(self.owner) if s == shard]

    def shard_region(self, shard: int) -> Rect:
        """The MBR of the shard's cells (exact for ``grid``, a bounding
        box over the Morton run for ``zrange``)."""
        return Rect.union_all(
            self.cell_rect(c) for c in self.shard_cells(shard)
        )

    def bounds(self) -> Rect:
        return Rect(
            self.x0,
            self.y0,
            self.x0 + self.gx * self.cell_w,
            self.y0 + self.gy * self.cell_h,
        )

    def __repr__(self) -> str:
        return (
            f"<PartitionMap {self.mode} shards={self.shards} "
            f"grid={self.gx}x{self.gy}>"
        )


class Partitioner:
    """Fits a :class:`PartitionMap` to a dataset.

    ``mode='grid'`` ignores the objects beyond their bounding box;
    ``mode='zrange'`` also counts objects per cell (by owned center) and
    balances the per-shard counts when cutting the Morton order.
    """

    def __init__(
        self,
        shards: int,
        mode: str = "grid",
        *,
        cells_per_side: Optional[int] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if mode not in ("grid", "zrange"):
            raise ValueError(f"unknown partition mode {mode!r}")
        self.shards = shards
        self.mode = mode
        if cells_per_side is None:
            cells_per_side = DEFAULT_ZRANGE_CELLS
            while cells_per_side * cells_per_side < 4 * shards:
                cells_per_side *= 2
        if mode == "zrange":
            if cells_per_side & (cells_per_side - 1):
                raise ValueError("cells_per_side must be a power of two")
            if cells_per_side * cells_per_side < shards:
                raise ValueError("fewer cells than shards")
        self.cells_per_side = cells_per_side

    def fit(self, items: Sequence[tuple[Hashable, Rect]]) -> PartitionMap:
        if not items:
            raise ValueError("cannot partition an empty dataset")
        bbox = Rect.union_all(rect for _, rect in items)
        # Degenerate extents (all objects on one line) still need cells
        # of positive size for the index arithmetic to divide by.
        width = max(bbox.xu - bbox.xl, 1e-9)
        height = max(bbox.yu - bbox.yl, 1e-9)
        if self.mode == "grid":
            gx, gy = _near_square_factors(self.shards)
            if (width < height) != (gx < gy):
                gx, gy = gy, gx
            return PartitionMap(
                mode="grid",
                shards=self.shards,
                x0=bbox.xl,
                y0=bbox.yl,
                cell_w=width / gx,
                cell_h=height / gy,
                gx=gx,
                gy=gy,
                owner=tuple(range(self.shards)),
            )
        return self._fit_zrange(items, bbox, width, height)

    def _fit_zrange(
        self, items, bbox: Rect, width: float, height: float
    ) -> PartitionMap:
        side = self.cells_per_side
        bits = side.bit_length() - 1
        probe = PartitionMap(
            mode="zrange",
            shards=1,
            x0=bbox.xl,
            y0=bbox.yl,
            cell_w=width / side,
            cell_h=height / side,
            gx=side,
            gy=side,
            owner=(0,) * (side * side),
        )
        counts = [0] * (side * side)
        for _, rect in items:
            cx = (rect.xl + rect.xu) / 2.0
            cy = (rect.yl + rect.yu) / 2.0
            counts[probe.cell_of_point(cx, cy)] += 1
        order = sorted(
            range(side * side),
            key=lambda c: interleave(c % side, c // side, bits),
        )
        owner = [0] * (side * side)
        # Greedy equal-count cut of the Morton order: close shard s once
        # its run holds its proportional share of the objects — but never
        # leave fewer cells than remaining shards, so every shard owns at
        # least one cell and the cells still tile the space.
        total = len(items)
        shard, acc = 0, 0
        for position, cell in enumerate(order):
            remaining_cells = len(order) - position
            remaining_shards = self.shards - shard
            if (
                shard < self.shards - 1
                and position > 0
                and (
                    acc * self.shards >= total * (shard + 1)
                    or remaining_cells <= remaining_shards
                )
            ):
                shard += 1
            owner[cell] = shard
            acc += counts[cell]
        return PartitionMap(
            mode="zrange",
            shards=self.shards,
            x0=bbox.xl,
            y0=bbox.yl,
            cell_w=width / side,
            cell_h=height / side,
            gx=side,
            gy=side,
            owner=tuple(owner),
        )


def partition_items(
    items: Sequence[tuple[Hashable, Rect]], pmap: PartitionMap
) -> tuple[list, list]:
    """``(owned, replicated)`` per-shard item lists.

    ``owned[s]`` holds the objects shard *s* owns (MBR center); the
    lists partition the dataset.  ``replicated[s]`` holds every object
    overlapping shard *s*'s region — the list the shard's tree is built
    from; boundary objects appear in several.
    """
    owned: list = [[] for _ in range(pmap.shards)]
    replicated: list = [[] for _ in range(pmap.shards)]
    for oid, rect in items:
        cx = (rect.xl + rect.xu) / 2.0
        cy = (rect.yl + rect.yu) / 2.0
        owned[pmap.owner_of_point(cx, cy)].append((oid, rect))
        for shard in pmap.shards_of_rect(rect):
            replicated[shard].append((oid, rect))
    return owned, replicated


def _build_tree(items: Sequence[tuple[Hashable, Rect]], backend: str):
    """One shard-local tree; empty shards get an empty node tree (both
    query kernels duck-type it and answer nothing)."""
    if not items:
        return RStarTree()
    if backend == "flat":
        from ..rtree.flat import FlatRTree

        return FlatRTree.build(items)
    if backend != "node":
        raise ValueError(f"unknown backend {backend!r}")
    return str_bulk_load(items)


@dataclass(frozen=True)
class ShardedDataset:
    """K shard-local tree registries plus the routing geometry.

    ``trees[s]`` maps every tree name to shard *s*'s local tree (built
    over the replicated items).  ``content_mbrs[s][name]`` is the bbox of
    what the shard actually stores — ``None`` when it stores nothing —
    and is the bound the router intersects queries against: tighter than
    the shard's cell region, and safe because any object intersecting a
    query inside the region is stored here.
    """

    pmap: PartitionMap
    backend: str
    trees: Tuple[Mapping[str, object], ...]
    content_mbrs: Tuple[Mapping[str, Optional[Rect]], ...]
    counts: Tuple[Mapping[str, int], ...]

    @property
    def shards(self) -> int:
        return self.pmap.shards

    def tree_names(self) -> list[str]:
        return sorted(self.trees[0]) if self.trees else []

    def routed_shards(self, name: str, rect: Rect) -> list[int]:
        """Shards whose stored content for *name* can intersect *rect*."""
        out = []
        for shard in range(self.shards):
            mbr = self.content_mbrs[shard].get(name)
            if mbr is not None and mbr.intersects(rect):
                out.append(shard)
        return out

    def join_shards(
        self, name_r: str, name_s: str, window: Optional[Rect] = None
    ) -> list[int]:
        """Shards that can hold an intersecting (r, s) pair — both
        content boxes overlap each other (and the window, if any)."""
        out = []
        for shard in range(self.shards):
            mbr_r = self.content_mbrs[shard].get(name_r)
            mbr_s = self.content_mbrs[shard].get(name_s)
            if mbr_r is None or mbr_s is None:
                continue
            if not mbr_r.intersects(mbr_s):
                continue
            if window is not None and not (
                mbr_r.intersects(window) and mbr_s.intersects(window)
            ):
                continue
            out.append(shard)
        return out


def build_sharded(
    datasets: Mapping[str, Sequence[tuple[Hashable, Rect]]],
    shards: int,
    *,
    mode: str = "grid",
    backend: str = "node",
    cells_per_side: Optional[int] = None,
) -> ShardedDataset:
    """Partition every named dataset with ONE shared map and build the
    per-shard trees.

    A single :class:`PartitionMap` (fitted on the union of all datasets)
    covers every tree, so a join between two trees agrees with itself
    about which shard owns any reference point.
    """
    if not datasets:
        raise ValueError("need at least one dataset")
    everything = [item for items in datasets.values() for item in items]
    pmap = Partitioner(shards, mode, cells_per_side=cells_per_side).fit(
        everything
    )
    trees = []
    content_mbrs = []
    counts = []
    for shard in range(shards):
        trees.append({})
        content_mbrs.append({})
        counts.append({})
    for name, items in datasets.items():
        _, replicated = partition_items(items, pmap)
        for shard in range(shards):
            local = replicated[shard]
            trees[shard][name] = _build_tree(local, backend)
            content_mbrs[shard][name] = (
                Rect.union_all(rect for _, rect in local) if local else None
            )
            counts[shard][name] = len(local)
    return ShardedDataset(
        pmap=pmap,
        backend=backend,
        trees=tuple(trees),
        content_mbrs=tuple(content_mbrs),
        counts=tuple(counts),
    )
