"""The z-ordering baseline of [OM 88]: Morton curve, B+-tree, merge join."""

from .btree import BPlusTree
from .curve import Quantizer, ZRegion, decompose, interleave
from .join import ZJoinStats, ZOrderIndex, zorder_join

__all__ = [
    "interleave",
    "ZRegion",
    "Quantizer",
    "decompose",
    "BPlusTree",
    "ZOrderIndex",
    "ZJoinStats",
    "zorder_join",
]
