"""A B+-tree — the one-dimensional access method under [OM 88]'s join.

PROBE stores the z-order entries of each spatial relation in a standard
B-tree and processes the spatial join as an ordered merge of the two
trees' leaf levels.  This is that substrate: a classic B+-tree with
ordered keys, duplicate support, ordered leaf iteration and range scans.

Keys are arbitrary comparables; values ride along.  Fan-out defaults to
the paper's page layout would allow for 12-byte (key, pointer) entries,
but is configurable for testing.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Optional

__all__ = ["BPlusTree"]


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: list = []
        self.values: list = []
        self.next: Optional["_Leaf"] = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self):
        # children[i] covers keys < keys[i]; children[-1] the rest.
        self.keys: list = []
        self.children: list = []


class BPlusTree:
    """A B+-tree with linked leaves; duplicates allowed."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = order
        self._root = _Leaf()
        self._size = 0
        self.height = 1

    def __len__(self) -> int:
        return self._size

    # ----------------------------------------------------------------- insert
    def insert(self, key, value) -> None:
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, sibling = split
            new_root = _Inner()
            new_root.keys = [separator]
            new_root.children = [self._root, sibling]
            self._root = new_root
            self.height += 1
        self._size += 1

    def _insert(self, node, key, value):
        if isinstance(node, _Leaf):
            index = bisect.bisect_right(node.keys, key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if len(node.keys) <= self.order:
                return None
            return self._split_leaf(node)
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, sibling = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, sibling)
        if len(node.children) <= self.order:
            return None
        return self._split_inner(node)

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        sibling = _Leaf()
        sibling.keys = leaf.keys[middle:]
        sibling.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        sibling.next = leaf.next
        leaf.next = sibling
        return (sibling.keys[0], sibling)

    def _split_inner(self, inner: _Inner):
        middle = len(inner.children) // 2
        sibling = _Inner()
        separator = inner.keys[middle - 1]
        sibling.keys = inner.keys[middle:]
        sibling.children = inner.children[middle:]
        inner.keys = inner.keys[: middle - 1]
        inner.children = inner.children[:middle]
        return (separator, sibling)

    # ----------------------------------------------------------------- search
    def _leftmost_leaf_for(self, key) -> tuple[_Leaf, int]:
        node = self._root
        while isinstance(node, _Inner):
            index = bisect.bisect_left(node.keys, key)
            node = node.children[index]
        return node, bisect.bisect_left(node.keys, key)

    def items(self) -> Iterator[tuple]:
        """All (key, value) pairs in key order (leaf-level scan)."""
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def range(self, low, high) -> Iterator[tuple]:
        """All (key, value) with ``low <= key <= high``, in order."""
        leaf, index = self._leftmost_leaf_for(low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return
                yield (key, leaf.values[index])
                index += 1
            leaf = leaf.next
            index = 0

    def bulk_load(self, pairs: Iterable[tuple]) -> None:
        """Insert many (key, value) pairs (just a convenience loop)."""
        for key, value in pairs:
            self.insert(key, value)

    def validate(self) -> None:
        """Check ordering, fill and linked-leaf invariants."""
        keys = [key for key, _ in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"
        count = self._validate(self._root, is_root=True)
        assert count == self._size

    def _validate(self, node, is_root: bool) -> int:
        minimum = 1 if is_root else self.order // 2 - 1
        if isinstance(node, _Leaf):
            assert len(node.keys) == len(node.values)
            assert is_root or len(node.keys) >= max(1, minimum)
            return len(node.keys)
        assert len(node.children) == len(node.keys) + 1
        assert len(node.children) >= (2 if is_root else max(2, minimum))
        total = 0
        for index, child in enumerate(node.children):
            total += self._validate(child, is_root=False)
            if index < len(node.keys):
                subtree_keys = [k for k, _ in _subtree_items(child)]
                if subtree_keys:
                    assert subtree_keys[-1] <= node.keys[index]
        return total

    def __repr__(self) -> str:
        return f"<BPlusTree size={self._size} height={self.height} order={self.order}>"


def _subtree_items(node):
    if isinstance(node, _Leaf):
        yield from zip(node.keys, node.values)
        return
    for child in node.children:
        yield from _subtree_items(child)
