"""The z-order (Morton) space-filling curve and z-region decomposition.

[OM 88] (PROBE), reviewed in the paper's section 2.1, processes spatial
joins on B-trees over *z-values*: space is quartered recursively, every
quadrant at level ``l`` is a *z-region* — a prefix of the Morton code —
and an object is approximated by a small set of z-regions covering its
MBR.  A z-region corresponds to a contiguous interval of z-values, so
B-tree machinery (sorting, range scans, merge joins) applies.

This module provides the curve: bit interleaving, the z-region type, and
the recursive decomposition of a rectangle into at most ``max_regions``
z-regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry.rect import Rect

__all__ = ["interleave", "interleave_array", "ZRegion", "decompose", "Quantizer"]


def interleave(ix: int, iy: int, bits: int) -> int:
    """Morton code: interleave the low *bits* of ix (even) and iy (odd)."""
    code = 0
    for bit in range(bits):
        code |= ((ix >> bit) & 1) << (2 * bit)
        code |= ((iy >> bit) & 1) << (2 * bit + 1)
    return code


def interleave_array(ix, iy, bits: int):
    """Vectorized :func:`interleave` over numpy integer arrays.

    Spreads the low *bits* (at most 28, like :class:`Quantizer`) of each
    coordinate with the classic mask-and-shift cascade, so a whole map's
    Morton codes come out of six bitwise passes instead of a Python loop
    per object.  Returns a ``uint64`` array; element ``i`` equals
    ``interleave(int(ix[i]), int(iy[i]), bits)``.
    """
    import numpy as np  # deferred: the scalar curve stays numpy-free

    if bits < 1 or bits > 28:
        raise ValueError("bits must be in [1, 28]")
    mask = np.uint64((1 << bits) - 1)
    x = np.asarray(ix, dtype=np.uint64) & mask
    y = np.asarray(iy, dtype=np.uint64) & mask
    return _spread_bits(np, x) | (_spread_bits(np, y) << np.uint64(1))


def _spread_bits(np, v):
    """Insert a zero bit between consecutive bits of each uint64 element."""
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


@dataclass(frozen=True, order=True)
class ZRegion:
    """A quadtree cell as a z-value interval ``[lo, hi]`` (inclusive).

    ``level`` 0 is the whole space; each level quarters the cells.  The
    interval bounds are z-values at the finest resolution, so regions of
    different levels compare directly.
    """

    lo: int
    hi: int
    level: int

    def contains(self, other: "ZRegion") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "ZRegion") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi


class Quantizer:
    """Maps world coordinates into the ``2^bits`` x ``2^bits`` grid."""

    def __init__(self, bounds: Rect, bits: int = 12):
        if bits < 1 or bits > 28:
            raise ValueError("bits must be in [1, 28]")
        self.bounds = bounds
        self.bits = bits
        self.cells = 1 << bits
        width = bounds.xu - bounds.xl
        height = bounds.yu - bounds.yl
        self._sx = self.cells / width if width > 0 else 0.0
        self._sy = self.cells / height if height > 0 else 0.0

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        ix = int((x - self.bounds.xl) * self._sx)
        iy = int((y - self.bounds.yl) * self._sy)
        limit = self.cells - 1
        return (min(max(ix, 0), limit), min(max(iy, 0), limit))

    def cells_of(self, xs, ys):
        """Vectorized :meth:`cell_of` over numpy coordinate arrays."""
        import numpy as np  # deferred: the scalar curve stays numpy-free

        limit = self.cells - 1
        ix = ((np.asarray(xs, dtype=np.float64) - self.bounds.xl) * self._sx)
        iy = ((np.asarray(ys, dtype=np.float64) - self.bounds.yl) * self._sy)
        return (
            np.clip(ix.astype(np.int64), 0, limit),
            np.clip(iy.astype(np.int64), 0, limit),
        )

    def grid_rect(self, rect: Rect) -> tuple[int, int, int, int]:
        """Inclusive grid-cell bounds covering *rect*."""
        ix0, iy0 = self.cell_of(rect.xl, rect.yl)
        ix1, iy1 = self.cell_of(rect.xu, rect.yu)
        return (ix0, iy0, ix1, iy1)


def decompose(rect: Rect, quantizer: Quantizer, max_regions: int = 4) -> list[ZRegion]:
    """Cover *rect* with at most *max_regions* z-regions.

    Recursive quadtree descent: a cell is kept whole when it lies inside
    the rectangle or when splitting it would exceed the budget; otherwise
    it is quartered.  More regions = tighter approximation = fewer false
    hits but more B-tree entries — [OM 88]'s central trade-off.
    """
    if max_regions < 1:
        raise ValueError("max_regions must be at least 1")
    bits = quantizer.bits
    ix0, iy0, ix1, iy1 = quantizer.grid_rect(rect)

    # Descend to the smallest quadtree cell that encloses the whole
    # rectangle — the classic single-z-region approximation; the budgeted
    # cover below then refines within that cell.
    level, cx, cy = 0, 0, 0
    while level < bits:
        shift = bits - (level + 1)
        if (ix0 >> shift) != (ix1 >> shift) or (iy0 >> shift) != (iy1 >> shift):
            break
        cx = ix0 >> shift
        cy = iy0 >> shift
        level += 1

    regions: list[ZRegion] = []
    # Work queue of cells: (level, cx, cy) where (cx, cy) is the cell's
    # position in the level's grid.
    queue: list[tuple[int, int, int]] = [(level, cx, cy)]
    while queue:
        level, cx, cy = queue.pop()
        shift = bits - level
        cell_ix0 = cx << shift
        cell_iy0 = cy << shift
        cell_ix1 = cell_ix0 + (1 << shift) - 1
        cell_iy1 = cell_iy0 + (1 << shift) - 1
        # Disjoint from the rectangle?
        if cell_ix1 < ix0 or ix1 < cell_ix0 or cell_iy1 < iy0 or iy1 < cell_iy0:
            continue
        inside = (
            ix0 <= cell_ix0
            and cell_ix1 <= ix1
            and iy0 <= cell_iy0
            and cell_iy1 <= iy1
        )
        if inside or level == bits or len(regions) + len(queue) + 4 > max_regions:
            lo = interleave(cell_ix0, cell_iy0, bits)
            regions.append(ZRegion(lo, lo + (1 << (2 * shift)) - 1, level))
            continue
        for dx in (0, 1):
            for dy in (0, 1):
                queue.append((level + 1, (cx << 1) | dx, (cy << 1) | dy))
    regions.sort()
    return _merge_adjacent(regions)


def _merge_adjacent(regions: list[ZRegion]) -> list[ZRegion]:
    """Merge z-contiguous regions into single intervals (fewer entries)."""
    merged: list[ZRegion] = []
    for region in regions:
        if merged and merged[-1].hi + 1 == region.lo:
            previous = merged[-1]
            merged[-1] = ZRegion(previous.lo, region.hi, min(previous.level, region.level))
        else:
            merged.append(region)
    return merged
