"""The z-order spatial join of [OM 88] — the related-work baseline.

PROBE's filter step: every object's MBR becomes a few z-regions (z-value
intervals) stored in a B-tree per relation; the join merges the two
ordered sequences and reports object pairs with overlapping z-intervals.
Because a z-region is a conservative approximation, this yields a superset
of the MBR-filter candidates: the same pair may match through several
region pairs (duplicates) and overlapping regions need not mean
overlapping MBRs (z-false hits).  :func:`zorder_join` removes both and
therefore produces *exactly* the MBR candidate set — making the CPU
trade-off against the R-tree join directly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..geometry.rect import Rect
from .btree import BPlusTree
from .curve import Quantizer, decompose

__all__ = ["ZOrderIndex", "ZJoinStats", "zorder_join"]


class _IntervalEntry:
    """One z-interval of one object, shaped for the 1D plane sweep."""

    __slots__ = ("xl", "xu", "yl", "yu", "oid", "rect")

    def __init__(self, lo: int, hi: int, oid, rect: Rect):
        self.xl = lo
        self.xu = hi
        self.yl = 0.0
        self.yu = 0.0
        self.oid = oid
        self.rect = rect


class ZOrderIndex:
    """A spatial relation as z-intervals in a B+-tree."""

    def __init__(
        self,
        items: Sequence[tuple[Hashable, Rect]],
        quantizer: Quantizer,
        max_regions: int = 4,
        btree_order: int = 64,
    ):
        self.quantizer = quantizer
        self.max_regions = max_regions
        self.tree = BPlusTree(order=btree_order)
        self.entry_count = 0
        for oid, rect in items:
            for region in decompose(rect, quantizer, max_regions):
                self.tree.insert(region.lo, (region.hi, oid, rect))
                self.entry_count += 1

    def interval_entries(self) -> list[_IntervalEntry]:
        """The B-tree leaf scan as sweep-ready interval entries."""
        return [
            _IntervalEntry(lo, hi, oid, rect)
            for lo, (hi, oid, rect) in self.tree.items()
        ]

    def __repr__(self) -> str:
        return f"<ZOrderIndex {self.entry_count} intervals, {self.tree!r}>"


@dataclass
class ZJoinStats:
    """Cost accounting of one z-order join."""

    entries_r: int = 0
    entries_s: int = 0
    interval_tests: int = 0
    interval_matches: int = 0
    duplicates: int = 0
    z_false_hits: int = 0

    @property
    def candidates(self) -> int:
        return self.interval_matches - self.duplicates - self.z_false_hits


def zorder_join(
    items_r: Sequence[tuple[Hashable, Rect]],
    items_s: Sequence[tuple[Hashable, Rect]],
    bounds: Rect,
    *,
    bits: int = 12,
    max_regions: int = 4,
) -> tuple[list[tuple[Hashable, Hashable]], ZJoinStats]:
    """[OM 88] filter step; returns (candidate pairs, cost stats).

    The candidate set equals the MBR filter's (R-tree join) because
    z-duplicates are removed and every interval match is verified against
    the pair's MBRs.
    """
    quantizer = Quantizer(bounds, bits=bits)
    index_r = ZOrderIndex(items_r, quantizer, max_regions)
    index_s = ZOrderIndex(items_s, quantizer, max_regions)
    stats = ZJoinStats(entries_r=index_r.entry_count, entries_s=index_s.entry_count)

    entries_r = index_r.interval_entries()
    entries_s = index_s.interval_entries()
    # Ordered merge of the two leaf scans = the 1D plane sweep over
    # z-intervals (the sweep module works on any xl/xu extents).
    from ..geometry.planesweep import sweep_pairs

    sweep = sweep_pairs(entries_r, entries_s)
    stats.interval_tests = sweep.tests

    seen: set[tuple[Hashable, Hashable]] = set()
    pairs: list[tuple[Hashable, Hashable]] = []
    for er, es in sweep.pairs:
        stats.interval_matches += 1
        key = (er.oid, es.oid)
        if key in seen:
            stats.duplicates += 1
            continue
        seen.add(key)
        if not er.rect.intersects(es.rect):
            stats.z_false_hits += 1
            continue
        pairs.append(key)
    return pairs, stats
