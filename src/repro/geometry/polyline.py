"""Polylines: the exact geometry of street, river and railway objects.

TIGER/Line records are chains of coordinate pairs; a street object of the
paper's *map 1* and the linear features of *map 2* are therefore modelled as
polylines.  The refinement step of a spatial join tests two polylines for
intersection using their segments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .rect import Rect
from .segment import Segment, on_segment, orientation

__all__ = ["Polyline"]


class Polyline:
    """An open chain of straight segments through ``points``."""

    __slots__ = ("points", "_mbr")

    def __init__(self, points: Sequence[tuple[float, float]]):
        pts = [(float(x), float(y)) for x, y in points]
        if len(pts) < 2:
            raise ValueError("a polyline needs at least two points")
        self.points = pts
        self._mbr = Rect.from_points(pts)

    @property
    def mbr(self) -> Rect:
        return self._mbr

    def __len__(self) -> int:
        return len(self.points)

    def num_segments(self) -> int:
        return len(self.points) - 1

    def segments(self) -> Iterable[Segment]:
        pts = self.points
        for i in range(len(pts) - 1):
            ax, ay = pts[i]
            bx, by = pts[i + 1]
            yield Segment(ax, ay, bx, by)

    def length(self) -> float:
        total = 0.0
        pts = self.points
        for i in range(len(pts) - 1):
            dx = pts[i + 1][0] - pts[i][0]
            dy = pts[i + 1][1] - pts[i][1]
            total += (dx * dx + dy * dy) ** 0.5
        return total

    def intersects(self, other: "Polyline") -> bool:
        """Exact polyline intersection: any pair of segments intersects.

        A plane-sweep over segment x-intervals, in the same no-extra-
        structure style the paper uses for rectangles (section 2.2): both
        segment lists are sorted by their lower x-coordinate, and each
        segment is only tested against segments whose x-interval reaches it.
        This mirrors the cost profile the paper assumes for the exact test
        ([BKSS 94]: "assuming a plane-sweep algorithm used for the
        intersection test").
        """
        if not self._mbr.intersects(other._mbr):
            return False
        mine = sorted(self.segments(), key=_seg_xl)
        theirs = sorted(other.segments(), key=_seg_xl)
        i = j = 0
        n, m = len(mine), len(theirs)
        while i < n and j < m:
            a = mine[i]
            b = theirs[j]
            if _seg_xl(a) <= _seg_xl(b):
                xu = max(a.ax, a.bx)
                k = j
                while k < m and _seg_xl(theirs[k]) <= xu:
                    if a.intersects(theirs[k]):
                        return True
                    k += 1
                i += 1
            else:
                xu = max(b.ax, b.bx)
                k = i
                while k < n and _seg_xl(mine[k]) <= xu:
                    if b.intersects(mine[k]):
                        return True
                    k += 1
                j += 1
        return False

    def intersects_brute(self, other: "Polyline") -> bool:
        """Quadratic reference implementation of :meth:`intersects`."""
        if not self._mbr.intersects(other._mbr):
            return False
        others = list(other.segments())
        for a in self.segments():
            for b in others:
                if a.intersects(b):
                    return True
        return False

    def __repr__(self) -> str:
        return f"Polyline({len(self.points)} points, mbr={self._mbr!r})"


def _seg_xl(s: Segment) -> float:
    return s.ax if s.ax < s.bx else s.bx
