"""Axis-parallel rectangles (minimum bounding rectangles, MBRs).

The rectangle is the unit of currency of the whole system: R*-tree entries
store MBRs, the spatial-join filter step tests MBRs for intersection, and
the refinement-cost model of the paper (section 4.2) is driven by the
*degree of overlap* between two MBRs.

A :class:`Rect` is immutable and exposes its coordinates as the plain
attributes ``xl, yl, xu, yu`` (lower-left and upper-right corner, following
the paper's notation in section 2.2).  Any object exposing those four
attributes can take part in the plane-sweep algorithms of
:mod:`repro.geometry.planesweep`; R*-tree entries mirror the attributes for
exactly this reason.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

__all__ = ["Rect", "EMPTY_AREA_EPS"]

#: Areas below this threshold are treated as degenerate when computing
#: ratios such as the overlap degree.
EMPTY_AREA_EPS = 1e-12


class Rect:
    """A closed axis-parallel rectangle ``[xl, xu] x [yl, yu]``.

    Degenerate rectangles (points, horizontal/vertical segments) are legal;
    TIGER street segments frequently produce them.  Intersection tests use
    closed-interval semantics, matching the usual R-tree convention where
    touching rectangles qualify as intersecting.
    """

    __slots__ = ("xl", "yl", "xu", "yu")

    def __init__(self, xl: float, yl: float, xu: float, yu: float):
        if xu < xl or yu < yl:
            raise ValueError(
                f"malformed rectangle: ({xl}, {yl}, {xu}, {yu}) has "
                "upper corner below lower corner"
            )
        object.__setattr__(self, "xl", float(xl))
        object.__setattr__(self, "yl", float(yl))
        object.__setattr__(self, "xu", float(xu))
        object.__setattr__(self, "yu", float(yu))

    # -- immutability -----------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Rect is immutable")

    # -- construction helpers ---------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[tuple[float, float]]) -> "Rect":
        """Return the MBR of a non-empty iterable of ``(x, y)`` points."""
        it = iter(points)
        try:
            x, y = next(it)
        except StopIteration:
            raise ValueError("cannot build the MBR of zero points") from None
        xl = xu = x
        yl = yu = y
        for x, y in it:
            if x < xl:
                xl = x
            elif x > xu:
                xu = x
            if y < yl:
                yl = y
            elif y > yu:
                yu = y
        return cls(xl, yl, xu, yu)

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """Return the MBR enclosing a non-empty iterable of rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot build the union of zero rectangles") from None
        xl, yl, xu, yu = first.xl, first.yl, first.xu, first.yu
        for r in it:
            if r.xl < xl:
                xl = r.xl
            if r.yl < yl:
                yl = r.yl
            if r.xu > xu:
                xu = r.xu
            if r.yu > yu:
                yu = r.yu
        return cls(xl, yl, xu, yu)

    # -- basic measures ----------------------------------------------------
    def area(self) -> float:
        """Area; zero for degenerate rectangles."""
        return (self.xu - self.xl) * (self.yu - self.yl)

    def margin(self) -> float:
        """Half perimeter, the R*-tree split criterion of [BKSS 90]."""
        return (self.xu - self.xl) + (self.yu - self.yl)

    def center(self) -> tuple[float, float]:
        return ((self.xl + self.xu) / 2.0, (self.yl + self.yu) / 2.0)

    def width(self) -> float:
        return self.xu - self.xl

    def height(self) -> float:
        return self.yu - self.yl

    # -- predicates ----------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """Closed-interval intersection test (touching counts)."""
        return (
            self.xl <= other.xu
            and other.xl <= self.xu
            and self.yl <= other.yu
            and other.yl <= self.yu
        )

    def contains(self, other: "Rect") -> bool:
        """True when *other* lies completely inside this rectangle."""
        return (
            self.xl <= other.xl
            and self.yl <= other.yl
            and other.xu <= self.xu
            and other.yu <= self.yu
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.xl <= x <= self.xu and self.yl <= y <= self.yu

    # -- combining rectangles ----------------------------------------------
    def intersection(self, other: "Rect") -> "Rect | None":
        """The common rectangle, or ``None`` when disjoint."""
        xl = self.xl if self.xl > other.xl else other.xl
        yl = self.yl if self.yl > other.yl else other.yl
        xu = self.xu if self.xu < other.xu else other.xu
        yu = self.yu if self.yu < other.yu else other.yu
        if xu < xl or yu < yl:
            return None
        return Rect(xl, yl, xu, yu)

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            self.xl if self.xl < other.xl else other.xl,
            self.yl if self.yl < other.yl else other.yl,
            self.xu if self.xu > other.xu else other.xu,
            self.yu if self.yu > other.yu else other.yu,
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of the common rectangle (0.0 when disjoint)."""
        w = min(self.xu, other.xu) - max(self.xl, other.xl)
        if w < 0.0:
            return 0.0
        h = min(self.yu, other.yu) - max(self.yl, other.yl)
        if h < 0.0:
            return 0.0
        return w * h

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to also cover *other* (R-tree insertion cost)."""
        union_area = (
            (max(self.xu, other.xu) - min(self.xl, other.xl))
            * (max(self.yu, other.yu) - min(self.yl, other.yl))
        )
        return union_area - self.area()

    def overlap_degree(self, other: "Rect") -> float:
        """Degree of overlap in ``[0, 1]`` used by the refinement-cost model.

        The paper makes the simulated exact-geometry test take 2-18 ms
        "depending on the degree of overlap between the corresponding MBRs"
        (section 4.2) without pinning the formula down.  We use the product
        over both axes of ``overlap-width / smaller-extent`` — the fraction
        of the smaller rectangle's extent that is covered.  It is 0 for
        disjoint rectangles, 1 when one rectangle is contained in the
        other, and well-defined for the degenerate (zero-area) MBRs that
        straight street segments produce: a degenerate extent lying inside
        the partner's range counts as fully covered.
        """
        wx = min(self.xu, other.xu) - max(self.xl, other.xl)
        if wx < 0.0:
            return 0.0
        wy = min(self.yu, other.yu) - max(self.yl, other.yl)
        if wy < 0.0:
            return 0.0
        min_wx = min(self.xu - self.xl, other.xu - other.xl)
        min_wy = min(self.yu - self.yl, other.yu - other.yl)
        degree = 1.0
        if min_wx > EMPTY_AREA_EPS:
            degree *= wx / min_wx
        if min_wy > EMPTY_AREA_EPS:
            degree *= wy / min_wy
        return degree

    def min_distance(self, other: "Rect") -> float:
        """Euclidean distance between the closest points of two rectangles."""
        dx = max(self.xl - other.xu, other.xl - self.xu, 0.0)
        dy = max(self.yl - other.yu, other.yl - self.yu, 0.0)
        return math.hypot(dx, dy)

    # -- dunder plumbing ------------------------------------------------------
    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.xl, self.yl, self.xu, self.yu)

    def __iter__(self) -> Iterator[float]:
        return iter((self.xl, self.yl, self.xu, self.yu))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.xl == other.xl
            and self.yl == other.yl
            and self.xu == other.xu
            and self.yu == other.yu
        )

    def __hash__(self) -> int:
        return hash((self.xl, self.yl, self.xu, self.yu))

    def __repr__(self) -> str:
        return f"Rect({self.xl:g}, {self.yl:g}, {self.xu:g}, {self.yu:g})"
