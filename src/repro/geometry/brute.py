"""Quadratic reference algorithms used as ground truth in tests and benches.

Every non-trivial algorithm in this repository (plane sweep, R*-tree window
query, sequential join, all parallel join variants) is validated against
these brutally simple implementations.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")
U = TypeVar("U")

__all__ = ["brute_join_pairs", "brute_window_query"]


def brute_join_pairs(rs: Sequence[T], ss: Sequence[U]) -> list[tuple[T, U]]:
    """All pairs ``(r, s)`` with intersecting MBRs, nested-loop style.

    Items are anything exposing ``xl, yl, xu, yu``.  The output order is
    row-major (all partners of ``rs[0]`` first), *not* the plane-sweep
    order; compare as sets.
    """
    out: list[tuple[T, U]] = []
    for r in rs:
        r_xl = r.xl
        r_yl = r.yl
        r_xu = r.xu
        r_yu = r.yu
        for s in ss:
            if r_xl <= s.xu and s.xl <= r_xu and r_yl <= s.yu and s.yl <= r_yu:
                out.append((r, s))
    return out


def brute_window_query(items: Sequence[T], window) -> list[T]:
    """All items whose MBR intersects ``window``, in input order."""
    w_xl = window.xl
    w_yl = window.yl
    w_xu = window.xu
    w_yu = window.yu
    return [
        e
        for e in items
        if e.xl <= w_xu and w_xl <= e.xu and e.yl <= w_yu and w_yl <= e.yu
    ]
