"""Line segments and the exact intersection predicates built on them.

These are the primitives of the *refinement step*: once the filter step has
produced candidate pairs of MBRs, the exact geometry (polylines built from
segments, polygons) decides whether a candidate is an answer or a false hit.
The predicates use the standard orientation-based formulation from
computational geometry [PS 85] with exact handling of collinear cases.
"""

from __future__ import annotations

from .rect import Rect

__all__ = ["orientation", "on_segment", "Segment"]


def orientation(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> int:
    """Orientation of the ordered triple ``a, b, c``.

    Returns ``1`` for counter-clockwise, ``-1`` for clockwise and ``0`` for
    collinear points.
    """
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if cross > 0.0:
        return 1
    if cross < 0.0:
        return -1
    return 0


def on_segment(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> bool:
    """True when point ``p`` lies on the closed segment ``a-b``.

    The caller must already know that ``a, b, p`` are collinear.
    """
    return (
        min(ax, bx) <= px <= max(ax, bx)
        and min(ay, by) <= py <= max(ay, by)
    )


class Segment:
    """A closed line segment between two points."""

    __slots__ = ("ax", "ay", "bx", "by")

    def __init__(self, ax: float, ay: float, bx: float, by: float):
        self.ax = float(ax)
        self.ay = float(ay)
        self.bx = float(bx)
        self.by = float(by)

    @classmethod
    def from_points(cls, a: tuple[float, float], b: tuple[float, float]) -> "Segment":
        return cls(a[0], a[1], b[0], b[1])

    def mbr(self) -> Rect:
        return Rect(
            min(self.ax, self.bx),
            min(self.ay, self.by),
            max(self.ax, self.bx),
            max(self.ay, self.by),
        )

    def length(self) -> float:
        dx = self.bx - self.ax
        dy = self.by - self.ay
        return (dx * dx + dy * dy) ** 0.5

    def intersects(self, other: "Segment") -> bool:
        """Exact closed-segment intersection test (touching counts).

        Standard four-orientation test with the collinear special cases,
        preceded by a cheap bounding-box reject.
        """
        # Bounding-box reject: essential because polyline intersection calls
        # this for many segment pairs.
        if (
            max(self.ax, self.bx) < min(other.ax, other.bx)
            or max(other.ax, other.bx) < min(self.ax, self.bx)
            or max(self.ay, self.by) < min(other.ay, other.by)
            or max(other.ay, other.by) < min(self.ay, self.by)
        ):
            return False

        o1 = orientation(self.ax, self.ay, self.bx, self.by, other.ax, other.ay)
        o2 = orientation(self.ax, self.ay, self.bx, self.by, other.bx, other.by)
        o3 = orientation(other.ax, other.ay, other.bx, other.by, self.ax, self.ay)
        o4 = orientation(other.ax, other.ay, other.bx, other.by, self.bx, self.by)

        if o1 != o2 and o3 != o4:
            return True
        # Collinear endpoint-on-segment cases.
        if o1 == 0 and on_segment(self.ax, self.ay, self.bx, self.by, other.ax, other.ay):
            return True
        if o2 == 0 and on_segment(self.ax, self.ay, self.bx, self.by, other.bx, other.by):
            return True
        if o3 == 0 and on_segment(other.ax, other.ay, other.bx, other.by, self.ax, self.ay):
            return True
        if o4 == 0 and on_segment(other.ax, other.ay, other.bx, other.by, self.bx, self.by):
            return True
        return False

    def __eq__(self, other) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return (self.ax, self.ay, self.bx, self.by) == (
            other.ax,
            other.ay,
            other.bx,
            other.by,
        )

    def __hash__(self) -> int:
        return hash((self.ax, self.ay, self.bx, self.by))

    def __repr__(self) -> str:
        return f"Segment(({self.ax:g}, {self.ay:g}) -> ({self.bx:g}, {self.by:g}))"
