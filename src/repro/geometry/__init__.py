"""Geometric primitives: MBR algebra, exact geometry, plane sweep.

This package is the foundation both of the R*-tree (``repro.rtree``) and of
the join algorithms (``repro.join``).  See the paper's section 2.2 for the
plane-sweep formulation reproduced in :mod:`repro.geometry.planesweep`.
"""

from .brute import brute_join_pairs, brute_window_query
from .hull import ConvexPolygon, convex_hull
from .planesweep import SweepResult, restrict_to_window, sweep_pairs, x_sorted
from .polygon import Polygon
from .polyline import Polyline
from .rect import Rect
from .segment import Segment

__all__ = [
    "Rect",
    "Segment",
    "Polyline",
    "Polygon",
    "ConvexPolygon",
    "convex_hull",
    "sweep_pairs",
    "x_sorted",
    "restrict_to_window",
    "SweepResult",
    "brute_join_pairs",
    "brute_window_query",
]
