"""The node-level plane sweep of [BKS 93], section 2.2 of the paper.

Given two sequences of rectangles sorted by their lower x-coordinate, the
sweep computes all intersecting pairs *without building any dynamic sweep
structure*: the sweep line visits the rectangles of both sequences in
``xl``-order, and each visited rectangle ``t`` is tested only against the
rectangles of the *other* sequence whose x-interval reaches ``t``
(``xl <= t.xu``); for those, only the y-overlap remains to be checked.

The order in which pairs are emitted is the **local plane-sweep order**.
It matters beyond CPU cost: in the spatial join, the emitted pair sequence
*is* the order in which child pages are scheduled for reading, which keeps
spatially adjacent pages temporally adjacent in the LRU buffer.  The same
order drives task creation and task assignment of the parallel join
(sections 3.1 and 3.3).

Any object carrying the attributes ``xl, yl, xu, yu`` participates —
:class:`~repro.geometry.rect.Rect` as well as R*-tree entries.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

__all__ = [
    "x_sorted",
    "sweep_pairs",
    "SweepResult",
    "restrict_to_window",
]

T = TypeVar("T")
U = TypeVar("U")


def x_sorted(items: Sequence[T]) -> list[T]:
    """Return *items* sorted by their lower x-coordinate ``xl``.

    This is the precondition of :func:`sweep_pairs`; the paper keeps the
    entries of every R*-tree node in this order (section 2.2).
    """
    return sorted(items, key=_xl)


class SweepResult:
    """Outcome of one node-level plane sweep.

    Attributes
    ----------
    pairs:
        The intersecting pairs ``(r, s)`` — ``r`` always from the first
        sequence — in local plane-sweep order.
    tests:
        Number of y-overlap tests performed, the paper's proxy for the
        CPU cost of the filter step.
    """

    __slots__ = ("pairs", "tests")

    def __init__(self, pairs: list[tuple], tests: int):
        self.pairs = pairs
        self.tests = tests

    def __iter__(self):
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)


def sweep_pairs(rs: Sequence[T], ss: Sequence[U]) -> SweepResult:
    """All intersecting pairs of ``rs`` x ``ss`` in local plane-sweep order.

    Both sequences must be sorted by ``xl`` (see :func:`x_sorted`).  Runs in
    ``O(k + t)`` where ``t`` is the number of x-interval overlaps actually
    scanned — no sorting, no dynamic structures, exactly the formulation of
    section 2.2.
    """
    pairs: list[tuple] = []
    tests = 0
    i = j = 0
    n = len(rs)
    m = len(ss)
    append = pairs.append
    while i < n and j < m:
        r = rs[i]
        s = ss[j]
        if r.xl <= s.xl:
            # Sweep line stops at t = r: scan ss while its xl is within
            # r's x-extent.  x-overlap is implied (ss[k].xl >= r.xl), so
            # only the y-extents need testing.
            t_xu = r.xu
            t_yl = r.yl
            t_yu = r.yu
            k = j
            while k < m and ss[k].xl <= t_xu:
                c = ss[k]
                tests += 1
                if t_yl <= c.yu and c.yl <= t_yu:
                    append((r, c))
                k += 1
            i += 1
        else:
            t_xu = s.xu
            t_yl = s.yl
            t_yu = s.yu
            k = i
            while k < n and rs[k].xl <= t_xu:
                c = rs[k]
                tests += 1
                if t_yl <= c.yu and c.yl <= t_yu:
                    append((c, s))
                k += 1
            j += 1
    return SweepResult(pairs, tests)


def restrict_to_window(items: Sequence[T], window) -> list[T]:
    """Search-space restriction, tuning technique (i) of [BKS 93].

    For a qualifying node pair only the entries intersecting the
    *intersection* of the two node MBRs can contribute intersecting pairs;
    everything else is dropped before the sweep.  ``window`` is any object
    with ``xl, yl, xu, yu``; the input order (x-sortedness) is preserved.
    """
    w_xl = window.xl
    w_yl = window.yl
    w_xu = window.xu
    w_yu = window.yu
    return [
        e
        for e in items
        if e.xl <= w_xu and w_xl <= e.xu and e.yl <= w_yu and w_yl <= e.yu
    ]


def _xl(item) -> float:
    return item.xl
