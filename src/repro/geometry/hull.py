"""Convex hulls — conservative object approximations for a second filter.

[BKS 94] (*Multi-Step Processing of Spatial Joins*) shows that a second
filter step with better conservative approximations than the MBR removes
many false hits before the expensive exact test.  The convex hull is the
tightest convex conservative approximation; two objects can only intersect
if their hulls do.

``convex_hull`` is Andrew's monotone chain (O(n log n));
:class:`ConvexPolygon` tests hull/hull intersection with the separating
axis theorem (exact arithmetic on the cross products).
"""

from __future__ import annotations

from typing import Sequence

from .rect import Rect

__all__ = ["convex_hull", "ConvexPolygon"]


def convex_hull(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    """The convex hull of *points* in counter-clockwise order.

    Collinear points on the hull boundary are dropped.  Degenerate inputs
    return what they can: a single point or the two endpoints of a
    collinear set.
    """
    unique = sorted(set((float(x), float(y)) for x, y in points))
    if len(unique) <= 2:
        return unique

    def half(points_iter):
        chain: list[tuple[float, float]] = []
        for point in points_iter:
            while len(chain) >= 2 and _cross(chain[-2], chain[-1], point) <= 0:
                chain.pop()
            chain.append(point)
        return chain

    lower = half(unique)
    upper = half(reversed(unique))
    hull = lower[:-1] + upper[:-1]
    if not hull:  # all collinear
        return [unique[0], unique[-1]]
    return hull


def _cross(o, a, b) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


class ConvexPolygon:
    """A convex region given by its CCW hull vertices (1, 2 or >= 3)."""

    __slots__ = ("points", "_mbr")

    def __init__(self, points: Sequence[tuple[float, float]]):
        pts = [(float(x), float(y)) for x, y in points]
        if not pts:
            raise ValueError("a convex polygon needs at least one point")
        self.points = pts
        self._mbr = Rect.from_points(pts)

    @classmethod
    def of(cls, points: Sequence[tuple[float, float]]) -> "ConvexPolygon":
        """Hull of an arbitrary point set."""
        return cls(convex_hull(points))

    @property
    def mbr(self) -> Rect:
        return self._mbr

    def contains_point(self, x: float, y: float) -> bool:
        """Closed containment (boundary counts)."""
        pts = self.points
        if len(pts) == 1:
            return pts[0] == (x, y)
        if len(pts) == 2:
            return _on_segment(pts[0], pts[1], (x, y))
        for i in range(len(pts)):
            a = pts[i]
            b = pts[(i + 1) % len(pts)]
            if _cross(a, b, (x, y)) < 0:
                return False
        return True

    def intersects(self, other: "ConvexPolygon") -> bool:
        """Separating-axis test for two convex regions (closed semantics:
        touching hulls intersect)."""
        if not self._mbr.intersects(other._mbr):
            return False
        axes = _axes(self.points) + _axes(other.points)
        if not axes:
            # Two single points.
            return self.points[0] == other.points[0]
        return not any(
            _separates(nx, ny, self.points, other.points) for nx, ny in axes
        )

    def __repr__(self) -> str:
        return f"ConvexPolygon({len(self.points)} vertices)"


def _axes(pts: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Candidate separating axes contributed by one hull.

    Polygons contribute their edge normals; a 2-point hull (a segment)
    contributes its normal *and* its direction (two collinear but disjoint
    segments are only separated along the direction axis); a point
    contributes nothing.
    """
    count = len(pts)
    if count == 1:
        return []
    if count == 2:
        ax, ay = pts[0]
        bx, by = pts[1]
        return [(by - ay, ax - bx), (bx - ax, by - ay)]
    axes = []
    for i in range(count):
        ax, ay = pts[i]
        bx, by = pts[(i + 1) % count]
        axes.append((by - ay, ax - bx))
    return axes


def _separates(
    nx: float,
    ny: float,
    pts_a: list[tuple[float, float]],
    pts_b: list[tuple[float, float]],
) -> bool:
    """True when the axis (nx, ny) strictly separates the two point sets."""
    min_a = min(nx * x + ny * y for x, y in pts_a)
    max_a = max(nx * x + ny * y for x, y in pts_a)
    min_b = min(nx * x + ny * y for x, y in pts_b)
    max_b = max(nx * x + ny * y for x, y in pts_b)
    return max_a < min_b or max_b < min_a


def _on_segment(a, b, p) -> bool:
    if abs(_cross(a, b, p)) > 1e-12:
        return False
    return (
        min(a[0], b[0]) <= p[0] <= max(a[0], b[0])
        and min(a[1], b[1]) <= p[1] <= max(a[1], b[1])
    )
