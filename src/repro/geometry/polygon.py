"""Simple polygons for area features (administrative boundaries, forests).

The paper motivates the spatial join with "find all forests which are in a
city" — a polygon/polygon join.  *map 2* of the evaluation contains
administrative boundaries, which we model as simple (non-self-intersecting)
polygons.  Only the predicates needed by join refinement are provided:
point containment and polygon/polygon resp. polygon/polyline intersection.
"""

from __future__ import annotations

from typing import Sequence

from .polyline import Polyline
from .rect import Rect
from .segment import Segment

__all__ = ["Polygon"]


class Polygon:
    """A simple polygon given by its boundary vertices (implicitly closed)."""

    __slots__ = ("points", "_mbr")

    def __init__(self, points: Sequence[tuple[float, float]]):
        pts = [(float(x), float(y)) for x, y in points]
        if len(pts) < 3:
            raise ValueError("a polygon needs at least three vertices")
        if pts[0] == pts[-1]:
            pts = pts[:-1]
            if len(pts) < 3:
                raise ValueError("a polygon needs at least three distinct vertices")
        self.points = pts
        self._mbr = Rect.from_points(pts)

    @property
    def mbr(self) -> Rect:
        return self._mbr

    def boundary_segments(self) -> list[Segment]:
        pts = self.points
        segs = []
        for i in range(len(pts)):
            ax, ay = pts[i]
            bx, by = pts[(i + 1) % len(pts)]
            segs.append(Segment(ax, ay, bx, by))
        return segs

    def area(self) -> float:
        """Unsigned area (shoelace formula)."""
        pts = self.points
        acc = 0.0
        for i in range(len(pts)):
            x0, y0 = pts[i]
            x1, y1 = pts[(i + 1) % len(pts)]
            acc += x0 * y1 - x1 * y0
        return abs(acc) / 2.0

    def contains_point(self, x: float, y: float) -> bool:
        """Ray-casting point-in-polygon test; boundary points count as inside."""
        if not self._mbr.contains_point(x, y):
            return False
        # Boundary check first so the ray-cast parity cannot misclassify
        # points sitting exactly on an edge.
        for seg in self.boundary_segments():
            if _point_on_segment(seg, x, y):
                return True
        inside = False
        pts = self.points
        n = len(pts)
        j = n - 1
        for i in range(n):
            xi, yi = pts[i]
            xj, yj = pts[j]
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def intersects_polygon(self, other: "Polygon") -> bool:
        """True when interiors/boundaries share at least one point."""
        if not self._mbr.intersects(other._mbr):
            return False
        others = other.boundary_segments()
        for a in self.boundary_segments():
            for b in others:
                if a.intersects(b):
                    return True
        # No boundary crossing: one polygon may contain the other entirely.
        ox, oy = other.points[0]
        if self.contains_point(ox, oy):
            return True
        sx, sy = self.points[0]
        return other.contains_point(sx, sy)

    def intersects_polyline(self, line: Polyline) -> bool:
        """True when the polyline touches the polygon boundary or interior."""
        if not self._mbr.intersects(line.mbr):
            return False
        boundary = self.boundary_segments()
        for a in line.segments():
            for b in boundary:
                if a.intersects(b):
                    return True
        x, y = line.points[0]
        return self.contains_point(x, y)

    def __repr__(self) -> str:
        return f"Polygon({len(self.points)} vertices, mbr={self._mbr!r})"


def _point_on_segment(seg: Segment, x: float, y: float) -> bool:
    cross = (seg.bx - seg.ax) * (y - seg.ay) - (seg.by - seg.ay) * (x - seg.ax)
    if abs(cross) > 1e-12:
        return False
    return (
        min(seg.ax, seg.bx) <= x <= max(seg.ax, seg.bx)
        and min(seg.ay, seg.by) <= y <= max(seg.ay, seg.by)
    )
