"""``python -m repro.service`` — shorthand for the load generator."""

from .loadgen import main

if __name__ == "__main__":
    raise SystemExit(main())
