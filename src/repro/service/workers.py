"""Execution backend of the serving engine: forked workers or threads.

The process mode reuses the ``fork``-inherits-trees trick of
:mod:`repro.join.mp`: the tree registry is parked in a module-level
table (keyed per pool, so several live pools in one process never
clobber each other) immediately before the pool forks, and every worker
process inherits the in-memory R*-trees through copy-on-write — the
process-level analogue of the paper's shared virtual memory.  Only primitive arguments (tree names,
rect tuples, coordinates) travel to the workers and only oid tuples travel
back; no tree is ever pickled.

On platforms without ``fork`` (or with ``processes=0``) the pool degrades
to a thread executor over the very same execution functions — correct,
GIL-bound, and sufficient for tests and small deployments.

Every call through :meth:`WorkerPool.run` is **supervised**: it carries a
call id and an optional deadline, and it always terminates in a typed
outcome — the value, a :class:`~repro.service.resilience.WorkerError`
(worker exception, hard crash, deadline, pool restart), or a propagated
cancellation — never a silently pending future.  Fault directives from a
:class:`~repro.faults.injector.FaultInjector` ride along to the worker,
and the pool emits the ``SUP_CALL_*`` side of the resilience ledger.
:meth:`restart` re-forks the pool from the parent's tree registry (the
workers re-inherit every tree) and fails all in-flight calls so the
engine's retry layer re-enqueues them.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Mapping, Optional, Sequence

from ..faults import FaultDirective, FaultInjector, InjectedCrash, apply_directive
from ..geometry.rect import Rect
from ..join.sequential import sequential_join
from ..query.batch import multi_window_query
from ..rtree.query import nearest_neighbors, window_query
from ..trace import NULL_TRACER, EventKind, Tracer
from .resilience import WorkerError

__all__ = ["WorkerPool", "fork_available"]

#: Tree registries parked by the parent immediately before forking,
#: keyed per pool so several live pools in one process cannot clobber
#: each other: a replacement worker auto-forked after a crash re-reads
#: *its own* pool's entry, never another pool's.  Inherited by workers
#: through fork (copy-on-write); entries are dropped at pool close.
_WORK_TREES: dict[int, Mapping[str, object]] = {}
_POOL_KEYS = itertools.count(1)
#: Worker-side: which registry entry this worker's pool owns.
_POOL_KEY: Optional[int] = None


def _fork_init(pool_key: int) -> None:
    """Worker initializer: pin this worker to its pool's tree registry.

    Runs in every worker the pool forks — including replacements it
    auto-forks after a crash — so the binding survives worker churn.
    """
    global _POOL_KEY
    _POOL_KEY = pool_key


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# -- execution functions (run inside a worker process or thread) --------------
def _windows_on(trees, name: str, rects: Sequence[tuple]) -> list[tuple]:
    """One shared traversal answering a batch of window rects."""
    tree = trees[name]
    windows = [Rect(*r) for r in rects]
    answers = multi_window_query(tree, windows)
    return [tuple(sorted(e.oid for e in entries)) for entries in answers]


def _knn_on(trees, name: str, x: float, y: float, k: int) -> tuple:
    tree = trees[name]
    found = nearest_neighbors(tree, x, y, k=k) if tree.size else []
    return tuple((float(d), e.oid) for d, e in found)


def _join_on(
    trees, name_r: str, name_s: str, window: Optional[tuple]
) -> tuple:
    tree_r, tree_s = trees[name_r], trees[name_s]
    pairs = sequential_join(tree_r, tree_s).pairs
    return _window_filtered(tree_r, tree_s, pairs, window)


def _join_chunk_on(
    trees,
    name_r: str,
    name_s: str,
    window: Optional[tuple],
    index: int,
    n_chunks: int,
) -> tuple:
    """One chunk of a join split for resumable execution.

    The task list (phase 1 of the parallel join) is deterministic given
    the trees, so every worker — including one forked after a crash —
    computes identical chunk boundaries; the engine gathers the chunks
    and retries only the missing ones after a worker death.  Chunk 0
    falls back to the whole join when the trees cannot be task-split
    (unequal heights), the other chunks then return nothing.
    """
    from ..join.mp import join_subtrees
    from ..join.tasks import create_tasks

    tree_r, tree_s = trees[name_r], trees[name_s]
    try:
        tasks = create_tasks(tree_r, tree_s, min_tasks=n_chunks)
    except ValueError:
        tasks = None
    if not tasks:
        if index > 0:
            return ()
        return _join_on(trees, name_r, name_s, window)
    base, extra = divmod(len(tasks), n_chunks)
    start = index * base + min(index, extra)
    stop = start + base + (1 if index < extra else 0)
    pairs: list = []
    for task in tasks[start:stop]:
        pairs.extend(join_subtrees(task.node_r, task.node_s))
    return _window_filtered(tree_r, tree_s, pairs, window)


def _window_filtered(tree_r, tree_s, pairs, window: Optional[tuple]) -> tuple:
    if window is not None:
        rect = Rect(*window)
        keep_r = {e.oid for e in window_query(tree_r, rect)}
        keep_s = {e.oid for e in window_query(tree_s, rect)}
        pairs = [(r, s) for r, s in pairs if r in keep_r and s in keep_s]
    return tuple(sorted(pairs))


def _shard_join_on(
    trees,
    name_r: str,
    name_s: str,
    window: Optional[tuple],
    pmap,
    shard: int,
) -> tuple:
    """One shard's join contribution (sharded tier): the local filter
    pairs whose reference point *shard* owns under *pmap*.  The
    :class:`~repro.shard.partition.PartitionMap` is a small frozen value
    object of primitives, so it pickles into the fork cheaply — unlike
    trees, which never travel."""
    from ..shard.ops import shard_join_pairs  # lazy: shard imports service

    return shard_join_pairs(
        trees[name_r], trees[name_s], pmap, shard, window
    )


_EXEC_FNS = {
    "windows": _windows_on,
    "knn": _knn_on,
    "join": _join_on,
    "join_chunk": _join_chunk_on,
    "shard_join": _shard_join_on,
}


def _fork_call(kind: str, directive: Optional[FaultDirective], args: tuple):
    """Worker-side dispatch: apply any fault directive, then execute.

    Resolves the tree registry inherited at fork time.  A ``crash``
    directive kills this worker process outright (``os._exit``) — the
    parent observes a lost call, exactly like a real segfault.
    """
    if directive is not None:
        apply_directive(directive, hard_crash=True)
    return _EXEC_FNS[kind](_WORK_TREES[_POOL_KEY], *args)


def _inline_call(
    trees, kind: str, directive: Optional[FaultDirective], args: tuple
):
    """Thread-fallback dispatch: crashes surface as :class:`InjectedCrash`."""
    if directive is not None:
        apply_directive(directive, hard_crash=False)
    return _EXEC_FNS[kind](trees, *args)


class _InflightCall:
    """Parent-side record of one dispatched call (for the supervisor)."""

    __slots__ = ("call_id", "kind", "future", "deadline_at", "faulted")

    def __init__(self, call_id, kind, future, deadline_at, faulted):
        self.call_id = call_id
        self.kind = kind
        self.future = future
        self.deadline_at = deadline_at
        self.faulted = faulted


class WorkerPool:
    """Executes query work for the engine, off the event loop.

    ``processes > 0`` asks for that many forked workers; 0 (or a platform
    without ``fork``, with a warning) selects the thread fallback.
    ``injector`` enables fault injection on calls; ``tracer`` receives
    the ``SUP_CALL_*`` ledger.  ``default_timeout_s`` is the deadline a
    fork-mode call falls back to when :meth:`run` is given none: a
    hard-crashed fork never fires its ``apply_async`` callback, and a
    deadline-less in-flight entry is invisible to the supervisor's
    :meth:`expire_overdue` sweep — the call would pend forever (and
    ``Engine.stop`` would deadlock draining it).  Pass ``None`` only if
    you accept that risk; thread-mode calls always resolve and use the
    caller's timeout verbatim.
    """

    def __init__(
        self,
        trees: Mapping[str, object],
        processes: int = 0,
        *,
        injector: Optional[FaultInjector] = None,
        tracer: Tracer = NULL_TRACER,
        default_timeout_s: Optional[float] = 30.0,
        label: str = "",
        call_id_base: int = 0,
    ):
        if processes < 0:
            raise ValueError("processes must be >= 0")
        if default_timeout_s is not None and default_timeout_s <= 0:
            raise ValueError("default_timeout_s must be positive (or None)")
        if call_id_base < 0:
            raise ValueError("call_id_base must be >= 0")
        self.trees = dict(trees)
        self.requested_processes = processes
        self.injector = injector
        self.tracer = tracer
        self.default_timeout_s = default_timeout_s
        #: Names this pool in the ``SUP_*`` ledger.  A single-pool engine
        #: leaves it empty; the sharded tier labels each replica pool so
        #: per-pool restart counters stay distinguishable in one stream.
        self.label = label
        #: Start of this pool's call-id range.  Call ids key the
        #: fault/recovery ledgers (``FLT_INJECT_* .call`` vs
        #: ``SUP_CALL_*``), so pools sharing one tracer must carve out
        #: disjoint ranges or their ledger entries collide.
        self._call_seq = call_id_base
        self._pool = None
        self._pool_key: Optional[int] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self.forked = False
        self._inflight: dict[int, _InflightCall] = {}
        self.restarts = 0
        self.calls_failed = 0
        self.calls_abandoned = 0

    # -- life cycle -----------------------------------------------------------
    def start(self) -> None:
        processes = self.requested_processes
        if processes > 0 and not fork_available():
            warnings.warn(
                "the 'fork' start method is unavailable on this platform; "
                "the service worker pool falls back to threads",
                RuntimeWarning,
                stacklevel=2,
            )
            processes = 0
        if processes > 0:
            self._fork_pool(processes)
            self.forked = True
        else:
            threads = max(2, min(8, os.cpu_count() or 2))
            self._executor = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-service"
            )

    def _fork_pool(self, processes: int) -> None:
        # The registry entry must STAY parked for the pool's lifetime:
        # multiprocessing.Pool forks a replacement from the parent each
        # time a worker dies, and a replacement forked without the entry
        # would inherit no trees and fail every call it serves.  The
        # parent holds ``self.trees`` anyway, so this costs nothing.
        self._pool_key = next(_POOL_KEYS)
        _WORK_TREES[self._pool_key] = self.trees
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(
            processes, initializer=_fork_init, initargs=(self._pool_key,)
        )

    def _release_trees(self) -> None:
        if self._pool_key is not None:
            _WORK_TREES.pop(self._pool_key, None)
            self._pool_key = None

    def restart(self) -> int:
        """Tear down the forked pool and re-fork it from the tree registry.

        The fresh workers re-inherit every tree through fork, exactly as
        at :meth:`start`.  All in-flight calls fail with a typed
        :class:`WorkerError` so their awaiters re-enqueue through the
        engine's retry layer; returns the number of calls so failed.
        Thread mode has nothing to respawn and is a no-op.
        """
        if self._pool is None:
            return 0
        dead, self._pool = self._pool, None
        dead.terminate()
        dead.join()
        self._release_trees()
        self._fork_pool(self.requested_processes)
        self.restarts += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.SUP_POOL_RESTARTED,
                restarts=self.restarts,
                pool=self.label,
            )
        failed = 0
        for entry in list(self._inflight.values()):
            if not entry.future.done():
                entry.future.set_exception(
                    WorkerError(
                        "worker pool restarted with the call in flight",
                        cause_type="pool-restarted",
                        call_id=entry.call_id,
                        kind=entry.kind,
                    )
                )
                failed += 1
        return failed

    async def close(self) -> None:
        """Release the backend (blocking joins run off-loop).

        Uses ``terminate()`` rather than ``close()``: a worker that hard-
        crashed mid-call leaves its ``apply_async`` entry in the pool's
        result cache forever, and ``close()+join()`` spins on that cache
        never emptying.  The engine has already drained every awaited
        request by the time it closes the pool, so nothing of value is
        lost.
        """
        loop = asyncio.get_running_loop()
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            pool.terminate()
            await loop.run_in_executor(None, pool.join)
            self._release_trees()
        if self._executor is not None:
            executor = self._executor
            self._executor = None
            await loop.run_in_executor(None, partial(executor.shutdown, True))

    # -- health (what the supervisor polls) -----------------------------------
    def worker_pids(self) -> frozenset[int]:
        """PIDs of the currently live forked workers (empty in thread mode)."""
        pool = self._pool
        if pool is None:
            return frozenset()
        try:
            return frozenset(
                p.pid for p in pool._pool if p.pid is not None and p.is_alive()
            )
        except (AttributeError, OSError):  # pool mid-teardown
            return frozenset()

    def expire_overdue(self, grace_s: float = 0.0) -> int:
        """Fail every in-flight call whose deadline has passed.

        The belt to :meth:`run`'s ``timeout_s`` braces: normally the
        awaiter's own ``wait_for`` fires first, but a caller that
        dispatched without a timeout still gets its future resolved here
        when the supervisor sweeps.  Returns the number of calls failed.
        """
        now = time.monotonic()
        expired = 0
        for entry in list(self._inflight.values()):
            if (
                entry.deadline_at is not None
                and now > entry.deadline_at + grace_s
                and not entry.future.done()
            ):
                entry.future.set_exception(
                    WorkerError(
                        f"call {entry.call_id} ({entry.kind}) exceeded its "
                        f"deadline (supervisor sweep)",
                        cause_type="deadline",
                        call_id=entry.call_id,
                        kind=entry.kind,
                    )
                )
                expired += 1
        return expired

    @property
    def inflight_calls(self) -> int:
        return len(self._inflight)

    # -- submission -----------------------------------------------------------
    async def run(self, kind: str, *args, timeout_s: Optional[float] = None):
        """Run one supervised execution; awaitable from the event loop.

        Raises :class:`WorkerError` on any failure (worker exception,
        crash, deadline) — the future always resolves.  ``timeout_s``
        bounds this single attempt; retrying is the caller's policy.
        """
        if kind not in _EXEC_FNS:
            raise KeyError(f"unknown execution kind {kind!r}")
        if timeout_s is None and self._pool is not None:
            # Fork-mode calls always carry a deadline: a hard-crashed
            # worker never fires the apply_async callback, and without
            # a deadline neither the timer below nor the supervisor's
            # expire_overdue sweep could ever resolve the future.
            timeout_s = self.default_timeout_s
        loop = asyncio.get_running_loop()
        call_id = self._call_seq
        self._call_seq += 1
        directive = (
            self.injector.worker_directive(call_id)
            if self.injector is not None
            else None
        )
        future: asyncio.Future = loop.create_future()
        deadline_at = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        entry = _InflightCall(
            call_id, kind, future, deadline_at, directive is not None
        )
        self._inflight[call_id] = entry
        timer = None
        if timeout_s is not None:
            # A plain timer failing the future is much cheaper per call
            # than asyncio.wait_for (no wrapper coroutine, no cancellation
            # plumbing) — and this is the hot path of every request.
            def _expire() -> None:
                if not future.done():
                    future.set_exception(
                        WorkerError(
                            f"call {call_id} ({kind}) exceeded its "
                            f"{timeout_s}s deadline (crashed or hung worker)",
                            cause_type="deadline",
                            call_id=call_id,
                            kind=kind,
                        )
                    )

            timer = loop.call_later(timeout_s, _expire)
        try:
            self._dispatch(loop, kind, directive, args, call_id, future)
            value = await future
            if entry.faulted and self.tracer.enabled:
                # A faulted call that completed anyway (short hang, slow
                # I/O): close its ledger entry explicitly.
                self.tracer.emit(EventKind.SUP_CALL_OK, call=call_id)
            return value
        except WorkerError as exc:
            self.calls_failed += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.SUP_CALL_FAILED,
                    call=exc.call_id,
                    op=kind,
                    error=exc.cause_type,
                )
            raise
        except asyncio.CancelledError:
            self.calls_abandoned += 1
            if self.tracer.enabled:
                self.tracer.emit(EventKind.SUP_CALL_ABANDONED, call=call_id)
            raise
        finally:
            if timer is not None:
                timer.cancel()
            self._inflight.pop(call_id, None)

    def _dispatch(self, loop, kind, directive, args, call_id, future) -> None:
        if self._pool is not None:

            def _resolve(value, fut=future):
                loop.call_soon_threadsafe(_set_result, fut, value)

            def _fail(exc, fut=future, cid=call_id, knd=kind):
                # Always a typed WorkerError: whatever the worker raised
                # (or failed to pickle back) resolves the caller's future.
                if not isinstance(exc, WorkerError):
                    exc = WorkerError(
                        f"worker call {cid} ({knd}) failed: "
                        f"{type(exc).__name__}: {exc}",
                        cause_type=type(exc).__name__,
                        call_id=cid,
                        kind=knd,
                    )
                loop.call_soon_threadsafe(_set_exception, fut, exc)

            self._pool.apply_async(
                _fork_call,
                (kind, directive, tuple(args)),
                callback=_resolve,
                error_callback=_fail,
            )
            return
        if self._executor is None:
            raise RuntimeError("worker pool is not started")

        def _thread_fn(trees=self.trees, cid=call_id, knd=kind):
            try:
                return _inline_call(trees, knd, directive, args)
            except WorkerError:
                raise
            except BaseException as exc:
                raise WorkerError(
                    f"worker call {cid} ({knd}) failed: "
                    f"{type(exc).__name__}: {exc}",
                    cause_type=type(exc).__name__,
                    call_id=cid,
                    kind=knd,
                ) from exc

        thread_future = loop.run_in_executor(self._executor, _thread_fn)
        thread_future.add_done_callback(
            lambda tf, fut=future: _settle_from(tf, fut)
        )

    # -- convenience ----------------------------------------------------------
    async def windows(
        self, name: str, rects: Sequence[tuple],
        timeout_s: Optional[float] = None,
    ) -> list[tuple]:
        return await self.run("windows", name, list(rects), timeout_s=timeout_s)

    async def knn(
        self, name: str, x: float, y: float, k: int,
        timeout_s: Optional[float] = None,
    ) -> tuple:
        return await self.run("knn", name, x, y, k, timeout_s=timeout_s)

    async def join(
        self, name_r: str, name_s: str, window: Optional[tuple],
        timeout_s: Optional[float] = None,
    ) -> tuple:
        return await self.run(
            "join", name_r, name_s, window, timeout_s=timeout_s
        )

    def __repr__(self) -> str:
        mode = (
            f"fork:{self.requested_processes}" if self.forked else "threads"
        )
        return (
            f"<WorkerPool {mode} trees={sorted(self.trees)} "
            f"inflight={len(self._inflight)} restarts={self.restarts}>"
        )


def _set_result(fut: asyncio.Future, value) -> None:
    if not fut.done():
        fut.set_result(value)


def _set_exception(fut: asyncio.Future, exc) -> None:
    if not fut.done():
        fut.set_exception(exc)


def _settle_from(source: asyncio.Future, target: asyncio.Future) -> None:
    """Copy a thread-executor future's outcome onto the supervised future."""
    if target.done():
        source.exception()  # consume, avoid 'exception never retrieved'
        return
    if source.cancelled():
        target.cancel()
        return
    exc = source.exception()
    if exc is not None:
        target.set_exception(exc)
    else:
        target.set_result(source.result())
