"""Execution backend of the serving engine: forked workers or threads.

The process mode reuses the ``fork``-inherits-trees trick of
:mod:`repro.join.mp`: the tree registry is parked in a module global
immediately before the pool forks, so every worker process inherits the
in-memory R*-trees through copy-on-write — the process-level analogue of
the paper's shared virtual memory.  Only primitive arguments (tree names,
rect tuples, coordinates) travel to the workers and only oid tuples travel
back; no tree is ever pickled.

On platforms without ``fork`` (or with ``processes=0``) the pool degrades
to a thread executor over the very same execution functions — correct,
GIL-bound, and sufficient for tests and small deployments.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Mapping, Optional, Sequence, Tuple

from ..geometry.rect import Rect
from ..join.sequential import sequential_join
from ..query.batch import multi_window_query
from ..rtree.query import nearest_neighbors, window_query

__all__ = ["WorkerPool", "fork_available"]

#: Set by the parent immediately before forking; inherited by workers.
#: Reset to ``None`` as soon as the pool exists so the parent side does
#: not carry a second strong reference to every tree.
_WORK_TREES: Optional[Mapping[str, object]] = None


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# -- execution functions (run inside a worker process or thread) --------------
def _windows_on(trees, name: str, rects: Sequence[tuple]) -> list[tuple]:
    """One shared traversal answering a batch of window rects."""
    tree = trees[name]
    windows = [Rect(*r) for r in rects]
    answers = multi_window_query(tree, windows)
    return [tuple(sorted(e.oid for e in entries)) for entries in answers]


def _knn_on(trees, name: str, x: float, y: float, k: int) -> tuple:
    tree = trees[name]
    found = nearest_neighbors(tree, x, y, k=k) if tree.size else []
    return tuple((float(d), e.oid) for d, e in found)


def _join_on(
    trees, name_r: str, name_s: str, window: Optional[tuple]
) -> tuple:
    tree_r, tree_s = trees[name_r], trees[name_s]
    pairs = sequential_join(tree_r, tree_s).pairs
    if window is not None:
        rect = Rect(*window)
        keep_r = {e.oid for e in window_query(tree_r, rect)}
        keep_s = {e.oid for e in window_query(tree_s, rect)}
        pairs = [(r, s) for r, s in pairs if r in keep_r and s in keep_s]
    return tuple(sorted(pairs))


# Fork-side wrappers: resolve the registry inherited at fork time.
def _fork_windows(name, rects):
    return _windows_on(_WORK_TREES, name, rects)


def _fork_knn(name, x, y, k):
    return _knn_on(_WORK_TREES, name, x, y, k)


def _fork_join(name_r, name_s, window):
    return _join_on(_WORK_TREES, name_r, name_s, window)


_FORK_FNS = {"windows": _fork_windows, "knn": _fork_knn, "join": _fork_join}
_INLINE_FNS = {"windows": _windows_on, "knn": _knn_on, "join": _join_on}


class WorkerPool:
    """Executes query work for the engine, off the event loop.

    ``processes > 0`` asks for that many forked workers; 0 (or a platform
    without ``fork``, with a warning) selects the thread fallback.
    """

    def __init__(self, trees: Mapping[str, object], processes: int = 0):
        if processes < 0:
            raise ValueError("processes must be >= 0")
        self.trees = dict(trees)
        self.requested_processes = processes
        self._pool = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self.forked = False

    # -- life cycle -----------------------------------------------------------
    def start(self) -> None:
        global _WORK_TREES
        processes = self.requested_processes
        if processes > 0 and not fork_available():
            warnings.warn(
                "the 'fork' start method is unavailable on this platform; "
                "the service worker pool falls back to threads",
                RuntimeWarning,
                stacklevel=2,
            )
            processes = 0
        if processes > 0:
            _WORK_TREES = self.trees
            try:
                context = multiprocessing.get_context("fork")
                self._pool = context.Pool(processes)
            finally:
                # Workers inherited the registry at fork; drop the parent's
                # extra reference so the engine's copy is the only one.
                _WORK_TREES = None
            self.forked = True
        else:
            threads = max(2, min(8, os.cpu_count() or 2))
            self._executor = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-service"
            )

    async def close(self) -> None:
        """Drain and release the backend (blocking joins run off-loop)."""
        loop = asyncio.get_running_loop()
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            pool.close()
            await loop.run_in_executor(None, pool.join)
        if self._executor is not None:
            executor = self._executor
            self._executor = None
            await loop.run_in_executor(None, partial(executor.shutdown, True))

    # -- submission -----------------------------------------------------------
    async def run(self, kind: str, *args):
        """Run one execution function; awaitable from the event loop."""
        loop = asyncio.get_running_loop()
        if self._pool is not None:
            future: asyncio.Future = loop.create_future()

            def _resolve(value, fut=future):
                loop.call_soon_threadsafe(_set_result, fut, value)

            def _fail(exc, fut=future):
                loop.call_soon_threadsafe(_set_exception, fut, exc)

            self._pool.apply_async(
                _FORK_FNS[kind], args, callback=_resolve, error_callback=_fail
            )
            return await future
        if self._executor is None:
            raise RuntimeError("worker pool is not started")
        return await loop.run_in_executor(
            self._executor, partial(_INLINE_FNS[kind], self.trees, *args)
        )

    # -- convenience ----------------------------------------------------------
    async def windows(self, name: str, rects: Sequence[tuple]) -> list[tuple]:
        return await self.run("windows", name, list(rects))

    async def knn(self, name: str, x: float, y: float, k: int) -> tuple:
        return await self.run("knn", name, x, y, k)

    async def join(
        self, name_r: str, name_s: str, window: Optional[tuple]
    ) -> tuple:
        return await self.run("join", name_r, name_s, window)

    def __repr__(self) -> str:
        mode = (
            f"fork:{self.requested_processes}" if self.forked else "threads"
        )
        return f"<WorkerPool {mode} trees={sorted(self.trees)}>"


def _set_result(fut: asyncio.Future, value) -> None:
    if not fut.done():
        fut.set_result(value)


def _set_exception(fut: asyncio.Future, exc) -> None:
    if not fut.done():
        fut.set_exception(exc)
