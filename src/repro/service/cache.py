"""LRU + TTL result cache of the serving engine.

Keys are the canonicalised query identities of :mod:`repro.service.model`
(``Request.cache_key()``); values are the canonical result tuples, so a
hit is indistinguishable from a fresh execution by construction — the
differential test in ``tests/service`` asserts exactly that.

The cache keeps hit/miss/insert/eviction/expiration counters and, when
given a tracer, emits one ``SVC_CACHE_*`` event per transition so the
:class:`~repro.trace.checkers.ServiceAccountingChecker` can reconcile the
counters against the request ledger.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Hashable, Optional

from ..trace import NULL_TRACER, EventKind

__all__ = ["ResultCache", "MISS"]

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


class ResultCache:
    """Bounded mapping with least-recently-used eviction and optional TTL.

    ``capacity`` bounds the entry count (0 disables caching entirely);
    ``ttl_s`` is the time-to-live of an entry in seconds (``None`` means
    entries never expire).  ``clock`` is injectable for tests.

    ``keep_stale`` retains TTL-expired entries so a degraded mode can
    still serve them explicitly via :meth:`get_stale` — the
    circuit-breaker's serve-stale-on-open path.  A stale serve is
    *never* a plain hit: :meth:`get` treats an expired entry as a miss
    either way, and stale reads are counted and traced separately
    (``stale_hits``, ``SVC_CACHE_STALE_HIT``).

    Retention of stale entries is bounded: ``stale_ttl_s`` (default
    4 × ``ttl_s``) is how long past expiry an entry may linger before it
    is dropped — on any read that touches it, and amortizedly from the
    LRU front on :meth:`put` (expired entries never refresh their LRU
    position, so they drift there).  Without the bound, long-dead
    entries would squat on capacity and push out fresh ones under
    churn.  Stale removals count as ``stale_evictions``, distinct from
    ``evictions`` (which covers only live entries), so one insert never
    double-counts as both an expiration and an eviction in the
    accounting checker's ledger.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_s: Optional[float] = None,
        *,
        keep_stale: bool = False,
        stale_ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer=NULL_TRACER,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None)")
        if stale_ttl_s is not None and stale_ttl_s < 0:
            raise ValueError("stale_ttl_s must be >= 0 (or None)")
        if stale_ttl_s is None and keep_stale and ttl_s is not None:
            stale_ttl_s = 4.0 * ttl_s
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.keep_stale = keep_stale
        self.stale_ttl_s = stale_ttl_s
        self._clock = clock
        self.tracer = tracer
        #: key -> [value, expires_at, expiration_counted]
        self._entries: "OrderedDict[Hashable, list]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.expirations = 0
        self.stale_hits = 0
        self.stale_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- operations -----------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value for *key*, or :data:`MISS`.

        A TTL-expired entry counts as a miss (and as one expiration); a
        hit refreshes the entry's LRU position but not its TTL.
        """
        entry = self._entries.get(key)
        if entry is not None:
            value, expires_at, counted = entry
            now = self._clock()
            if expires_at is not None and now >= expires_at:
                if not counted:
                    self.expirations += 1
                    entry[2] = True
                    if self.tracer.enabled:
                        self.tracer.emit(
                            EventKind.SVC_CACHE_EXPIRE, key=repr(key)
                        )
                if not self.keep_stale:
                    del self._entries[key]
                elif self._dead(expires_at, now):
                    del self._entries[key]
                    self.stale_evictions += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                if self.tracer.enabled:
                    self.tracer.emit(EventKind.SVC_CACHE_HIT, key=repr(key))
                return value
        self.misses += 1
        if self.tracer.enabled:
            self.tracer.emit(EventKind.SVC_CACHE_MISS, key=repr(key))
        return MISS

    def get_stale(self, key: Hashable):
        """The cached value for *key* even if TTL-expired, or :data:`MISS`.

        The degraded read of the serve-stale-on-open-circuit path: it
        never refreshes LRU position or TTL, counts as a ``stale_hit``
        (not a hit) and emits ``SVC_CACHE_STALE_HIT`` so stale serves
        stay visible in the metrics.  An entry past the ``stale_ttl_s``
        retention bound is too old even for degraded serving: it is
        dropped and the read is a :data:`MISS`.
        """
        entry = self._entries.get(key)
        if entry is None:
            return MISS
        if entry[1] is not None and self._dead(entry[1], self._clock()):
            del self._entries[key]
            self.stale_evictions += 1
            return MISS
        self.stale_hits += 1
        if self.tracer.enabled:
            self.tracer.emit(EventKind.SVC_CACHE_STALE_HIT, key=repr(key))
        return entry[0]

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) *key*, evicting the LRU tail if over capacity."""
        if self.capacity == 0:
            return
        now = self._clock()
        expires_at = None if self.ttl_s is None else now + self.ttl_s
        if self.keep_stale and self.stale_ttl_s is not None:
            # Amortized purge: expired entries never refresh their LRU
            # position, so the dead ones pool at the front — drop every
            # leading entry past the retention bound before sizing.
            while self._entries:
                front_key = next(iter(self._entries))
                front = self._entries[front_key]
                if front[1] is None or not self._dead(front[1], now):
                    break
                del self._entries[front_key]
                self.stale_evictions += 1
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = [value, expires_at, False]
        self.inserts += 1
        if self.tracer.enabled:
            self.tracer.emit(EventKind.SVC_CACHE_INSERT, key=repr(key))
        while len(self._entries) > self.capacity:
            victim, entry = self._entries.popitem(last=False)
            if entry[2]:
                # Already counted as an expiration when first observed
                # stale; counting an eviction too would double-charge
                # the insert in the accounting checker's ledger.
                self.stale_evictions += 1
                continue
            self.evictions += 1
            if self.tracer.enabled:
                self.tracer.emit(EventKind.SVC_CACHE_EVICT, key=repr(victim))

    def _dead(self, expires_at: float, now: float) -> bool:
        """Expired longer ago than the stale retention bound allows."""
        return (
            self.stale_ttl_s is not None
            and now >= expires_at + self.stale_ttl_s
        )

    def clear(self) -> None:
        self._entries.clear()

    # -- reporting ------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "stale_hits": self.stale_hits,
            "stale_evictions": self.stale_evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )
