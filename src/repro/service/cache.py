"""LRU + TTL result cache of the serving engine.

Keys are the canonicalised query identities of :mod:`repro.service.model`
(``Request.cache_key()``); values are the canonical result tuples, so a
hit is indistinguishable from a fresh execution by construction — the
differential test in ``tests/service`` asserts exactly that.

The cache keeps hit/miss/insert/eviction/expiration counters and, when
given a tracer, emits one ``SVC_CACHE_*`` event per transition so the
:class:`~repro.trace.checkers.ServiceAccountingChecker` can reconcile the
counters against the request ledger.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Hashable, Optional

from ..trace import NULL_TRACER, EventKind

__all__ = ["ResultCache", "MISS"]

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


class ResultCache:
    """Bounded mapping with least-recently-used eviction and optional TTL.

    ``capacity`` bounds the entry count (0 disables caching entirely);
    ``ttl_s`` is the time-to-live of an entry in seconds (``None`` means
    entries never expire).  ``clock`` is injectable for tests.

    ``keep_stale`` retains TTL-expired entries (until LRU capacity
    evicts them) so a degraded mode can still serve them explicitly via
    :meth:`get_stale` — the circuit-breaker's serve-stale-on-open path.
    A stale serve is *never* a plain hit: :meth:`get` treats an expired
    entry as a miss either way, and stale reads are counted and traced
    separately (``stale_hits``, ``SVC_CACHE_STALE_HIT``).
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_s: Optional[float] = None,
        *,
        keep_stale: bool = False,
        clock: Callable[[], float] = time.monotonic,
        tracer=NULL_TRACER,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.keep_stale = keep_stale
        self._clock = clock
        self.tracer = tracer
        #: key -> [value, expires_at, expiration_counted]
        self._entries: "OrderedDict[Hashable, list]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.expirations = 0
        self.stale_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- operations -----------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value for *key*, or :data:`MISS`.

        A TTL-expired entry counts as a miss (and as one expiration); a
        hit refreshes the entry's LRU position but not its TTL.
        """
        entry = self._entries.get(key)
        if entry is not None:
            value, expires_at, counted = entry
            if expires_at is not None and self._clock() >= expires_at:
                if not counted:
                    self.expirations += 1
                    entry[2] = True
                    if self.tracer.enabled:
                        self.tracer.emit(
                            EventKind.SVC_CACHE_EXPIRE, key=repr(key)
                        )
                if not self.keep_stale:
                    del self._entries[key]
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                if self.tracer.enabled:
                    self.tracer.emit(EventKind.SVC_CACHE_HIT, key=repr(key))
                return value
        self.misses += 1
        if self.tracer.enabled:
            self.tracer.emit(EventKind.SVC_CACHE_MISS, key=repr(key))
        return MISS

    def get_stale(self, key: Hashable):
        """The cached value for *key* even if TTL-expired, or :data:`MISS`.

        The degraded read of the serve-stale-on-open-circuit path: it
        never refreshes LRU position or TTL, counts as a ``stale_hit``
        (not a hit) and emits ``SVC_CACHE_STALE_HIT`` so stale serves
        stay visible in the metrics.
        """
        entry = self._entries.get(key)
        if entry is None:
            return MISS
        self.stale_hits += 1
        if self.tracer.enabled:
            self.tracer.emit(EventKind.SVC_CACHE_STALE_HIT, key=repr(key))
        return entry[0]

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) *key*, evicting the LRU tail if over capacity."""
        if self.capacity == 0:
            return
        expires_at = None if self.ttl_s is None else self._clock() + self.ttl_s
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = [value, expires_at, False]
        self.inserts += 1
        if self.tracer.enabled:
            self.tracer.emit(EventKind.SVC_CACHE_INSERT, key=repr(key))
        while len(self._entries) > self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self.evictions += 1
            if self.tracer.enabled:
                self.tracer.emit(EventKind.SVC_CACHE_EVICT, key=repr(victim))

    def clear(self) -> None:
        self._entries.clear()

    # -- reporting ------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "stale_hits": self.stale_hits,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )
