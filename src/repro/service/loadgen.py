"""Load generator for the serving engine (``python -m repro.service.loadgen``).

Drives an :class:`~repro.service.engine.Engine` over the synthetic paper
maps with either arrival model of the serving literature:

* **closed loop** — ``--clients N`` clients, each issuing its next request
  the moment the previous response arrives (throughput-bound, measures
  the engine's capacity);
* **open loop** — Poisson arrivals at ``--rate R`` requests/second,
  independent of response times (latency-bound, measures behaviour under
  a fixed offered load, including admission-control rejections).

The request mix is mostly window queries (a configurable share of kNN,
optional periodic joins); a configurable *hot fraction* of requests is
drawn from a small set of popular windows so the result cache has
something to do.  The run prints a per-class latency/throughput report
and writes ``BENCH_service.json`` (via :func:`repro.bench.report_json`)
with the p50/p95/p99 latencies, throughput, admission counters, cache
counters and — with ``--compare-batching`` — the measured throughput gain
of micro-batching over the batch-size-1 baseline.

``--chaos`` turns the load test into a chaos run: the same workload is
driven twice, once healthy and once under a seeded
:class:`~repro.faults.plan.FaultPlan` (worker crashes, hangs, slow I/O),
with the full ``SVC_*``/``FLT_*``/``SUP_*`` event stream collected and
replayed through the service + resilience invariant checkers.  The run
**fails** (exit code 1) if any request is lost — submitted but never
given a terminal response — or any checker reports a violation; the
healthy-vs-faulted comparison is written to ``BENCH_chaos.json``.

``--shards K`` benchmarks the shared-nothing sharded tier
(:mod:`repro.shard`) instead of the single engine: throughput scaling
over the shard-count ladder up to K, hot-shard skew (``--skew
hotspot|zipf``) with and without per-shard replication, and a
crash-failover run that must complete every request through replica
re-dispatch; the ``SHD_*``/``LSE_*`` routing and lease ledgers are
checker-verified and the comparison lands in ``BENCH_shard.json``.

``--resume`` benchmarks the recoverable join instead of the serving
engine: the same journalled join is run healthy, under seeded task kills
(recovered throughput), and interrupted-then-resumed (journal replay
time); all three answers must equal the sequential oracle and the lease
ledger must reconcile, or the run exits 1.  The comparison is written to
``BENCH_recovery.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import time
from collections import Counter
from typing import Optional

from ..bench.render import heading, render_table, report_json
from ..datagen import build_tree, paper_maps
from ..faults import FaultPlan
from ..geometry.rect import Rect
from ..trace import ListSink, run_checkers, service_checkers
from .engine import Engine, EngineConfig
from .model import JoinRequest, KNNRequest, WindowRequest

__all__ = [
    "main",
    "run_load",
    "run_shard_load",
    "build_trees",
    "RequestFactory",
]


def build_trees(scale: float, seed: int, backend: str = "node"):
    """The two paper maps as a named-tree registry for the engine.

    ``backend="flat"`` serves the packed numpy backend instead: forked
    workers then inherit contiguous arrays (copy-on-write) rather than
    pointer trees, and every execution function dispatches transparently.
    """
    map1, map2 = paper_maps(scale=scale, seed=seed)
    if backend == "flat":
        from ..rtree.flat import build_flat_tree  # deferred: needs numpy

        trees = {"map1": build_flat_tree(map1), "map2": build_flat_tree(map2)}
    elif backend == "node":
        trees = {"map1": build_tree(map1), "map2": build_tree(map2)}
    else:
        raise ValueError(f"unknown backend {backend!r} (expected node|flat)")
    return trees, map1.region


class RequestFactory:
    """Seeded generator of the workload's request mix.

    ``skew`` shapes *where* the traffic lands, which only matters to the
    sharded tier (a uniform workload spreads evenly over any spatial
    partition; a skewed one concentrates on the shards owning the hot
    region):

    * ``uniform`` — query anchors drawn uniformly over the region;
    * ``hotspot`` — anchors drawn from a Gaussian around a fixed point
      (``hotspot_sigma`` of the region side), so one shard neighbourhood
      absorbs most of the load;
    * ``zipf`` — window queries drawn from the hot set with Zipf(``s``)
      popularity (rank-1 window dominates), the classic popularity skew.
    """

    def __init__(
        self,
        region,
        seed: int,
        *,
        knn_share: float = 0.1,
        join_share: float = 0.0,
        hot_fraction: float = 0.25,
        hot_set_size: int = 32,
        min_side: float = 0.02,
        max_side: float = 0.10,
        skew: str = "uniform",
        hotspot_sigma: float = 0.06,
        zipf_s: float = 1.1,
    ):
        if skew not in ("uniform", "hotspot", "zipf"):
            raise ValueError(
                f"unknown skew {skew!r} (expected uniform|hotspot|zipf)"
            )
        self.side = region.side
        self.knn_share = knn_share
        self.join_share = join_share
        self.hot_fraction = hot_fraction
        self.min_side = min_side
        self.max_side = max_side
        self.skew = skew
        self.hotspot_center = (0.31 * self.side, 0.63 * self.side)
        self.hotspot_sigma = hotspot_sigma * self.side
        weights = [1.0 / (rank + 1) ** zipf_s for rank in range(hot_set_size)]
        total = sum(weights)
        cum, acc = [], 0.0
        for w in weights:
            acc += w / total
            cum.append(acc)
        self._zipf_cum = cum
        hot_rng = random.Random(seed)
        self.hot_windows = [
            self._window(hot_rng) for _ in range(hot_set_size)
        ]

    def _point(self, rng: random.Random) -> tuple[float, float]:
        if self.skew == "hotspot":
            cx, cy = self.hotspot_center
            return (
                min(max(rng.gauss(cx, self.hotspot_sigma), 0.0), self.side),
                min(max(rng.gauss(cy, self.hotspot_sigma), 0.0), self.side),
            )
        return rng.uniform(0.0, self.side), rng.uniform(0.0, self.side)

    def _window(self, rng: random.Random) -> Rect:
        extent = rng.uniform(self.min_side, self.max_side) * self.side
        x, y = self._point(rng)
        x = min(x, self.side - extent)
        y = min(y, self.side - extent)
        return Rect(x, y, x + extent, y + extent)

    def _hot_window(self, rng: random.Random) -> Rect:
        if self.skew == "zipf":
            roll = rng.random()
            for rank, edge in enumerate(self._zipf_cum):
                if roll <= edge:
                    return self.hot_windows[rank]
        return rng.choice(self.hot_windows)

    def make(self, rng: random.Random):
        roll = rng.random()
        if roll < self.join_share:
            return JoinRequest("map1", "map2", window=self._window(rng))
        if roll < self.join_share + self.knn_share:
            x, y = self._point(rng)
            return KNNRequest(
                rng.choice(("map1", "map2")), x, y, rng.randint(1, 20)
            )
        tree = rng.choice(("map1", "map2"))
        hot_p = (
            max(self.hot_fraction, 0.8)
            if self.skew == "zipf"
            else self.hot_fraction
        )
        if rng.random() < hot_p:
            return WindowRequest(tree, self._hot_window(rng))
        return WindowRequest(tree, self._window(rng))


async def _drive(
    submit,
    factory: RequestFactory,
    *,
    duration_s: float,
    mode: str,
    clients: int,
    rate: float,
    seed: int,
    timeout_s: Optional[float],
) -> tuple[int, Counter, float]:
    """Drive *submit* (Engine or ShardRouter, same protocol) with the
    configured arrival model; returns (submitted, statuses, elapsed)."""
    statuses: Counter = Counter()
    submitted = 0
    wall_start = time.perf_counter()
    deadline = wall_start + duration_s

    async def issue(rng: random.Random) -> None:
        nonlocal submitted
        submitted += 1
        response = await submit(
            factory.make(rng),
            **({} if timeout_s is None else {"timeout": timeout_s}),
        )
        statuses[response.status.value] += 1

    if mode == "closed":

        async def client(index: int) -> None:
            rng = random.Random(seed * 7919 + index)
            while time.perf_counter() < deadline:
                await issue(rng)

        await asyncio.gather(*(client(i) for i in range(clients)))
    elif mode == "open":
        rng = random.Random(seed)
        tasks = []
        while time.perf_counter() < deadline:
            await asyncio.sleep(rng.expovariate(rate))
            tasks.append(asyncio.create_task(issue(random.Random(rng.random()))))
        if tasks:
            await asyncio.gather(*tasks)
    else:
        raise ValueError(f"unknown mode {mode!r} (closed|open)")

    return submitted, statuses, time.perf_counter() - wall_start


async def run_load(
    trees,
    region,
    *,
    duration_s: float,
    mode: str,
    clients: int,
    rate: float,
    seed: int,
    factory: Optional[RequestFactory] = None,
    config: Optional[EngineConfig] = None,
    timeout_s: Optional[float] = None,
    check_invariants: bool = False,
) -> dict:
    """One load-test run; returns the JSON-able summary.

    With ``check_invariants`` the whole event stream is collected and
    replayed through :func:`repro.trace.service_checkers` (request/cache
    accounting plus the resilience ledger); the verdicts land in the
    summary under ``"verdicts"``.
    """
    factory = factory or RequestFactory(region, seed)
    sink = ListSink() if check_invariants else None
    engine = Engine(
        trees,
        config or EngineConfig(),
        sinks=() if sink is None else (sink,),
    )
    await engine.start()
    submitted, statuses, elapsed = await _drive(
        engine.submit, factory,
        duration_s=duration_s, mode=mode, clients=clients, rate=rate,
        seed=seed, timeout_s=timeout_s,
    )
    await engine.stop()
    report = engine.metrics.report(elapsed)
    snapshot = engine.snapshot()
    verdicts = None
    if sink is not None:
        verdicts = [
            {
                "checker": v.checker,
                "ok": v.ok,
                "violation_count": v.violation_count,
                "violations": v.violations,
                "stats": v.stats,
            }
            for v in run_checkers(sink.events, service_checkers())
        ]
    return {
        "mode": mode,
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "clients": clients if mode == "closed" else None,
        "offered_rate_rps": rate if mode == "open" else None,
        "submitted": submitted,
        "statuses": dict(statuses),
        # every submit() returned a terminal Response; anything else is a
        # lost request — the chaos run's headline invariant
        "lost": submitted - sum(statuses.values()),
        "report": report,
        "cache": engine.cache.stats(),
        "queue_depth_max": report["queue_depth_max"],
        "resilience": {
            "breakers": snapshot["breakers"],
            "supervisor": snapshot["supervisor"],
            "pool": snapshot["pool"],
            "faults_injected": snapshot["faults_injected"],
        },
        "verdicts": verdicts,
    }


async def run_shard_load(
    datasets,
    region,
    *,
    duration_s: float,
    mode: str,
    clients: int,
    rate: float,
    seed: int,
    factory: Optional[RequestFactory] = None,
    config=None,
    timeout_s: Optional[float] = None,
    check_invariants: bool = False,
) -> dict:
    """One load-test run against the sharded tier (``repro.shard``).

    Same shape as :func:`run_load` — the :class:`~repro.shard.router.
    ShardRouter` speaks the Engine protocol — plus the router's
    per-shard serving counters under ``"shards"`` (routed sub-requests,
    rows, failovers, kNN prunes per shard: the hot-shard evidence).
    """
    from ..shard import ShardConfig, ShardRouter

    factory = factory or RequestFactory(region, seed)
    sink = ListSink() if check_invariants else None
    router = ShardRouter(
        datasets,
        config or ShardConfig(),
        sinks=() if sink is None else (sink,),
    )
    await router.start()
    submitted, statuses, elapsed = await _drive(
        router.submit, factory,
        duration_s=duration_s, mode=mode, clients=clients, rate=rate,
        seed=seed, timeout_s=timeout_s,
    )
    await router.stop()
    report = router.metrics.report(elapsed)
    snapshot = router.snapshot()
    verdicts = None
    if sink is not None:
        verdicts = [
            {
                "checker": v.checker,
                "ok": v.ok,
                "violation_count": v.violation_count,
                "violations": v.violations,
                "stats": v.stats,
            }
            for v in run_checkers(sink.events, service_checkers())
        ]
    return {
        "mode": mode,
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "clients": clients if mode == "closed" else None,
        "offered_rate_rps": rate if mode == "open" else None,
        "submitted": submitted,
        "statuses": dict(statuses),
        "lost": submitted - sum(statuses.values()),
        "report": report,
        "cache": router.cache.stats(),
        "queue_depth_max": report["queue_depth_max"],
        "partition": snapshot["partition"],
        "shards": snapshot["shards"],
        "resilience": {
            "supervisor": snapshot["supervisor"],
            "pool": snapshot["pool"],
            "faults_injected": snapshot["faults_injected"],
            "leases": snapshot["leases"],
            "ledger": snapshot["ledger"],
        },
        "verdicts": verdicts,
    }


def _print_summary(summary: dict) -> None:
    report = summary["report"]
    rows = []
    for name, stats in sorted(report["per_class"].items()):
        rows.append(
            {
                "class": name,
                "completed": stats["completed"],
                "rejected": stats["rejected"],
                "timeouts": stats["timeouts"],
                "cache hits": stats["cache_hits"],
                "p50 (ms)": 1e3 * (stats["p50_s"] or 0.0),
                "p95 (ms)": 1e3 * (stats["p95_s"] or 0.0),
                "p99 (ms)": 1e3 * (stats["p99_s"] or 0.0),
            }
        )
    print(
        render_table(
            rows,
            ["class", "completed", "rejected", "timeouts", "cache hits",
             "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        )
    )
    batches = report["batch_sizes"]
    cache = summary["cache"]
    print(
        f"\nthroughput: {report['throughput_rps']:.1f} req/s over "
        f"{summary['elapsed_s']:.2f}s   max in-flight: "
        f"{summary['queue_depth_max']}"
    )
    print(
        f"batches: {batches['batches']} "
        f"(mean size {batches['mean'] if batches['batches'] else 0:.2f}, "
        f"max {batches['max']})   cache: {cache['hits']} hits / "
        f"{cache['misses']} misses ({100 * cache['hit_rate']:.1f}%), "
        f"{cache['evictions']} evictions"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Load-test the repro.service engine and emit BENCH_service.json",
    )
    parser.add_argument("--duration", type=float, default=5.0, metavar="S")
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument("--clients", type=int, default=64,
                        help="closed-loop client count")
    parser.add_argument("--rate", type=float, default=300.0,
                        help="open-loop arrival rate (req/s)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="fraction of the paper's map sizes")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--backend",
        choices=("node", "flat"),
        default="node",
        help="index backend for the served trees (flat = packed numpy)",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="forked worker processes (0 = threads)")
    parser.add_argument("--knn-share", type=float, default=0.1)
    parser.add_argument("--join-share", type=float, default=0.0)
    parser.add_argument("--hot-fraction", type=float, default=0.25)
    parser.add_argument(
        "--skew",
        choices=("uniform", "hotspot", "zipf"),
        default="uniform",
        help="spatial/popularity skew of the request anchors",
    )
    parser.add_argument("--timeout", type=float, default=5.0)
    parser.add_argument("--max-inflight", type=int, default=128)
    parser.add_argument("--batch-window-ms", type=float, default=2.0)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--no-batching", action="store_true")
    parser.add_argument("--cache-capacity", type=int, default=1024,
                        help="0 disables the result cache")
    parser.add_argument("--cache-ttl", type=float, default=60.0)
    parser.add_argument(
        "--compare-batching",
        action="store_true",
        help="also run the same workload with batching off (cache disabled "
        "in both runs) and report the throughput gain",
    )
    chaos = parser.add_argument_group("chaos (fault injection)")
    chaos.add_argument(
        "--chaos",
        action="store_true",
        help="run the workload healthy AND under a seeded fault plan, "
        "verify the resilience invariants, write BENCH_chaos.json "
        "(exit 1 on lost requests or checker violations)",
    )
    chaos.add_argument("--crash-p", type=float, default=0.05,
                       help="per-worker-call crash probability")
    chaos.add_argument("--hang-p", type=float, default=0.02,
                       help="per-worker-call hang probability")
    chaos.add_argument("--hang-s", type=float, default=1.0,
                       help="injected hang duration (seconds)")
    chaos.add_argument("--slow-p", type=float, default=0.10,
                       help="per-call slow-I/O probability")
    chaos.add_argument("--slow-factor", type=float, default=4.0,
                       help="slow-I/O service-time multiplier")
    chaos.add_argument("--chaos-seed", type=int, default=1337,
                       help="fault plan seed (decisions are reproducible)")
    chaos.add_argument("--attempt-timeout", type=float, default=0.5,
                       help="per-attempt execution deadline under chaos (s)")
    shard = parser.add_argument_group("sharded tier (--shards)")
    shard.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="K",
        help="benchmark the sharded tier at K shards instead of the "
        "engine: throughput scaling over the K ladder, hot-shard skew "
        "with and without replication, and a crash-failover run — "
        "writes BENCH_shard.json (exit 1 on lost requests or checker "
        "violations)",
    )
    shard.add_argument("--shard-mode", choices=("grid", "zrange"),
                       default="grid", help="spatial partitioning mode")
    shard.add_argument("--replicas", type=int, default=2,
                       help="replica pools per shard in the replicated arms")
    recovery = parser.add_argument_group("recovery (--resume)")
    recovery.add_argument(
        "--resume",
        action="store_true",
        help="benchmark the journalled fault-tolerant join: healthy vs "
        "task-kill chaos vs interrupt-then-resume, write "
        "BENCH_recovery.json (exit 1 on a wrong answer or ledger "
        "violation)",
    )
    recovery.add_argument("--kill-p", type=float, default=0.15,
                          help="per-task kill probability in the chaos arm")
    recovery.add_argument("--lease-s", type=float, default=2.0,
                          help="chunk lease deadline (seconds)")
    args = parser.parse_args(argv)

    if args.resume:
        return _recovery_main(args)
    if args.shards:
        return _shard_main(args)

    def engine_config(
        batching: bool,
        cache_capacity: int,
        faults: Optional[FaultPlan] = None,
    ) -> EngineConfig:
        return EngineConfig(
            workers=args.workers,
            max_inflight=args.max_inflight,
            default_timeout_s=args.timeout,
            batching=batching,
            batch_window_s=args.batch_window_ms / 1e3,
            max_batch=args.max_batch,
            cache_capacity=cache_capacity,
            cache_ttl_s=args.cache_ttl,
            attempt_timeout_s=args.attempt_timeout if faults else 2.0,
            faults=faults,
            seed=args.seed,
        )

    print(
        f"building workload (scale={args.scale}, seed={args.seed}) ...",
        flush=True,
    )
    trees, region = build_trees(args.scale, args.seed, backend=args.backend)
    factory = RequestFactory(
        region,
        args.seed,
        knn_share=args.knn_share,
        join_share=args.join_share,
        hot_fraction=args.hot_fraction,
        skew=args.skew,
    )

    def run(
        batching: bool,
        cache_capacity: int,
        duration: float,
        faults: Optional[FaultPlan] = None,
        check_invariants: bool = False,
    ) -> dict:
        return asyncio.run(
            run_load(
                trees,
                region,
                duration_s=duration,
                mode=args.mode,
                clients=args.clients,
                rate=args.rate,
                seed=args.seed,
                factory=factory,
                config=engine_config(batching, cache_capacity, faults),
                check_invariants=check_invariants,
            )
        )

    if args.chaos:
        return _chaos_main(args, run)

    wall_start = time.perf_counter()
    print(
        heading(
            f"loadgen {args.mode} loop — {args.duration}s, "
            f"{'batching' if not args.no_batching else 'no batching'}, "
            f"workers={args.workers}"
        )
    )
    summary = run(not args.no_batching, args.cache_capacity, args.duration)
    _print_summary(summary)

    comparison = None
    if args.compare_batching:
        # Cache off in both arms so the gain isolates the batching effect.
        half = max(1.0, args.duration / 2)
        print(heading("batching comparison (cache off)"))
        unbatched = run(False, 0, half)
        batched = run(True, 0, half)
        gain = (
            batched["report"]["throughput_rps"]
            / unbatched["report"]["throughput_rps"]
            if unbatched["report"]["throughput_rps"]
            else float("nan")
        )
        comparison = {
            "throughput_rps_unbatched": unbatched["report"]["throughput_rps"],
            "throughput_rps_batched": batched["report"]["throughput_rps"],
            "gain": gain,
            "duration_s": half,
        }
        print(
            f"batch-size-1: {comparison['throughput_rps_unbatched']:.1f} req/s"
            f"   micro-batched: {comparison['throughput_rps_batched']:.1f} "
            f"req/s   gain: {gain:.2f}x"
        )

    latency = summary["report"]["latency"]
    payload = {
        "bench": "service",
        "config": {
            "mode": args.mode,
            "duration_s": args.duration,
            "clients": args.clients,
            "rate": args.rate,
            "seed": args.seed,
            "workers": args.workers,
            "batching": not args.no_batching,
            "batch_window_ms": args.batch_window_ms,
            "max_batch": args.max_batch,
            "max_inflight": args.max_inflight,
            "timeout_s": args.timeout,
            "cache_capacity": args.cache_capacity,
            "cache_ttl_s": args.cache_ttl,
            "knn_share": args.knn_share,
            "join_share": args.join_share,
            "hot_fraction": args.hot_fraction,
        },
        "scale": args.scale,
        "wall_time_s": time.perf_counter() - wall_start,
        "latency_p50_s": latency["p50_s"],
        "latency_p95_s": latency["p95_s"],
        "latency_p99_s": latency["p99_s"],
        "throughput_rps": summary["report"]["throughput_rps"],
        "run": summary,
        "batching_comparison": comparison,
    }
    path = report_json("service", payload)
    print(f"\nwrote {path}")
    return 0


def _chaos_main(args, run) -> int:
    """The ``--chaos`` arm: healthy baseline vs seeded-fault run."""
    plan = FaultPlan(
        seed=args.chaos_seed,
        worker_crash_p=args.crash_p,
        worker_hang_p=args.hang_p,
        hang_s=args.hang_s,
        slow_io_p=args.slow_p,
        slow_io_factor=args.slow_factor,
    )
    wall_start = time.perf_counter()
    print(heading(f"chaos baseline (healthy) — {args.duration}s"))
    healthy = run(not args.no_batching, args.cache_capacity, args.duration,
                  None, True)
    _print_summary(healthy)
    print(heading(
        f"chaos run — crash_p={plan.worker_crash_p} "
        f"hang_p={plan.worker_hang_p} slow_p={plan.slow_io_p}x"
        f"{plan.slow_io_factor:g} seed={plan.seed}"
    ))
    faulted = run(not args.no_batching, args.cache_capacity, args.duration,
                  plan, True)
    _print_summary(faulted)

    failures: list[str] = []
    for name, summary in (("healthy", healthy), ("faulted", faulted)):
        if summary["lost"]:
            failures.append(
                f"{name} run lost {summary['lost']} request(s) "
                f"(submitted but no terminal response)"
            )
        for verdict in summary["verdicts"]:
            if not verdict["ok"]:
                failures.append(
                    f"{name} run: checker {verdict['checker']} reported "
                    f"{verdict['violation_count']} violation(s): "
                    f"{verdict['violations'][:3]}"
                )

    resilience = faulted["resilience"]
    print(
        f"\nfaults injected: {resilience['faults_injected']}   "
        f"pool: {resilience['pool']}   supervisor: {resilience['supervisor']}"
    )
    healthy_tp = healthy["report"]["throughput_rps"]
    faulted_tp = faulted["report"]["throughput_rps"]
    print(
        f"throughput healthy {healthy_tp:.1f} req/s -> faulted "
        f"{faulted_tp:.1f} req/s   p99 "
        f"{1e3 * healthy['report']['latency']['p99_s']:.1f}ms -> "
        f"{1e3 * faulted['report']['latency']['p99_s']:.1f}ms"
    )

    payload = {
        "bench": "chaos",
        "config": {
            "mode": args.mode,
            "duration_s": args.duration,
            "clients": args.clients,
            "rate": args.rate,
            "seed": args.seed,
            "workers": args.workers,
            "timeout_s": args.timeout,
            "attempt_timeout_s": args.attempt_timeout,
            "fault_plan": {
                "seed": plan.seed,
                "worker_crash_p": plan.worker_crash_p,
                "worker_hang_p": plan.worker_hang_p,
                "hang_s": plan.hang_s,
                "slow_io_p": plan.slow_io_p,
                "slow_io_factor": plan.slow_io_factor,
            },
        },
        "scale": args.scale,
        "wall_time_s": time.perf_counter() - wall_start,
        "healthy": healthy,
        "faulted": faulted,
        "comparison": {
            "throughput_rps_healthy": healthy_tp,
            "throughput_rps_faulted": faulted_tp,
            "throughput_retained": (
                faulted_tp / healthy_tp if healthy_tp else float("nan")
            ),
            "p99_s_healthy": healthy["report"]["latency"]["p99_s"],
            "p99_s_faulted": faulted["report"]["latency"]["p99_s"],
            "lost_healthy": healthy["lost"],
            "lost_faulted": faulted["lost"],
        },
        "failures": failures,
        "ok": not failures,
    }
    path = report_json("chaos", payload)
    print(f"\nwrote {path}")
    if failures:
        for failure in failures:
            print(f"CHAOS FAILURE: {failure}")
        return 1
    print("chaos invariants hold: no lost requests, all checkers green")
    return 0


def _shard_main(args) -> int:
    """The ``--shards K`` arm: benchmark the sharded serving tier.

    Three sections, one BENCH_shard.json:

    * **scaling** — the same uniform workload over the shard-count
      ladder up to K (throughput vs K, cache off so the fan-out is
      what's measured);
    * **skew** — a hotspot workload at K shards, unreplicated vs
      R replicas per shard: the per-shard routed counters show the hot
      shard, the replicated arm splits its load across replica pools;
    * **failover** — the workload under seeded worker crashes with
      replicas: every request must still complete (zero lost) through
      lease-expiry + replica re-dispatch, with every checker green.
    """
    from ..shard import ShardConfig

    print(
        f"building workload (scale={args.scale}, seed={args.seed}) ...",
        flush=True,
    )
    map1, map2 = paper_maps(scale=args.scale, seed=args.seed)
    datasets = {"map1": map1.items(), "map2": map2.items()}
    region = map1.region

    def shard_config(k, replicas, faults=None):
        return ShardConfig(
            shards=k,
            mode=args.shard_mode,
            replicas=replicas,
            backend=args.backend,
            workers=args.workers,
            max_inflight=args.max_inflight,
            default_timeout_s=args.timeout,
            attempt_timeout_s=args.attempt_timeout if faults else 2.0,
            cache_capacity=0,  # measure routing + fan-out, not the cache
            faults=faults,
        )

    def run_arm(k, replicas, duration, skew, faults=None):
        factory = RequestFactory(
            region,
            args.seed,
            knn_share=args.knn_share,
            join_share=args.join_share,
            hot_fraction=args.hot_fraction,
            skew=skew,
        )
        return asyncio.run(
            run_shard_load(
                datasets,
                region,
                duration_s=duration,
                mode=args.mode,
                clients=args.clients,
                rate=args.rate,
                seed=args.seed,
                factory=factory,
                config=shard_config(k, replicas, faults),
                check_invariants=True,
            )
        )

    failures: list[str] = []

    def audit(name: str, summary: dict) -> None:
        if summary["lost"]:
            failures.append(
                f"{name}: lost {summary['lost']} request(s) "
                f"(submitted but no terminal response)"
            )
        for verdict in summary["verdicts"]:
            if not verdict["ok"]:
                failures.append(
                    f"{name}: checker {verdict['checker']} reported "
                    f"{verdict['violation_count']} violation(s): "
                    f"{verdict['violations'][:3]}"
                )

    wall_start = time.perf_counter()
    section_s = max(1.0, args.duration / 3)

    ladder = sorted({1, 2, args.shards} | {args.shards // 2})
    ladder = [k for k in ladder if 1 <= k <= args.shards]
    scaling = []
    for k in ladder:
        print(heading(
            f"shard scaling — K={k} ({args.shard_mode}, "
            f"{args.backend} backend, {section_s:g}s)"
        ))
        summary = run_arm(k, 1, section_s, "uniform")
        _print_summary(summary)
        audit(f"scaling K={k}", summary)
        scaling.append({
            "shards": k,
            "throughput_rps": summary["report"]["throughput_rps"],
            "p99_s": summary["report"]["latency"]["p99_s"],
            "lost": summary["lost"],
            "per_shard": summary["shards"],
        })

    skew_mode = args.skew if args.skew != "uniform" else "hotspot"
    replicas = max(2, args.replicas)
    skew_arms = {}
    for label, r in (("unreplicated", 1), ("replicated", replicas)):
        print(heading(
            f"hot-shard skew — {skew_mode}, K={args.shards}, "
            f"replicas={r} ({section_s:g}s)"
        ))
        summary = run_arm(args.shards, r, section_s, skew_mode)
        _print_summary(summary)
        audit(f"skew {label}", summary)
        routed = {
            s: stats["subrequests"]
            for s, stats in summary["shards"].items()
        }
        hottest = max(routed, key=routed.get) if routed else None
        total_routed = sum(routed.values())
        print(
            f"per-shard sub-requests: {routed}   hottest: shard {hottest} "
            f"({100 * routed[hottest] / total_routed:.0f}% of "
            f"{total_routed})" if total_routed else "no sub-requests routed"
        )
        skew_arms[label] = {
            "replicas": r,
            "skew": skew_mode,
            "throughput_rps": summary["report"]["throughput_rps"],
            "p99_s": summary["report"]["latency"]["p99_s"],
            "per_shard_subrequests": routed,
            "hottest_shard": hottest,
            "hottest_share": (
                routed[hottest] / total_routed if total_routed else None
            ),
            "lost": summary["lost"],
        }

    plan = FaultPlan(seed=args.chaos_seed, worker_crash_p=args.crash_p)
    print(heading(
        f"failover — crash_p={plan.worker_crash_p}, K={args.shards}, "
        f"replicas={replicas}, seed={plan.seed} ({section_s:g}s)"
    ))
    faulted = run_arm(args.shards, replicas, section_s, "uniform", plan)
    _print_summary(faulted)
    audit("failover", faulted)
    failovers = sum(s["failovers"] for s in faulted["shards"].values())
    resilience = faulted["resilience"]
    print(
        f"failovers: {failovers}   faults: {resilience['faults_injected']}"
        f"   leases: {resilience['leases']}"
    )

    payload = {
        "bench": "shard",
        "config": {
            "mode": args.mode,
            "duration_s": args.duration,
            "clients": args.clients,
            "rate": args.rate,
            "seed": args.seed,
            "workers": args.workers,
            "backend": args.backend,
            "shards": args.shards,
            "shard_mode": args.shard_mode,
            "replicas": replicas,
            "skew": skew_mode,
            "crash_p": plan.worker_crash_p,
            "chaos_seed": plan.seed,
            "knn_share": args.knn_share,
            "join_share": args.join_share,
        },
        "scale": args.scale,
        "wall_time_s": time.perf_counter() - wall_start,
        "scaling": scaling,
        "skew": skew_arms,
        "failover": {
            "crash_p": plan.worker_crash_p,
            "throughput_rps": faulted["report"]["throughput_rps"],
            "lost": faulted["lost"],
            "failovers": failovers,
            "resilience": resilience,
            "statuses": faulted["statuses"],
        },
        "failures": failures,
        "ok": not failures,
    }
    path = report_json("shard", payload)
    print(f"\nwrote {path}")
    if failures:
        for failure in failures:
            print(f"SHARD FAILURE: {failure}")
        return 1
    print(
        "shard invariants hold: no lost requests, routing/lease/service "
        "checkers green across every arm"
    )
    return 0


def _recovery_main(args) -> int:
    """The ``--resume`` arm: benchmark the journalled fault-tolerant join.

    Three runs of the same join: healthy (baseline throughput), under
    seeded task kills (recovered throughput — every killed chunk is
    redispatched) and interrupted-then-resumed (replay time — committed
    chunks come back from the journal, only orphans re-run).
    """
    import tempfile

    from ..join import sequential_join
    from ..join.parallel import prepare_trees
    from ..recovery import (
        JoinInterrupted,
        RecoveryConfig,
        resume_join,
        run_recoverable_join,
    )
    from ..trace import ListSink, Tracer, recovery_checkers, run_checkers

    processes = max(2, args.workers)
    print(
        f"building workload (scale={args.scale}, seed={args.seed}) ...",
        flush=True,
    )
    map1, map2 = paper_maps(scale=args.scale, seed=args.seed)
    tree_r, tree_s = build_tree(map1), build_tree(map2)
    prepare_trees(tree_r, tree_s)
    oracle = sorted(sequential_join(tree_r, tree_s).pairs)

    def config(journal, **extra):
        return RecoveryConfig(
            lease_s=args.lease_s,
            heartbeat_s=args.lease_s / 4,
            sweep_s=0.05,
            journal_path=journal,
            **extra,
        )

    failures: list[str] = []
    wall_start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="loadgen-recovery-") as tmp:
        print(heading(f"recoverable join — healthy ({processes} workers)"))
        t0 = time.perf_counter()
        healthy = run_recoverable_join(
            tree_r, tree_s, journal_path=f"{tmp}/healthy.jnl",
            processes=processes, recovery=config(f"{tmp}/healthy.jnl"),
        )
        healthy_s = time.perf_counter() - t0
        print(
            f"{len(healthy.pairs)} pairs in {healthy_s:.2f}s "
            f"({healthy.stats['chunks']} chunks)"
        )
        if sorted(healthy.pairs) != oracle:
            failures.append("healthy run diverged from the sequential oracle")

        plan = FaultPlan(seed=args.chaos_seed, task_kill_p=args.kill_p)
        print(heading(
            f"recoverable join — task-kill chaos "
            f"(kill_p={args.kill_p}, seed={args.chaos_seed})"
        ))
        sink = ListSink()
        t0 = time.perf_counter()
        chaos = run_recoverable_join(
            tree_r, tree_s, journal_path=f"{tmp}/chaos.jnl",
            processes=processes, recovery=config(f"{tmp}/chaos.jnl"),
            faults=plan, tracer=Tracer(sinks=[sink]),
        )
        chaos_s = time.perf_counter() - t0
        kills = chaos.stats.get("fault_counts", {}).get("task_kills", 0)
        print(
            f"{len(chaos.pairs)} pairs in {chaos_s:.2f}s — {kills} worker "
            f"kill(s), {chaos.stats['redispatches']} redispatch(es)"
        )
        if sorted(chaos.pairs) != oracle:
            failures.append("chaos run diverged from the sequential oracle")
        for verdict in run_checkers(sink.events, recovery_checkers()):
            if not verdict.ok:
                failures.append(
                    f"chaos run: checker {verdict.checker} reported "
                    f"{verdict.violation_count} violation(s): "
                    f"{verdict.violations[:3]}"
                )

        stop_after = max(1, healthy.stats["chunks"] // 2)
        print(heading(
            f"recoverable join — interrupt after {stop_after} "
            f"commit(s), then resume"
        ))
        journal = f"{tmp}/resume.jnl"
        try:
            run_recoverable_join(
                tree_r, tree_s, journal_path=journal, processes=processes,
                recovery=config(journal, stop_after_commits=stop_after),
            )
            failures.append("stop_after_commits never interrupted the join")
            replay_s = float("nan")
            resumed = healthy
        except JoinInterrupted as exc:
            print(f"interrupted: {exc}")
            t0 = time.perf_counter()
            resumed = resume_join(
                journal, tree_r, tree_s, processes=processes,
                recovery=config(journal),
            )
            replay_s = time.perf_counter() - t0
            print(
                f"resumed in {replay_s:.2f}s — {resumed.replayed_chunks} "
                f"chunk(s) replayed from the journal, "
                f"{resumed.rerun_chunks} re-run"
            )
            if sorted(resumed.pairs) != oracle:
                failures.append(
                    "resumed run diverged from the sequential oracle"
                )
            if not resumed.complete:
                failures.append("resumed run did not cover every chunk")
            if resumed.replayed_chunks < stop_after:
                failures.append(
                    f"resume replayed {resumed.replayed_chunks} chunk(s) "
                    f"but {stop_after} were committed before the interrupt"
                )

    payload = {
        "bench": "recovery",
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "processes": processes,
            "lease_s": args.lease_s,
            "kill_p": args.kill_p,
            "chaos_seed": args.chaos_seed,
        },
        "oracle_pairs": len(oracle),
        "wall_time_s": time.perf_counter() - wall_start,
        "healthy": {
            "time_s": healthy_s,
            "throughput_pairs_per_s": (
                len(healthy.pairs) / healthy_s if healthy_s else float("nan")
            ),
            "stats": healthy.stats,
        },
        "chaos": {
            "time_s": chaos_s,
            "recovered_throughput_pairs_per_s": (
                len(chaos.pairs) / chaos_s if chaos_s else float("nan")
            ),
            "throughput_retained": (
                healthy_s / chaos_s if chaos_s else float("nan")
            ),
            "task_kills": kills,
            "stats": chaos.stats,
        },
        "resume": {
            "stop_after_commits": stop_after,
            "replay_time_s": replay_s,
            "replayed_chunks": resumed.replayed_chunks,
            "rerun_chunks": resumed.rerun_chunks,
            "stats": resumed.stats,
        },
        "failures": failures,
        "ok": not failures,
    }
    path = report_json("recovery", payload)
    print(f"\nwrote {path}")
    if failures:
        for failure in failures:
            print(f"RECOVERY FAILURE: {failure}")
        return 1
    print(
        "recovery invariants hold: exact answers, ledger reconciled, "
        "resume replayed every committed chunk"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
