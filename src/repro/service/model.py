"""Typed requests and responses of the serving engine.

Three request classes mirror the operations the paper's future-work
section names for a parallel spatial query framework: **window** queries,
**k-nearest-neighbour** queries, and the **spatial join** itself.  Each
request is an immutable dataclass naming the pre-built tree(s) it runs
against; each produces a :class:`Response` carrying a terminal
:class:`Status`, the (canonically ordered) result value and bookkeeping
the metrics layer and the tests consume.

Result values are canonical so that cached and uncached executions are
*comparable by equality*: window results are sorted oid tuples, kNN
results are ``(distance, oid)`` tuples in ascending order and join results
are sorted oid-pair tuples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from ..geometry.rect import Rect

__all__ = [
    "RequestClass",
    "Status",
    "WindowRequest",
    "KNNRequest",
    "JoinRequest",
    "Request",
    "Response",
    "canonical_rect",
]

#: Decimal places query coordinates are rounded to when forming cache
#: keys; fine enough that distinct windows stay distinct at any realistic
#: map scale, coarse enough that float noise from different clients
#: producing "the same" window still hits.
CANONICAL_DIGITS = 9


class RequestClass(str, enum.Enum):
    """Admission-control class of a request."""

    WINDOW = "window"
    KNN = "knn"
    JOIN = "join"


class Status(str, enum.Enum):
    """Terminal outcome of one request."""

    OK = "ok"
    REJECTED = "rejected"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"
    ERROR = "error"
    #: Admitted but deliberately dropped by a degraded mode (circuit
    #: open, no stale cache entry to fall back on) — a 503, not a 500.
    SHED = "shed"


def canonical_rect(rect) -> Tuple[float, float, float, float]:
    """A hashable, float-stable key for a query rectangle.

    Accepts anything exposing ``xl/yl/xu/yu`` (a :class:`Rect`, an R-tree
    entry) or a 4-tuple; orders the corners and rounds the coordinates so
    equal-up-to-noise windows share a cache line.
    """
    if isinstance(rect, tuple):
        xl, yl, xu, yu = rect
    else:
        xl, yl, xu, yu = rect.xl, rect.yl, rect.xu, rect.yu
    if xu < xl:
        xl, xu = xu, xl
    if yu < yl:
        yl, yu = yu, yl
    # round() normalises -0.0 noise too: -0.0 + 0 == 0.0
    return (
        round(xl, CANONICAL_DIGITS) + 0.0,
        round(yl, CANONICAL_DIGITS) + 0.0,
        round(xu, CANONICAL_DIGITS) + 0.0,
        round(yu, CANONICAL_DIGITS) + 0.0,
    )


@dataclass(frozen=True)
class WindowRequest:
    """All objects of *tree* whose MBR intersects *window*."""

    tree: str
    window: Rect
    cacheable: bool = True

    cls = RequestClass.WINDOW

    def cache_key(self) -> Hashable:
        return ("window", self.tree, canonical_rect(self.window))


@dataclass(frozen=True)
class KNNRequest:
    """The *k* objects of *tree* nearest to ``(x, y)``."""

    tree: str
    x: float
    y: float
    k: int
    cacheable: bool = True

    cls = RequestClass.KNN

    def cache_key(self) -> Hashable:
        return (
            "knn",
            self.tree,
            round(float(self.x), CANONICAL_DIGITS) + 0.0,
            round(float(self.y), CANONICAL_DIGITS) + 0.0,
            int(self.k),
        )


@dataclass(frozen=True)
class JoinRequest:
    """All intersecting MBR pairs between *tree_r* and *tree_s* (filter
    step), optionally restricted to pairs intersecting *window*."""

    tree_r: str
    tree_s: str
    window: Optional[Rect] = None
    cacheable: bool = True

    cls = RequestClass.JOIN

    def cache_key(self) -> Hashable:
        window = canonical_rect(self.window) if self.window is not None else None
        return ("join", self.tree_r, self.tree_s, window)


Request = WindowRequest | KNNRequest | JoinRequest


@dataclass
class Response:
    """What the engine hands back for one submitted request."""

    status: Status
    request_class: RequestClass
    value: Optional[tuple] = None
    latency_s: float = 0.0
    cached: bool = False
    #: The value came from a TTL-expired cache entry served in a
    #: degraded mode (circuit open); always paired with ``cached=True``.
    stale: bool = False
    batch_size: int = 0
    detail: str = ""
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is Status.OK

    def __repr__(self) -> str:
        size = len(self.value) if self.value is not None else "-"
        flags = (" cached" if self.cached else "") + (
            " stale" if self.stale else ""
        )
        return (
            f"<Response {self.request_class.value} {self.status.value} "
            f"n={size} {self.latency_s * 1e3:.2f}ms{flags}>"
        )
