"""A concurrent spatial-query serving engine over pre-built R*-trees.

The paper closes by asking for "a larger framework for parallel spatial
query processing" (section 5); this package is that framework's serving
tier.  An asyncio :class:`Engine` accepts concurrent **window**, **kNN**
and **spatial-join** requests and executes them on a pool of forked
workers that inherit the in-memory trees (the process-level shared
virtual memory of :mod:`repro.join.mp`), with

* **admission control** — global in-flight bound, per-class waiting-room
  and concurrency limits, per-request timeout, graceful draining stop;
* a **micro-batcher** coalescing near-simultaneous window queries into
  one shared tree traversal (:mod:`repro.service.batcher`);
* an **LRU + TTL result cache** on canonicalised query keys
  (:mod:`repro.service.cache`);
* a **metrics layer** fed purely by ``SVC_*`` events on the
  :mod:`repro.trace` bus (:mod:`repro.service.metrics`), so the existing
  sinks, timelines and checkers apply to serving runs;
* a **load generator** — ``python -m repro.service.loadgen`` — with
  closed- and open-loop arrival models that prints a latency/throughput
  report and emits ``BENCH_service.json`` (``--chaos`` adds a seeded
  fault-injection run and ``BENCH_chaos.json``);
* a **resilience layer** (:mod:`repro.service.resilience`,
  :mod:`repro.service.supervisor`): supervised worker calls with typed
  :class:`WorkerError` outcomes, capped-backoff retries inside the
  request's deadline budget, per-class circuit breakers with
  serve-stale/shed degraded modes, and a supervisor that detects worker
  crashes and re-forks a dead pool.
"""

from .batcher import MicroBatcher
from .cache import MISS, ResultCache
from .engine import Engine, EngineConfig
from .metrics import LatencyReservoir, ServiceMetrics, percentile
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    WorkerError,
)
from .supervisor import Supervisor
from .model import (
    JoinRequest,
    KNNRequest,
    Request,
    RequestClass,
    Response,
    Status,
    WindowRequest,
    canonical_rect,
)
from .workers import WorkerPool, fork_available

__all__ = [
    "Engine",
    "EngineConfig",
    "RequestClass",
    "Status",
    "WindowRequest",
    "KNNRequest",
    "JoinRequest",
    "Request",
    "Response",
    "canonical_rect",
    "ResultCache",
    "MISS",
    "MicroBatcher",
    "ServiceMetrics",
    "LatencyReservoir",
    "percentile",
    "WorkerPool",
    "fork_available",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "WorkerError",
    "Supervisor",
]
