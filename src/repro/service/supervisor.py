"""Worker supervision: liveness polling, respawn accounting, pool rescue.

The :class:`Supervisor` is a small asyncio task the engine runs next to
its worker pool.  Each sweep it

1. snapshots the forked workers' PIDs and emits
   ``SUP_WORKER_CRASH_DETECTED`` for every worker that died since the
   last sweep and ``SUP_WORKER_RESPAWNED`` for every replacement the
   pool brought up (``multiprocessing.Pool`` repopulates lost workers;
   the supervisor is the observer that turns that into the trace
   ledger);
2. fails every in-flight call whose deadline passed
   (:meth:`WorkerPool.expire_overdue`) so no caller is ever left with a
   pending future — the engine's retry layer then re-enqueues the work;
3. if the pool has lost *every* worker and not recovered for two
   consecutive sweeps, calls :meth:`WorkerPool.restart`: the pool is
   re-forked from the parent's tree registry (workers re-inherit all
   trees) and in-flight calls are failed for re-enqueue.

Thread-mode pools have no processes to watch; the supervisor still runs
the deadline sweep.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..trace import NULL_TRACER, EventKind, Tracer
from .workers import WorkerPool

__all__ = ["Supervisor"]


class Supervisor:
    """Health-checks a :class:`WorkerPool` and rescues it when it dies."""

    def __init__(
        self,
        pool: WorkerPool,
        *,
        interval_s: float = 0.2,
        tracer: Tracer = NULL_TRACER,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.pool = pool
        self.interval_s = interval_s
        self.tracer = tracer
        self._task: Optional[asyncio.Task] = None
        self._known_pids: frozenset[int] = frozenset()
        self._dead_sweeps = 0
        self.crashes_detected = 0
        self.respawns_detected = 0
        self.deadline_expiries = 0
        self.pool_restarts = 0
        self.sweeps = 0

    # -- life cycle -----------------------------------------------------------
    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("supervisor already started")
        self._known_pids = self.pool.worker_pids()
        self._task = asyncio.create_task(
            self._loop(), name="repro-service-supervisor"
        )

    async def stop(self) -> None:
        if self._task is None:
            return
        task, self._task = self._task, None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    # -- the sweep -------------------------------------------------------------
    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            self.sweep()

    def sweep(self) -> None:
        """One supervision pass (synchronous; callable from tests)."""
        self.sweeps += 1
        pids = self.pool.worker_pids()
        for pid in self._known_pids - pids:
            self.crashes_detected += 1
            if self.tracer.enabled:
                self.tracer.emit(EventKind.SUP_WORKER_CRASH_DETECTED, pid=pid)
        for pid in pids - self._known_pids:
            self.respawns_detected += 1
            if self.tracer.enabled:
                self.tracer.emit(EventKind.SUP_WORKER_RESPAWNED, pid=pid)
        self._known_pids = pids

        expired = self.pool.expire_overdue()
        self.deadline_expiries += expired

        if self.pool.forked:
            if not pids:
                self._dead_sweeps += 1
            else:
                self._dead_sweeps = 0
            # One empty snapshot can be a race with the pool's own
            # repopulation; two in a row means the pool is gone.
            if self._dead_sweeps >= 2:
                self.pool_restarts += 1
                self.pool.restart()
                self._known_pids = self.pool.worker_pids()
                self._dead_sweeps = 0

    def snapshot(self) -> dict:
        return {
            "sweeps": self.sweeps,
            "crashes_detected": self.crashes_detected,
            "respawns_detected": self.respawns_detected,
            "deadline_expiries": self.deadline_expiries,
            "pool_restarts": self.pool_restarts,
        }

    def __repr__(self) -> str:
        return (
            f"<Supervisor every {self.interval_s * 1e3:.0f}ms "
            f"crashes={self.crashes_detected} respawns={self.respawns_detected}>"
        )
