"""Service metrics, computed from the engine's own trace stream.

The engine does not update counters directly: it emits ``SVC_*`` events
into a live :class:`~repro.trace.tracer.Tracer` (clocked on wall time) and
:class:`ServiceMetrics` is simply one more sink on that bus — exactly the
shape of the PR-1 simulation tracing, so JSONL persistence, timeline
rendering and the invariant checkers all work on serving traces unchanged.

Per request class the sink keeps a latency reservoir (p50/p95/p99), the
terminal-outcome counters and a queue-depth high-water mark; batch sizes
get their own distribution.  ``report()`` renders everything as one
JSON-able dict, the payload of ``BENCH_service.json``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..trace import EventKind, TraceEvent

__all__ = ["LatencyReservoir", "ServiceMetrics", "percentile"]


def percentile(samples: List[float], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation.

    ``nan`` for an empty sample set — serialised as ``null`` in JSON.
    """
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class LatencyReservoir:
    """Bounded latency sample set (uniform reservoir past the cap)."""

    def __init__(self, capacity: int = 65536, seed: int = 1):
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantiles(self) -> dict:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": percentile(self._samples, 50),
            "p95_s": percentile(self._samples, 95),
            "p99_s": percentile(self._samples, 99),
            "max_s": self.max if self.count else float("nan"),
        }


class _ClassStats:
    __slots__ = (
        "submitted",
        "admitted",
        "rejected",
        "completed",
        "timeouts",
        "cancelled",
        "errors",
        "shed",
        "cache_hits",
        "stale_served",
        "retries",
        "giveups",
        "latency",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.timeouts = 0
        self.cancelled = 0
        self.errors = 0
        self.shed = 0
        self.cache_hits = 0
        self.stale_served = 0
        self.retries = 0
        self.giveups = 0
        self.latency = LatencyReservoir()

    def as_dict(self) -> dict:
        payload = {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "shed": self.shed,
            "cache_hits": self.cache_hits,
            "stale_served": self.stale_served,
            "retries": self.retries,
            "giveups": self.giveups,
        }
        payload.update(self.latency.quantiles())
        return payload


class ServiceMetrics:
    """Trace sink aggregating the serving engine's event stream."""

    def __init__(self) -> None:
        self.per_class: Dict[str, _ClassStats] = {}
        self.overall = LatencyReservoir()
        self.batch_sizes: List[int] = []
        self.queue_depth_max = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self.events_seen = 0

    def _cls(self, event: TraceEvent) -> _ClassStats:
        name = str(event.data.get("cls", "?"))
        stats = self.per_class.get(name)
        if stats is None:
            stats = self.per_class[name] = _ClassStats()
        return stats

    # -- sink protocol --------------------------------------------------------
    def handle(self, event: TraceEvent) -> None:
        self.events_seen += 1
        kind = event.kind
        if kind == EventKind.SVC_REQUEST_SUBMITTED:
            self._cls(event).submitted += 1
        elif kind == EventKind.SVC_REQUEST_ADMITTED:
            self._cls(event).admitted += 1
            depth = int(event.data.get("inflight", 0))
            if depth > self.queue_depth_max:
                self.queue_depth_max = depth
        elif kind == EventKind.SVC_REQUEST_REJECTED:
            self._cls(event).rejected += 1
        elif kind == EventKind.SVC_REQUEST_COMPLETED:
            stats = self._cls(event)
            stats.completed += 1
            latency = float(event.data.get("latency_s", 0.0))
            stats.latency.add(latency)
            self.overall.add(latency)
            if event.data.get("cached"):
                stats.cache_hits += 1
            if event.data.get("stale"):
                stats.stale_served += 1
        elif kind == EventKind.SVC_REQUEST_TIMEOUT:
            self._cls(event).timeouts += 1
        elif kind == EventKind.SVC_REQUEST_CANCELLED:
            self._cls(event).cancelled += 1
        elif kind == EventKind.SVC_REQUEST_ERROR:
            self._cls(event).errors += 1
        elif kind == EventKind.SVC_REQUEST_SHED:
            self._cls(event).shed += 1
        elif kind == EventKind.SUP_CALL_RETRY:
            self._cls(event).retries += 1
        elif kind == EventKind.SUP_CALL_GIVEUP:
            self._cls(event).giveups += 1
        elif kind == EventKind.SVC_BATCH_EXECUTED:
            self.batch_sizes.append(int(event.data.get("size", 0)))
        elif kind == EventKind.SVC_ENGINE_START:
            self.started_at = event.time
        elif kind == EventKind.SVC_ENGINE_STOP:
            self.stopped_at = event.time

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    # -- aggregates -----------------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.per_class.values())

    @property
    def rejected(self) -> int:
        return sum(s.rejected for s in self.per_class.values())

    @property
    def timeouts(self) -> int:
        return sum(s.timeouts for s in self.per_class.values())

    @property
    def shed(self) -> int:
        return sum(s.shed for s in self.per_class.values())

    @property
    def stale_served(self) -> int:
        return sum(s.stale_served for s in self.per_class.values())

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.per_class.values())

    def throughput(self, duration_s: Optional[float] = None) -> float:
        """Completed requests per second over *duration_s* (or the
        engine's observed start→stop span)."""
        if duration_s is None:
            if self.started_at is None or self.stopped_at is None:
                return float("nan")
            duration_s = self.stopped_at - self.started_at
        return self.completed / duration_s if duration_s > 0 else float("nan")

    def batch_size_distribution(self) -> dict:
        sizes = self.batch_sizes
        return {
            "batches": len(sizes),
            "requests_batched": sum(sizes),
            "mean": (sum(sizes) / len(sizes)) if sizes else float("nan"),
            "max": max(sizes) if sizes else 0,
            "p95": percentile([float(s) for s in sizes], 95),
        }

    def report(self, duration_s: Optional[float] = None) -> dict:
        return {
            "per_class": {
                name: stats.as_dict() for name, stats in self.per_class.items()
            },
            "latency": self.overall.quantiles(),
            "completed": self.completed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "stale_served": self.stale_served,
            "retries": self.retries,
            "throughput_rps": self.throughput(duration_s),
            "queue_depth_max": self.queue_depth_max,
            "batch_sizes": self.batch_size_distribution(),
        }

    def __repr__(self) -> str:
        return (
            f"<ServiceMetrics {self.events_seen} events, "
            f"{self.completed} completed, {self.rejected} rejected>"
        )
