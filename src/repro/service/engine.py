"""The serving engine: concurrent spatial queries over pre-built R*-trees.

``Engine`` is the front door of :mod:`repro.service`.  Callers submit
typed requests (:mod:`repro.service.model`) from any number of asyncio
tasks; the engine

1. applies **admission control** — a global in-flight bound, a per-class
   waiting-room bound and per-class execution concurrency limits — and
   rejects immediately rather than queueing unboundedly;
2. consults the **result cache** (LRU + TTL, canonical query keys);
3. routes cache misses to the execution backend: window queries through
   the **micro-batcher** (one shared traversal per batch), kNN and join
   requests straight to the **worker pool** (forked processes inheriting
   the trees, the `join/mp.py` SVM trick, or threads where fork is
   unavailable);
4. enforces a per-request **timeout** and supports caller cancellation;
5. emits every transition as an ``SVC_*`` event on a wall-clocked
   :class:`~repro.trace.tracer.Tracer`, with :class:`ServiceMetrics` as a
   standing sink — so JSONL sinks, timelines and the
   :class:`~repro.trace.checkers.ServiceAccountingChecker` work on
   serving runs exactly like on simulation runs.

Around the execution backend sits the **resilience layer**:

* every worker-pool call is supervised (typed :class:`WorkerError`
  outcomes, per-attempt deadlines) and failed calls are **retried** with
  capped exponential backoff — always inside the request's original
  admission-timeout budget, never beyond it;
* a per-request-class **circuit breaker** (closed → open → half-open)
  cuts a failing class off; while open, cacheable requests degrade to
  **stale cache serves** (flagged on the response and in the metrics)
  and everything else is **shed** with an explicit 503-style
  :data:`~repro.service.model.Status.SHED`;
* a :class:`~repro.service.supervisor.Supervisor` polls worker liveness,
  turns crashes/respawns into trace events, sweeps overdue calls and
  re-forks the pool (workers re-inherit the tree registry) if it dies
  entirely;
* a seeded :class:`~repro.faults.plan.FaultPlan` can inject worker
  crashes, hangs and slow I/O at the pool seam for chaos testing — the
  ``FLT_*``/``SUP_*`` ledgers reconcile via the
  :class:`~repro.trace.checkers.ResilienceAccountingChecker`.

Shutdown is graceful: ``stop()`` stops admitting, drains every in-flight
request (batches included), then releases the worker pool.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..faults import FaultInjector, FaultPlan
from ..trace import EventKind, Tracer
from .batcher import MicroBatcher, PendingWindow
from .cache import MISS, ResultCache
from .metrics import ServiceMetrics
from .model import (
    JoinRequest,
    KNNRequest,
    Request,
    RequestClass,
    Response,
    Status,
    WindowRequest,
    canonical_rect,
)
from .resilience import CircuitBreaker, CircuitOpenError, RetryPolicy, WorkerError
from .supervisor import Supervisor
from .workers import WorkerPool

__all__ = ["Engine", "EngineConfig"]

_UNSET = object()


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the serving engine.

    ``workers``          — forked worker processes (0 = thread fallback);
    ``max_inflight``     — global bound on admitted-but-unfinished requests;
    ``queue_limit``      — per-class bound on requests waiting for execution;
    ``window_limit`` / ``knn_limit`` / ``join_limit``
                         — per-class concurrent executions (batches count
                           once for the whole batch);
    ``default_timeout_s``— per-request timeout unless overridden at submit;
    ``batching`` / ``batch_window_s`` / ``max_batch``
                         — micro-batcher switch, coalescing window, cap;
    ``cache_capacity`` / ``cache_ttl_s``
                         — result cache size (0 disables) and TTL;
    ``retry`` / ``attempt_timeout_s``
                         — backoff policy for failed worker calls and the
                           per-attempt execution deadline (always clipped
                           to the request's remaining budget);
    ``breaker_failure_threshold`` / ``breaker_reset_s``
                         — consecutive failures that open a class's
                           circuit, and how long it stays open;
    ``serve_stale``      — degrade open-circuit cacheable requests to
                           TTL-expired cache entries instead of shedding;
    ``supervise`` / ``supervisor_interval_s``
                         — worker liveness polling and deadline sweeps;
    ``faults``           — seeded fault plan injected at the pool seam
                           (None = healthy);
    ``seed``             — seeds retry jitter (None = nondeterministic);
    ``join_chunks``      — split joins into resumable chunks (see field).
    """

    workers: int = 0
    max_inflight: int = 128
    queue_limit: int = 1024
    window_limit: int = 32
    knn_limit: int = 16
    join_limit: int = 2
    default_timeout_s: Optional[float] = 10.0
    batching: bool = True
    batch_window_s: float = 0.002
    max_batch: int = 16
    cache_capacity: int = 1024
    cache_ttl_s: Optional[float] = 60.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    attempt_timeout_s: Optional[float] = 2.0
    breaker_failure_threshold: int = 5
    breaker_reset_s: float = 0.5
    serve_stale: bool = True
    supervise: bool = True
    supervisor_interval_s: float = 0.2
    faults: Optional[FaultPlan] = None
    seed: Optional[int] = None
    #: Split every join into this many worker calls (0/1 = one call).
    #: Completed chunks are held by the engine while the rest retry, so
    #: a worker crash or pool restart re-runs only the missing chunks —
    #: the serving-layer analogue of :mod:`repro.recovery`'s orphan
    #: recovery.  The merged result is identical to the unchunked join.
    join_chunks: int = 0


class Engine:
    """Concurrent spatial-query engine over a named-tree registry."""

    def __init__(
        self,
        trees: Mapping[str, object],
        config: Optional[EngineConfig] = None,
        *,
        sinks: Sequence = (),
    ):
        if not trees:
            raise ValueError("the engine needs at least one tree")
        self.config = config or EngineConfig()
        self.trees = dict(trees)
        self.metrics = ServiceMetrics()
        self._t0 = time.monotonic()
        self.tracer = Tracer(
            clock=lambda: time.monotonic() - self._t0,
            sinks=[self.metrics, *sinks],
        )
        self.cache = ResultCache(
            self.config.cache_capacity,
            self.config.cache_ttl_s,
            keep_stale=self.config.serve_stale,
            tracer=self.tracer,
        )
        self.injector = (
            FaultInjector(self.config.faults, tracer=self.tracer)
            if self.config.faults is not None and self.config.faults.active
            else None
        )
        self.pool = WorkerPool(
            self.trees,
            self.config.workers,
            injector=self.injector,
            tracer=self.tracer,
        )
        self.supervisor = (
            Supervisor(
                self.pool,
                interval_s=self.config.supervisor_interval_s,
                tracer=self.tracer,
            )
            if self.config.supervise
            else None
        )
        self.batcher = MicroBatcher(
            self._run_window_group,
            window_s=self.config.batch_window_s,
            max_batch=self.config.max_batch,
        )
        self._retry_rng = random.Random(self.config.seed)
        self.breakers: dict[RequestClass, CircuitBreaker] = {
            cls: CircuitBreaker(
                cls.value,
                failure_threshold=self.config.breaker_failure_threshold,
                reset_timeout_s=self.config.breaker_reset_s,
                clock=self._now,
                tracer=self.tracer,
            )
            for cls in RequestClass
        }
        self._running = False
        self._draining = False
        self._inflight = 0
        self._waiting = {cls: 0 for cls in RequestClass}
        self._sems: dict[RequestClass, asyncio.Semaphore] = {}
        self._idle: Optional[asyncio.Event] = None

    # -- life cycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            raise RuntimeError("engine already started")
        self._sems = {
            RequestClass.WINDOW: asyncio.Semaphore(self.config.window_limit),
            RequestClass.KNN: asyncio.Semaphore(self.config.knn_limit),
            RequestClass.JOIN: asyncio.Semaphore(self.config.join_limit),
        }
        self._idle = asyncio.Event()
        self._idle.set()
        self.pool.start()
        if self.supervisor is not None:
            self.supervisor.start()
        if self.config.batching:
            self.batcher.start()
        self._running = True
        self._draining = False
        self.tracer.emit(
            EventKind.SVC_ENGINE_START,
            trees=",".join(sorted(self.trees)),
            workers=self.config.workers,
            forked=int(self.pool.forked),
            batching=int(self.config.batching),
            faulted=int(self.injector is not None),
        )

    async def stop(self) -> None:
        """Stop admitting, drain in-flight work, release the backend."""
        if not self._running:
            return
        self._draining = True
        await self._idle.wait()
        if self.config.batching:
            await self.batcher.close()
        if self.supervisor is not None:
            await self.supervisor.stop()
        await self.pool.close()
        self._running = False
        self.tracer.emit(
            EventKind.SVC_ENGINE_STOP,
            completed=self.metrics.completed,
            rejected=self.metrics.rejected,
            timeouts=self.metrics.timeouts,
        )
        self.tracer.close()

    async def __aenter__(self) -> "Engine":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- front door -----------------------------------------------------------
    async def submit(self, request: Request, timeout=_UNSET) -> Response:
        """Serve one request; always returns a terminal :class:`Response`
        (admission rejections included) except on caller cancellation."""
        cls = request.cls
        t0 = self._now()
        self._emit(EventKind.SVC_REQUEST_SUBMITTED, cls)
        if not self._running or self._draining:
            return self._reject(cls, t0, "shutdown", "engine is not accepting requests")
        if self._inflight >= self.config.max_inflight:
            return self._reject(
                cls, t0, "capacity",
                f"in-flight limit {self.config.max_inflight} reached",
            )
        if self._waiting[cls] >= self.config.queue_limit:
            return self._reject(
                cls, t0, "queue",
                f"waiting-room limit {self.config.queue_limit} reached for "
                f"class {cls.value}",
            )
        use_cache = self.config.cache_capacity > 0 and request.cacheable
        self._inflight += 1
        self._idle.clear()
        self._emit(
            EventKind.SVC_REQUEST_ADMITTED,
            cls,
            cache=int(use_cache),
            inflight=self._inflight,
        )
        if timeout is _UNSET:
            timeout = self.config.default_timeout_s
        # The admission timeout is the request's whole fault budget:
        # every retry backoff and execution attempt fits inside it.
        deadline = None if timeout is None else t0 + timeout
        try:
            try:
                work = self._process(request, use_cache, t0, deadline)
                if timeout is not None:
                    response = await asyncio.wait_for(work, timeout)
                else:
                    response = await work
            except asyncio.TimeoutError:
                self._emit(EventKind.SVC_REQUEST_TIMEOUT, cls, cache=int(use_cache))
                return Response(
                    Status.TIMEOUT,
                    cls,
                    latency_s=self._now() - t0,
                    detail=f"timed out after {timeout}s",
                )
            except asyncio.CancelledError:
                self._emit(EventKind.SVC_REQUEST_CANCELLED, cls, cache=int(use_cache))
                raise
            except Exception as exc:
                self._emit(
                    EventKind.SVC_REQUEST_ERROR, cls, error=type(exc).__name__
                )
                return Response(
                    Status.ERROR,
                    cls,
                    latency_s=self._now() - t0,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            if response.status is Status.SHED:
                # _degraded already emitted SVC_REQUEST_SHED.
                return response
            self._emit(
                EventKind.SVC_REQUEST_COMPLETED,
                cls,
                latency_s=response.latency_s,
                cached=int(response.cached),
                stale=int(response.stale),
                batch=response.batch_size,
            )
            return response
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    # -- request processing ---------------------------------------------------
    async def _process(
        self, request: Request, use_cache: bool, t0: float,
        deadline: Optional[float],
    ) -> Response:
        cls = request.cls
        key = request.cache_key() if use_cache else None
        if use_cache:
            value = self.cache.get(key)
            if value is not MISS:
                return Response(
                    Status.OK, cls, value=value,
                    latency_s=self._now() - t0, cached=True,
                )
        try:
            if isinstance(request, WindowRequest):
                self._require_tree(request.tree)
                if self.config.batching:
                    future = asyncio.get_running_loop().create_future()
                    await self.batcher.put(
                        PendingWindow(
                            request, future, use_cache, self._now(),
                            deadline=deadline,
                        )
                    )
                    value, batch_size = await future
                    return Response(
                        Status.OK, cls, value=value,
                        latency_s=self._now() - t0, batch_size=batch_size,
                    )
                values = await self._guarded(
                    cls, "windows", request.tree,
                    [canonical_rect(request.window)], deadline=deadline,
                )
                value = values[0]
                batch_size = 1
            elif isinstance(request, KNNRequest):
                self._require_tree(request.tree)
                if request.k < 1:
                    raise ValueError("k must be at least 1")
                value = await self._guarded(
                    cls, "knn", request.tree, float(request.x),
                    float(request.y), int(request.k), deadline=deadline,
                )
                batch_size = 0
            elif isinstance(request, JoinRequest):
                self._require_tree(request.tree_r)
                self._require_tree(request.tree_s)
                window = (
                    canonical_rect(request.window)
                    if request.window is not None
                    else None
                )
                if self.config.join_chunks > 1:
                    value = await self._chunked_join(
                        cls, request.tree_r, request.tree_s, window, deadline
                    )
                else:
                    value = await self._guarded(
                        cls, "join", request.tree_r, request.tree_s, window,
                        deadline=deadline,
                    )
                batch_size = 0
            else:
                raise TypeError(f"unknown request type {type(request).__name__}")
        except CircuitOpenError:
            return self._degraded(cls, key, use_cache, t0)
        if use_cache:
            self.cache.put(key, value)
        return Response(
            Status.OK, cls, value=value,
            latency_s=self._now() - t0, batch_size=batch_size,
        )

    def _degraded(
        self, cls: RequestClass, key, use_cache: bool, t0: float
    ) -> Response:
        """Open-circuit fallback: stale cache serve, else shed the load."""
        if use_cache and self.config.serve_stale:
            stale = self.cache.get_stale(key)
            if stale is not MISS:
                return Response(
                    Status.OK, cls, value=stale,
                    latency_s=self._now() - t0, cached=True, stale=True,
                    detail="stale cache entry served while circuit open",
                )
        self._emit(EventKind.SVC_REQUEST_SHED, cls)
        return Response(
            Status.SHED, cls, latency_s=self._now() - t0,
            detail=f"circuit open for class {cls.value}; request shed",
        )

    async def _chunked_join(
        self,
        cls: RequestClass,
        tree_r: str,
        tree_s: str,
        window,
        deadline: Optional[float],
    ) -> tuple:
        """Resumable join: ``join_chunks`` independent worker calls.

        Each chunk runs under its own retry/breaker budget, so a worker
        crash mid-join costs one chunk's re-execution, not the whole
        join: the chunks that already returned are held here while the
        failed one retries (against the restarted pool if the crash took
        the worker down).  Chunk boundaries are computed in the workers
        from the deterministic task list, so every retry — on any
        worker — re-runs exactly the same slice.
        """
        n = self.config.join_chunks
        parts = await asyncio.gather(
            *(
                self._guarded(
                    cls, "join_chunk", tree_r, tree_s, window, index, n,
                    deadline=deadline,
                )
                for index in range(n)
            )
        )
        merged: list = []
        for part in parts:
            merged.extend(part)
        return tuple(sorted(merged))

    async def _guarded(
        self, cls: RequestClass, kind: str, *args,
        deadline: Optional[float] = None,
    ):
        """One worker-pool execution under the class concurrency limit,
        with retries under the circuit breaker and the deadline budget."""
        self._waiting[cls] += 1
        try:
            await self._sems[cls].acquire()
        finally:
            self._waiting[cls] -= 1
        try:
            return await self._execute_with_retry(cls, kind, args, deadline)
        finally:
            self._sems[cls].release()

    async def _execute_with_retry(
        self, cls: RequestClass, kind: str, args: tuple,
        deadline: Optional[float],
    ):
        breaker = self.breakers[cls]
        retry = self.config.retry
        attempt = 0
        while True:
            # Budget check BEFORE consulting the breaker: once allow()
            # returns True it may hold a half-open probe slot, and an
            # exit between admission and outcome would leak it.
            timeout_s = self.config.attempt_timeout_s
            if deadline is not None:
                remaining = deadline - self._now()
                if remaining <= 0:
                    raise WorkerError(
                        f"deadline budget exhausted before attempt "
                        f"{attempt + 1}",
                        cause_type="deadline",
                        kind=kind,
                    )
                timeout_s = (
                    remaining if timeout_s is None
                    else min(timeout_s, remaining)
                )
            if not breaker.allow():
                raise CircuitOpenError(cls.value)
            # The breaker now holds one admission; exactly one of
            # record_success / record_failure / release must settle it.
            # release() covers outcome-less exits — the submit-level
            # wait_for cancelling us while awaiting the pool.
            failure = None
            settled = False
            try:
                try:
                    value = await self.pool.run(
                        kind, *args, timeout_s=timeout_s
                    )
                except WorkerError as exc:
                    breaker.record_failure()
                    settled = True
                    failure = exc
                else:
                    breaker.record_success()
                    settled = True
                    return value
            finally:
                if not settled:
                    breaker.release()
            attempt += 1
            budget = None if deadline is None else deadline - self._now()
            delay = retry.next_delay(attempt, self._retry_rng, budget)
            if delay is None:
                self._emit(
                    EventKind.SUP_CALL_GIVEUP,
                    cls,
                    call=failure.call_id,
                    attempts=attempt,
                    error=failure.cause_type,
                )
                raise failure
            payload = {"call": failure.call_id, "attempt": attempt,
                       "delay_s": delay}
            if budget is not None:
                payload["remaining_s"] = budget
            self._emit(EventKind.SUP_CALL_RETRY, cls, **payload)
            await asyncio.sleep(delay)

    async def _run_window_group(self, tree_name: str, items: list) -> None:
        """Execute one micro-batch and settle every member's future."""
        rects = [canonical_rect(item.request.window) for item in items]
        # The batch runs under the most patient member's deadline; each
        # member's own submit-level timeout still enforces its budget.
        deadlines = [item.deadline for item in items]
        deadline = None if None in deadlines else max(deadlines)
        try:
            values = await self._guarded(
                RequestClass.WINDOW, "windows", tree_name, rects,
                deadline=deadline,
            )
        except Exception as exc:
            for item in items:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        size = len(items)
        self._emit(
            EventKind.SVC_BATCH_EXECUTED,
            RequestClass.WINDOW,
            tree=tree_name,
            size=size,
        )
        for item, value in zip(items, values):
            if item.use_cache:
                self.cache.put(item.request.cache_key(), value)
            if not item.future.done():
                item.future.set_result((value, size))

    # -- helpers --------------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _emit(self, kind: EventKind, cls: Optional[RequestClass] = None, **data):
        if self.tracer.enabled:
            if cls is not None:
                data["cls"] = cls.value
            self.tracer.emit(kind, **data)

    def _reject(
        self, cls: RequestClass, t0: float, reason: str, detail: str
    ) -> Response:
        self._emit(EventKind.SVC_REQUEST_REJECTED, cls, reason=reason)
        return Response(
            Status.REJECTED, cls, latency_s=self._now() - t0, detail=detail
        )

    def _require_tree(self, name: str) -> None:
        if name not in self.trees:
            raise KeyError(f"unknown tree {name!r}; have {sorted(self.trees)}")

    @property
    def inflight(self) -> int:
        return self._inflight

    def snapshot(self) -> dict:
        """Metrics + cache + resilience counters, JSON-able."""
        return {
            "metrics": self.metrics.report(),
            "cache": self.cache.stats(),
            "inflight": self._inflight,
            "running": self._running,
            "breakers": {
                cls.value: breaker.snapshot()
                for cls, breaker in self.breakers.items()
            },
            "supervisor": (
                self.supervisor.snapshot()
                if self.supervisor is not None else None
            ),
            "pool": {
                "restarts": self.pool.restarts,
                "calls_failed": self.pool.calls_failed,
                "calls_abandoned": self.pool.calls_abandoned,
            },
            "faults_injected": (
                self.injector.counts() if self.injector is not None else None
            ),
            # Per-shard metrics live under this key on the sharded tier
            # (ShardRouter.snapshot()); the single-pool engine serves one
            # implicit shard, reported as None so dashboards can key on
            # the same field either way.
            "shards": None,
        }

    def __repr__(self) -> str:
        state = (
            "draining" if self._draining and self._running
            else "running" if self._running else "stopped"
        )
        return (
            f"<Engine {state} trees={sorted(self.trees)} "
            f"inflight={self._inflight}>"
        )
