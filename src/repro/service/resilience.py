"""Resilience primitives of the serving engine: typed worker failures,
retries with capped exponential backoff, and per-class circuit breakers.

These are the paper's section-6 discipline — *work is redistributed when
a processor falls behind* — applied to faults instead of skew: a failed
worker call is retried (on whichever worker is healthy after the pool
respawn), but always inside the request's original deadline budget, and
a request class whose backend keeps failing is cut off by a circuit
breaker before it can exhaust the pool, degrading to stale cache serves
or explicit load shedding instead of cascading.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..trace import NULL_TRACER, EventKind, Tracer

__all__ = [
    "WorkerError",
    "CircuitOpenError",
    "RetryPolicy",
    "CircuitBreaker",
]


class WorkerError(RuntimeError):
    """A worker-pool call failed: crash, hang past deadline, or a raised
    exception — always typed, always picklable, so the caller's future is
    guaranteed to resolve (never a silently pending future).

    ``cause_type`` names the original exception class (or the synthetic
    reason: ``"deadline"``, ``"pool-restarted"``); ``call_id`` threads
    the pool-call identity through to the retry layer so the trace ledger
    can match each failure to its retry or give-up.
    """

    def __init__(
        self,
        message: str,
        *,
        cause_type: str = "WorkerError",
        call_id: int = -1,
        kind: str = "",
    ):
        super().__init__(message)
        self.cause_type = cause_type
        self.call_id = call_id
        self.kind = kind

    def __reduce__(self):
        return (
            _rebuild_worker_error,
            (str(self), self.cause_type, self.call_id, self.kind),
        )


def _rebuild_worker_error(message, cause_type, call_id, kind):
    return WorkerError(
        message, cause_type=cause_type, call_id=call_id, kind=kind
    )


class CircuitOpenError(RuntimeError):
    """The request class's circuit is open; execution was not attempted."""

    def __init__(self, cls_name: str):
        super().__init__(f"circuit open for request class {cls_name!r}")
        self.cls_name = cls_name


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter, under a deadline budget.

    ``delay(attempt, rng)`` is the sleep before retry *attempt* (1-based);
    the base doubles per attempt (``multiplier``), is capped at
    ``max_delay_s`` and jittered by ±``jitter`` of itself so synchronized
    retry storms decorrelate.  A retry is only allowed while the delay
    plus ``min_attempt_s`` (the smallest useful execution window) still
    fits into the request's remaining deadline budget — retries never
    outlive the admission timeout.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.2
    #: Smallest execution window worth retrying into.
    min_attempt_s: float = 0.01

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng) -> float:
        """Backoff before retry *attempt* (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt - 1),
        )
        if self.jitter and base > 0:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base

    def next_delay(
        self, attempt: int, rng, budget_s: Optional[float]
    ) -> Optional[float]:
        """The sleep before retry *attempt*, or None when retrying is no
        longer allowed (attempts exhausted or the deadline budget cannot
        fit the backoff plus a useful execution window)."""
        if attempt >= self.max_attempts:
            return None
        sleep_s = self.delay(attempt, rng)
        if budget_s is not None and sleep_s + self.min_attempt_s > budget_s:
            return None
        return sleep_s


class CircuitBreaker:
    """Per-request-class circuit: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses execution outright (degraded modes take
    over).  After ``reset_timeout_s`` the circuit half-opens and admits
    up to ``half_open_max`` probe calls: one probe success closes it,
    one probe failure re-opens it.  Transitions are emitted as
    ``SUP_BREAKER_*`` events.

    Every half-open admission granted by :meth:`allow` consumes a probe
    slot that must be settled by exactly one of :meth:`record_success`,
    :meth:`record_failure` or :meth:`release` — callers whose attempt
    ends without an outcome (cancelled mid-flight) call :meth:`release`
    so the slot returns.  As a backstop, :meth:`allow` reclaims probe
    slots that have seen no outcome for a full ``reset_timeout_s``, so
    even a missed release cannot wedge the breaker in HALF_OPEN forever.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        cls_name: str,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
        tracer: Tracer = NULL_TRACER,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.cls_name = cls_name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max = half_open_max
        self._clock = clock
        self.tracer = tracer
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_admitted_at = 0.0
        self.opens = 0
        self.closes = 0

    # -- gate ------------------------------------------------------------------
    def allow(self) -> bool:
        """May one execution proceed right now?

        A ``True`` in HALF_OPEN consumes a probe slot; the caller must
        settle it with record_success/record_failure, or release() when
        the attempt ends with no outcome.
        """
        if self.state == self.CLOSED:
            return True
        now = self._clock()
        if self.state == self.OPEN:
            if now - self._opened_at >= self.reset_timeout_s:
                self._transition(self.HALF_OPEN)
            else:
                return False
        # Half-open: admit a bounded number of probes.  Slots whose
        # outcome never arrived (caller torn down before release) are
        # reclaimed after a full reset window so the breaker cannot
        # stay wedged with all probes "in flight" forever.
        if (
            self._probes_inflight >= self.half_open_max
            and now - self._probe_admitted_at >= self.reset_timeout_s
        ):
            self._probes_inflight = 0
        if self._probes_inflight < self.half_open_max:
            self._probes_inflight += 1
            self._probe_admitted_at = now
            return True
        return False

    # -- outcomes --------------------------------------------------------------
    def record_success(self) -> None:
        if self.state == self.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._transition(self.CLOSED)
        self._consecutive_failures = 0

    def release(self) -> None:
        """Return an admission that ended without a recordable outcome
        (the attempt was cancelled before completing) so a half-open
        probe slot is never leaked."""
        if self.state == self.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._trip()
            return
        self._consecutive_failures += 1
        if (
            self.state == self.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._opened_at = self._clock()
        self._transition(self.OPEN)

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if state == self.OPEN:
            self.opens += 1
            self._consecutive_failures = 0
            kind = EventKind.SUP_BREAKER_OPEN
        elif state == self.HALF_OPEN:
            self._probes_inflight = 0
            kind = EventKind.SUP_BREAKER_HALF_OPEN
        else:
            self.closes += 1
            kind = EventKind.SUP_BREAKER_CLOSED
        if self.tracer.enabled:
            self.tracer.emit(kind, cls=self.cls_name)

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "opens": self.opens,
            "closes": self.closes,
        }

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.cls_name} {self.state} "
            f"failures={self._consecutive_failures}/{self.failure_threshold}>"
        )
