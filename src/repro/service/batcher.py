"""Micro-batching of compatible window queries.

Window queries arriving within a short coalescing window (default 2 ms)
are grouped — per target tree — and answered by **one** shared traversal
(:func:`repro.query.batch.multi_window_query`) instead of one traversal
each: the dynamic-batching shape of serving stacks, applied to R-tree
search.  Batching trades a bounded amount of added latency (at most the
coalescing window) for directory-page sharing and a per-batch rather than
per-query worker dispatch.

The batcher is deliberately dumb about execution: the engine passes in an
async *runner* that owns admission semaphores, the worker pool, the result
cache and event emission.  The batcher only collects, groups and hands
over.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Optional

from .model import WindowRequest

__all__ = ["MicroBatcher", "PendingWindow"]


class PendingWindow:
    """One window query waiting for its batch."""

    __slots__ = ("request", "future", "use_cache", "enqueued_at", "deadline")

    def __init__(
        self,
        request: WindowRequest,
        future: asyncio.Future,
        use_cache: bool,
        enqueued_at: float,
        deadline: Optional[float] = None,
    ):
        self.request = request
        self.future = future
        self.use_cache = use_cache
        self.enqueued_at = enqueued_at
        #: Engine-clock instant the submitting request's budget runs out
        #: (None = unbounded); the batch runs under its most patient
        #: member's deadline.
        self.deadline = deadline


#: runner(tree_name, items) executes one batch and resolves the futures.
Runner = Callable[[str, list], Awaitable[None]]


class MicroBatcher:
    """Collects window queries into batches of at most *max_batch*.

    The first arrival opens a batch; it closes after *window_s* seconds or
    when full, whichever comes first.  ``max_batch=1`` (or ``window_s=0``)
    degenerates to pass-through, the batch-size-1 baseline of the
    load-test comparison.
    """

    def __init__(self, runner: Runner, *, window_s: float = 0.002, max_batch: int = 16):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self._runner = runner
        self.window_s = window_s
        self.max_batch = max_batch
        self._queue: Optional[asyncio.Queue] = None
        self._task: Optional[asyncio.Task] = None
        self._group_tasks: set[asyncio.Task] = set()
        self.batches_dispatched = 0

    # -- life cycle -----------------------------------------------------------
    def start(self) -> None:
        self._queue = asyncio.Queue()
        self._task = asyncio.create_task(self._loop(), name="repro-service-batcher")

    async def close(self) -> None:
        """Flush everything already enqueued, then stop the loop."""
        if self._task is None:
            return
        await self._queue.put(None)
        await self._task
        self._task = None
        if self._group_tasks:
            await asyncio.gather(*self._group_tasks, return_exceptions=True)

    # -- intake ---------------------------------------------------------------
    async def put(self, item: PendingWindow) -> None:
        if self._queue is None:
            raise RuntimeError("batcher is not started")
        await self._queue.put(item)

    # -- the collect loop -----------------------------------------------------
    async def _loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch = [item]
            if self.max_batch > 1 and self.window_s > 0:
                deadline = loop.time() + self.window_s
                while len(batch) < self.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        extra = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    if extra is None:
                        self._dispatch(batch)
                        return
                    batch.append(extra)
            self._dispatch(batch)

    def _dispatch(self, batch: list) -> None:
        groups: dict[str, list] = {}
        for item in batch:
            groups.setdefault(item.request.tree, []).append(item)
        for tree_name, items in groups.items():
            self.batches_dispatched += 1
            task = asyncio.create_task(self._runner(tree_name, items))
            self._group_tasks.add(task)
            task.add_done_callback(self._group_tasks.discard)

    def __repr__(self) -> str:
        return (
            f"<MicroBatcher window={self.window_s * 1e3:.1f}ms "
            f"max={self.max_batch} dispatched={self.batches_dispatched}>"
        )
