"""repro — reproduction of *Parallel Processing of Spatial Joins Using
R-trees* (Brinkhoff, Kriegel, Seeger; ICDE 1996).

The public API re-exports the pieces a downstream user needs:

* geometry (``Rect``, polylines, plane sweep),
* the R*-tree (``RStarTree``, bulk loading, queries),
* synthetic TIGER-like workloads (``paper_maps``, ``build_tree``),
* the sequential join and every parallel variant of the paper
  (``sequential_join``, ``parallel_spatial_join``, ``LSR``/``GSRR``/``GD``,
  task reassignment policies),
* the simulated KSR1 machine (``MachineConfig``) and disk array.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from .datagen import MapData, build_tree, paper_maps
from .geometry import Polygon, Polyline, Rect, Segment
from .join import (
    GD,
    GSRR,
    LSR,
    ExactRefinement,
    JoinVariant,
    ParallelJoinConfig,
    ParallelJoinResult,
    ReassignLevel,
    ReassignmentPolicy,
    RefinementModel,
    SequentialJoinResult,
    VictimChoice,
    count_root_tasks,
    create_tasks,
    multiprocessing_join,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)
from .rtree import RStarTree, nearest_neighbors, str_bulk_load, tree_stats, window_query
from .sim import KSR1_CONFIG, MachineConfig
from .storage import DiskParams, StorageParams
from .trace import (
    EventKind,
    InvariantViolation,
    TraceConfig,
    TraceEvent,
    TraceHandle,
    read_jsonl,
    render_timeline,
    run_checkers,
    steal_timeline,
)

__version__ = "1.0.0"

__all__ = [
    "Rect",
    "Segment",
    "Polyline",
    "Polygon",
    "RStarTree",
    "str_bulk_load",
    "tree_stats",
    "window_query",
    "nearest_neighbors",
    "MapData",
    "paper_maps",
    "build_tree",
    "sequential_join",
    "SequentialJoinResult",
    "parallel_spatial_join",
    "ParallelJoinConfig",
    "ParallelJoinResult",
    "prepare_trees",
    "multiprocessing_join",
    "create_tasks",
    "count_root_tasks",
    "JoinVariant",
    "LSR",
    "GSRR",
    "GD",
    "ReassignmentPolicy",
    "ReassignLevel",
    "VictimChoice",
    "RefinementModel",
    "ExactRefinement",
    "MachineConfig",
    "KSR1_CONFIG",
    "DiskParams",
    "StorageParams",
    "TraceConfig",
    "TraceHandle",
    "TraceEvent",
    "EventKind",
    "InvariantViolation",
    "read_jsonl",
    "render_timeline",
    "steal_timeline",
    "run_checkers",
    "__version__",
]
