"""Counters and timing records shared by storage, buffers and the join.

The paper's evaluation reports a small set of quantities again and again:
the total number of disk accesses (Figures 5, 7, 8, 10), per-processor
run times (first/average/last, Figure 7), the response time (Figure 9) and
the speed-up (Figure 10).  :class:`Metrics` collects the counts and
:class:`ProcessorTimes` the per-processor clocks, so every layer increments
the same object and the bench harness reads one place.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["Metrics", "ProcessorTimes"]


class Metrics:
    """A bag of named counters with a few derived convenience views."""

    def __init__(self):
        self.counts: defaultdict[str, int] = defaultdict(int)
        self.per_disk_reads: defaultdict[int, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self.counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self.counts[name]

    # -- the quantities the paper plots -------------------------------------
    @property
    def disk_accesses(self) -> int:
        """Total disk accesses: the y-axis of Figures 5, 8 and 10."""
        return self.counts["disk_reads"]

    @property
    def buffer_hits(self) -> int:
        return self.counts["lru_hits"] + self.counts["path_hits"]

    @property
    def remote_hits(self) -> int:
        """Pages served out of another processor's buffer (global buffer)."""
        return self.counts["remote_hits"]

    def record_disk_read(self, disk_id: int) -> None:
        self.counts["disk_reads"] += 1
        self.per_disk_reads[disk_id] += 1

    def merge(self, other: "Metrics") -> None:
        for name, value in other.counts.items():
            self.counts[name] += value
        for disk, value in other.per_disk_reads.items():
            self.per_disk_reads[disk] += value

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"Metrics({inner})"


class ProcessorTimes:
    """Finish times and busy times of the simulated processors.

    ``finish[i]`` is the simulated time processor *i* completed its last
    task; ``busy[i]`` is the time it spent working (excluding idle waits at
    the very end).  The derived values follow section 4.5:

    * *response time* — the wall-clock of the processor finishing last,
    * *total run time of all tasks* — the sum of the busy times (the
      throughput-relevant quantity of section 4.5's final paragraph).
    """

    def __init__(self, n: int):
        self.finish = [0.0] * n
        self.busy = [0.0] * n

    @property
    def n(self) -> int:
        return len(self.finish)

    @property
    def response_time(self) -> float:
        return max(self.finish) if self.finish else 0.0

    @property
    def first_finish(self) -> float:
        return min(self.finish) if self.finish else 0.0

    @property
    def average_finish(self) -> float:
        return sum(self.finish) / len(self.finish) if self.finish else 0.0

    @property
    def total_run_time(self) -> float:
        return sum(self.busy)

    def __repr__(self) -> str:
        return (
            f"ProcessorTimes(n={self.n}, response={self.response_time:.3f}, "
            f"first={self.first_finish:.3f}, avg={self.average_finish:.3f})"
        )
