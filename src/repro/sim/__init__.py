"""Deterministic discrete-event simulation of the SVM multiprocessor.

``engine`` is the kernel (clock, events, generator processes), ``resources``
adds FCFS resources and FIFO stores, ``machine`` models the KSR1 of the
paper's evaluation (Table 2) and ``metrics`` collects the quantities the
paper plots.
"""

from .engine import Environment, Event, Process, SimulationError
from .machine import KSR1_CONFIG, Machine, MachineConfig, MemoryLevel
from .metrics import Metrics, ProcessorTimes
from .resources import Lock, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Process",
    "SimulationError",
    "Resource",
    "Lock",
    "Store",
    "Machine",
    "MachineConfig",
    "MemoryLevel",
    "KSR1_CONFIG",
    "Metrics",
    "ProcessorTimes",
]
