"""Contended resources for the simulation kernel.

* :class:`Resource` — a FCFS server pool.  A disk is a ``Resource`` with
  capacity 1 (requests queue up; the paper's "synchronization, especially
  at the disks"), the interconnect bus is a ``Resource`` whose holds model
  page transfers, a lock is a capacity-1 resource held across a critical
  section.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``; the
  shared *task queue* of the dynamic task assignment (section 3.3).

Both are strictly first-come-first-served in simulated time (ties broken
by request order), which keeps every experiment deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Lock", "Store"]


class Resource:
    """A FCFS pool of ``capacity`` identical servers.

    Usage inside a process::

        yield disk.acquire()
        try:
            yield env.timeout(service_time)
        finally:
            disk.release()
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("resource capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Event] = deque()
        # Bookkeeping for utilisation metrics.
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self._request_times: dict[Event, float] = {}

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def acquire(self) -> Event:
        """An event that fires once a server is granted to the caller."""
        event = Event(self.env)
        self._request_times[event] = self.env.now
        if self._in_use < self.capacity:
            self._in_use += 1
            self._grant(event)
        else:
            self._waiting.append(event)
        return event

    def release(self) -> None:
        """Return one server; the longest-waiting request (if any) gets it."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiting:
            self._grant(self._waiting.popleft())
        else:
            self._in_use -= 1

    def _grant(self, event: Event) -> None:
        self.total_acquisitions += 1
        self.total_wait_time += self.env.now - self._request_times.pop(event)
        event.succeed()

    def held(self, duration: float) -> Generator:
        """Convenience process body: acquire, hold ``duration``, release."""
        yield self.acquire()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} busy, "
            f"{len(self._waiting)} queued>"
        )


class Lock(Resource):
    """A capacity-1 resource; the SVM directory latch of the global buffer."""

    def __init__(self, env: Environment, name: str = ""):
        super().__init__(env, capacity=1, name=name)


class Store:
    """An unbounded FIFO with blocking ``get`` — the shared task queue.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item; when the store is empty the getter queues up (FCFS).
    A ``close`` drains all waiting getters with ``default`` — used to tell
    idle processors that no further tasks will arrive.
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque = deque()
        self._getters: Deque[Event] = deque()
        self._closed = False
        self._close_value = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item) -> None:
        if self._closed:
            raise SimulationError(f"put on closed store {self.name!r}")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        elif self._closed:
            event.succeed(self._close_value)
        else:
            self._getters.append(event)
        return event

    def close(self, default=None) -> None:
        """Mark the store exhausted; all current and future empty gets
        resolve immediately with *default*."""
        self._closed = True
        self._close_value = default
        while self._getters:
            self._getters.popleft().succeed(default)

    def __repr__(self) -> str:
        return (
            f"<Store {self.name!r} {len(self._items)} items, "
            f"{len(self._getters)} waiting>"
        )
