"""The shared-virtual-memory machine model (the paper's KSR1, Table 2).

The KSR1 the authors used had 24 processors with 32 MB of main memory each,
a 32 MB/s interconnect and a three-level memory hierarchy (processor cache,
own main memory, main memory of other processors).  Table 2 of the paper
lists size, transfer unit, bandwidth and latency per level; the quotient of
the per-unit access times is the "factor of about 10" the paper quotes for
local vs. remote buffer accesses (section 3.2).

:class:`MachineConfig` reproduces Table 2 verbatim as the default values and
derives the durations the simulation charges:

* ``local_page_access_time``  — copying one 4 KB page within a processor's
  own memory (LRU-buffer hit),
* ``remote_page_access_time`` — copying one 4 KB page from another
  processor's memory through the SVM (global-buffer hit),
* ``bus_transfer_time``       — how long a remote copy occupies the shared
  interconnect (this is what creates bus contention).

:class:`Machine` instantiates the shared pieces for one simulation run:
the interconnect as a FCFS resource and the metrics bag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .engine import Environment
from .metrics import Metrics
from .resources import Resource

__all__ = ["MemoryLevel", "MachineConfig", "Machine", "KSR1_CONFIG"]

MB = 1024 * 1024


@dataclass(frozen=True)
class MemoryLevel:
    """One row of Table 2."""

    name: str
    size_bytes: int
    transfer_unit_bytes: int
    bandwidth_mb_per_s: float
    latency_us: float

    def page_copy_time(self, page_size: int) -> float:
        """Seconds to copy ``page_size`` bytes unit-by-unit from this level."""
        units = math.ceil(page_size / self.transfer_unit_bytes)
        per_unit = self.latency_us * 1e-6 + (
            self.transfer_unit_bytes / (self.bandwidth_mb_per_s * MB)
        )
        return units * per_unit


@dataclass(frozen=True)
class MachineConfig:
    """All tunable durations of the simulated SVM machine (seconds)."""

    processors: int = 24
    page_size: int = 4096

    # Table 2 of the paper.
    cache: MemoryLevel = field(
        default=MemoryLevel("cache", 256 * 1024, 64, 64.0, 0.1)
    )
    main_memory: MemoryLevel = field(
        default=MemoryLevel("main memory", 32 * MB, 128, 40.0, 1.2)
    )
    remote_memory: MemoryLevel = field(
        default=MemoryLevel("main memory of other processors", 768 * MB, 128, 32.0, 9.0)
    )

    #: CPU time per rectangle intersection test in the plane sweep.  The
    #: KSR1's custom 20 MHz processors spend on the order of a hundred
    #: cycles per test.
    cpu_rect_test_time: float = 5e-6
    #: CPU time per comparison when sorting entries by ``xl``.
    cpu_sort_compare_time: float = 2e-6
    #: Critical-section length for one global-buffer directory update or
    #: one shared-task-queue operation (synchronisation cost, section 3).
    sync_time: float = 5e-5
    #: Algorithmic overhead per task reassignment; the paper reports "at
    #: most 100 msec" summed over a whole join, so one reassignment is
    #: about a millisecond.
    reassign_overhead: float = 1e-3

    # -- derived durations ---------------------------------------------------
    @property
    def local_page_access_time(self) -> float:
        """Serving one page from the processor's own buffer."""
        return self.main_memory.page_copy_time(self.page_size)

    @property
    def remote_page_access_time(self) -> float:
        """Serving one page out of another processor's buffer via the SVM."""
        return self.remote_memory.page_copy_time(self.page_size)

    @property
    def bus_transfer_time(self) -> float:
        """How long a remote page copy occupies the interconnect."""
        return self.page_size / (self.remote_memory.bandwidth_mb_per_s * MB)

    def sort_time(self, n: int) -> float:
        """CPU time to sort ``n`` entries by their lower x-coordinate."""
        if n < 2:
            return 0.0
        return n * math.log2(n) * self.cpu_sort_compare_time


#: The configuration of the paper's test environment.
KSR1_CONFIG = MachineConfig()


class Machine:
    """Shared infrastructure of one simulation run.

    Owns the environment, the interconnect (a FCFS resource — concurrent
    remote page copies queue up, which is exactly the bus contention the
    paper worries about in section 3.2) and the metrics bag.
    """

    def __init__(
        self,
        env: Environment,
        config: MachineConfig | None = None,
        metrics: Metrics | None = None,
    ):
        self.env = env
        self.config = config or KSR1_CONFIG
        self.metrics = metrics or Metrics()
        self.bus = Resource(env, capacity=1, name="bus")

    def remote_copy(self):
        """Process fragment: move one page across the interconnect.

        The requester experiences the full remote access time; the bus is
        held only for the raw transfer duration.
        """
        yield self.bus.acquire()
        try:
            yield self.env.timeout(self.config.bus_transfer_time)
        finally:
            self.bus.release()
        # Latency/protocol share of the remote access that does not occupy
        # the bus for other parties.
        residue = self.config.remote_page_access_time - self.config.bus_transfer_time
        if residue > 0:
            yield self.env.timeout(residue)
        self.metrics.add("bus_transfers")
