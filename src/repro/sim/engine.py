"""A small deterministic discrete-event simulation kernel.

The paper ran its experiments on a real KSR1 but already *simulated* the
disk array and the exact-geometry test (section 4.2).  We push the same idea
one level further and simulate the processors too: every simulated processor
executes the real join algorithm as a generator-based process, and only
durations (I/O service times, page copies, lock waits, refinement tests)
advance the simulated clock.  CPython's GIL makes honest 24-way in-process
CPU parallelism impossible, so simulated time is the faithful instrument
for reproducing the paper's response-time and speed-up figures — while
counts such as disk accesses are exact algorithm outputs, not estimates.

The kernel is deliberately SimPy-like:

* :class:`Environment` owns the clock and the event heap,
* a *process* is a generator that ``yield``s events,
* :meth:`Environment.timeout` makes the process sleep in simulated time,
* :mod:`repro.sim.resources` adds FCFS resources (disks, the bus, locks)
  and FIFO stores (the shared task queue of the dynamic assignment).

Determinism: ties in time are broken by a monotone sequence number, so a
given experiment configuration always produces the identical schedule.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Iterable, Optional

from ..trace import NULL_TRACER, EventKind, Tracer

__all__ = ["Environment", "Event", "Process", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. negative delays)."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is *triggered* once scheduled with a value,
    and is *processed* after its callbacks ran.  Processes wait for events
    by yielding them; the value the event carries becomes the value of the
    ``yield`` expression.
    """

    __slots__ = ("env", "callbacks", "_value", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self):
        if not self._processed:
            raise SimulationError("event value read before the event fired")
        return self._value

    def succeed(self, value=None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire ``delay`` time units from now."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def _fire(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state}>"


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The generator yields :class:`Event` objects.  When a yielded event
    fires, the process resumes with the event's value.  The value returned
    by the generator (via ``return``) becomes the process's own event value,
    so processes can wait for each other: ``result = yield env.process(g)``.
    """

    __slots__ = ("_generator", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off at the current simulated time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event._value)
        except StopIteration as stop:
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.emit(EventKind.PROC_FINISHED, name=self.name)
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target._processed:
            # Already fired: resume immediately (same timestamp, new slot),
            # preserving deterministic FIFO order.
            resume = Event(self.env)
            resume.callbacks.append(self._resume)
            resume.succeed(target._value)
        else:
            target.callbacks.append(self._resume)


class Environment:
    """Simulation clock, event heap and process factory.

    ``tracer`` is the event bus the instrumented layers emit into; the
    default :data:`~repro.trace.NULL_TRACER` makes every emit site a
    single falsy attribute check.
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def timeout(self, delay: float, value=None) -> Event:
        """An event that fires ``delay`` simulated time units from now."""
        event = Event(self)
        event.succeed(value, delay=delay)
        return event

    def event(self) -> Event:
        """A bare pending event; fire it later with :meth:`Event.succeed`."""
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register *generator* as a process starting now."""
        process = Process(self, generator, name=name)
        if self.tracer.enabled:
            self.tracer.emit(EventKind.PROC_SPAWNED, name=process.name)
        return process

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event firing once every event in *events* has fired.

        Its value is the list of the individual event values in input order.
        """
        events = list(events)
        done = Event(self)
        if not events:
            done.succeed([])
            return done
        remaining = [len(events)]
        values: list = [None] * len(events)

        def make_callback(index: int):
            def callback(event: Event) -> None:
                values[index] = event._value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(values)

            return callback

        for index, event in enumerate(events):
            if event._processed:
                remaining[0] -= 1
                values[index] = event._value
            else:
                event.callbacks.append(make_callback(index))
        if remaining[0] == 0 and not done._triggered:
            done.succeed(values)
        return done

    # -- execution ---------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order.

        Runs until the heap is empty, or — when *until* is given — until the
        next event would fire strictly after *until* (the clock then rests
        exactly at *until*).  Returns the final simulated time.
        """
        while self._heap:
            at, _, event = self._heap[0]
            if until is not None and at > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = at
            event._fire()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")
