"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan`
into concrete, traced fault decisions at each seam.

Decisions are drawn **in the parent / control process**, one per
opportunity, from per-site seeded streams — the injector therefore knows
exactly which calls it sabotaged and emits one ``FLT_INJECT_*`` event per
injection, keyed by a monotonically increasing id.  That parent-side
ledger is what lets the
:class:`~repro.trace.checkers.ResilienceAccountingChecker` prove that
every injected fault was retried to success, repaired, or surfaced as an
explicit error: a fault that a child process swallowed silently would
leave its id unreconciled.

Worker faults travel to the executing worker as a small picklable
:class:`FaultDirective`; :func:`apply_directive` executes it inside the
worker (``os._exit`` for a hard crash in a forked process, a raised
:class:`InjectedCrash` in the thread fallback, ``time.sleep`` for hangs
and slow I/O).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..trace import NULL_TRACER, EventKind, Tracer
from .plan import FaultPlan

__all__ = [
    "FaultDirective",
    "FaultInjector",
    "InjectedCrash",
    "apply_directive",
]

#: Exit status of a worker killed by an injected crash (recognisable in
#: ``ps``/waitpid diagnostics; value is arbitrary but distinctive).
CRASH_EXIT_CODE = 86


class InjectedCrash(RuntimeError):
    """A synthetic worker crash, raised where a process cannot die.

    The thread fallback of the worker pool cannot ``os._exit`` without
    taking the whole engine down, so an injected crash surfaces as this
    exception — the caller-visible effect (the call fails abruptly and
    must be retried) is the same.
    """


@dataclass(frozen=True)
class FaultDirective:
    """One worker call's fault instruction (picklable, parent-decided)."""

    fault: str  # "crash" | "hang" | "slow"
    sleep_s: float = 0.0


def apply_directive(
    directive: Optional[FaultDirective], *, hard_crash: bool
) -> None:
    """Execute *directive* inside the worker before the real work.

    ``hard_crash`` selects ``os._exit`` (forked process) over raising
    :class:`InjectedCrash` (thread fallback).
    """
    if directive is None:
        return
    if directive.fault == "crash":
        if hard_crash:
            import os

            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash("injected worker crash")
    if directive.fault in ("hang", "slow"):
        import time

        time.sleep(directive.sleep_s)


class FaultInjector:
    """Draws fault decisions from a plan and emits the injection ledger.

    One injector instance belongs to one run (one engine, one simulated
    join, one ``multiprocessing_join`` call); its per-site RNG streams
    make the decision sequence a pure function of ``plan.seed`` and the
    order of opportunities.
    """

    def __init__(self, plan: FaultPlan, tracer: Tracer = NULL_TRACER):
        self.plan = plan
        self.tracer = tracer
        self._worker_rng = plan.rng_for("worker")
        self._io_rng = plan.rng_for("io")
        self._page_rng = plan.rng_for("page")
        self._task_rng = plan.rng_for("task")
        self._journal_rng = plan.rng_for("journal")
        self._next_call = 0
        # task-kill bookkeeping: each task id rolls at most once, each
        # targeted kill fires at most once — re-executions of a requeued
        # orphan are never re-killed, so recovery always makes progress.
        self._task_rolled: set = set()
        self._targets_fired: set = set()
        self._task_starts: dict = {}
        self._proc_targets = {
            (proc, nth) for proc, nth in plan.kill_processor_at_event
        }
        # injection counters, by fault class
        self.crashes = 0
        self.hangs = 0
        self.slow_ios = 0
        self.corruptions = 0
        self.task_kills = 0
        self.torn_appends = 0

    # -- worker-call seam ------------------------------------------------------
    def next_call_id(self) -> int:
        """A fresh id for one worker call (faulted or not)."""
        call_id = self._next_call
        self._next_call += 1
        return call_id

    def worker_directive(self, call_id: int) -> Optional[FaultDirective]:
        """Decide the fate of worker call *call_id* (None = healthy).

        At most one fault per call; crash dominates hang dominates slow,
        each consuming an independent roll so the marginal probabilities
        match the plan.
        """
        plan = self.plan
        rng = self._worker_rng
        crash = rng.random() < plan.worker_crash_p
        hang = rng.random() < plan.worker_hang_p
        slow = rng.random() < plan.slow_io_p
        if crash:
            self.crashes += 1
            if self.tracer.enabled:
                self.tracer.emit(EventKind.FLT_INJECT_CRASH, call=call_id)
            return FaultDirective("crash")
        if hang:
            self.hangs += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.FLT_INJECT_HANG, call=call_id, sleep_s=plan.hang_s
                )
            return FaultDirective("hang", sleep_s=plan.hang_s)
        if slow:
            self.slow_ios += 1
            sleep_s = plan.slow_io_base_s * (plan.slow_io_factor - 1.0)
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.FLT_INJECT_SLOW_IO, call=call_id, sleep_s=sleep_s
                )
            return FaultDirective("slow", sleep_s=sleep_s)
        return None

    # -- task seam (repro.recovery) --------------------------------------------
    def should_kill_at_task(self, task_id: int, proc: int = -1) -> bool:
        """Whether the processor starting *task_id* dies there.

        Consulted once per task start by both recovery paths (the sim's
        processor loop and the fork coordinator at chunk dispatch).  A
        kill fires for a targeted task id (``kill_at_task``), a targeted
        processor event (``kill_processor_at_event``: *proc*'s n-th task
        start) or a ``task_kill_p`` roll — each task id rolls at most
        once, each target fires at most once.  Emits
        ``FLT_INJECT_TASK_KILL`` on strike.
        """
        starts = self._task_starts.get(proc, 0) + 1
        self._task_starts[proc] = starts
        kill = False
        if (
            task_id in self.plan.kill_at_task
            and ("task", task_id) not in self._targets_fired
        ):
            self._targets_fired.add(("task", task_id))
            kill = True
        if (proc, starts) in self._proc_targets:
            self._proc_targets.discard((proc, starts))
            kill = True
        if task_id not in self._task_rolled:
            self._task_rolled.add(task_id)
            if self._task_rng.random() < self.plan.task_kill_p:
                kill = True
        if kill:
            self.task_kills += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.FLT_INJECT_TASK_KILL,
                    proc=proc,
                    task=task_id,
                    start=starts,
                )
        return kill

    # -- journal seam (repro.recovery) -----------------------------------------
    def torn_append(self, size: int) -> Optional[int]:
        """Byte offset to tear one journal append at, or None (intact).

        The cut point is drawn from the same seeded stream and always
        strictly inside the record, so a torn append is guaranteed to
        fail the CRC frame check on the next scan.  Emits
        ``FLT_INJECT_TORN_APPEND`` on strike.
        """
        if size < 2 or self._journal_rng.random() >= self.plan.torn_append_p:
            return None
        cut = self._journal_rng.randrange(1, size)
        self.torn_appends += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.FLT_INJECT_TORN_APPEND, bytes=size, cut=cut
            )
        return cut

    # -- disk seam -------------------------------------------------------------
    def io_multiplier(self, page_id: int, proc: int = -1) -> float:
        """Service-time stretch for one simulated disk access (1.0 = none)."""
        if self._io_rng.random() < self.plan.slow_io_p:
            self.slow_ios += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventKind.FLT_INJECT_SLOW_IO,
                    proc=proc,
                    page=page_id,
                    factor=self.plan.slow_io_factor,
                )
            return self.plan.slow_io_factor
        return 1.0

    # -- page seam -------------------------------------------------------------
    def corrupt_copy(self, page_id: int, payload: bytes, proc: int = -1
                     ) -> bytes:
        """Possibly flip one bit of a buffered page copy.

        Returns the (possibly corrupted) payload; emits
        ``FLT_INJECT_CORRUPT`` when it strikes.  The flipped bit position
        is drawn from the same seeded stream, so the corruption itself is
        reproducible.
        """
        if not payload or self._page_rng.random() >= self.plan.page_flip_p:
            return payload
        bit = self._page_rng.randrange(len(payload) * 8)
        corrupted = bytearray(payload)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        self.corruptions += 1
        if self.tracer.enabled:
            self.tracer.emit(
                EventKind.FLT_INJECT_CORRUPT, proc=proc, page=page_id, bit=bit
            )
        return bytes(corrupted)

    # -- reporting -------------------------------------------------------------
    def counts(self) -> dict:
        return {
            "crashes": self.crashes,
            "hangs": self.hangs,
            "slow_ios": self.slow_ios,
            "corruptions": self.corruptions,
            "task_kills": self.task_kills,
            "torn_appends": self.torn_appends,
        }

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.counts().items())
        return f"<FaultInjector {self.plan!r} {inner}>"
