"""Seeded, deterministic fault injection for the runtime layers.

The paper's central claim is that the parallel join degrades gracefully
when a processor falls behind (task reassignment, section 3.4); this
package extends that discipline from *skew* to *faults*: a
:class:`FaultPlan` describes worker crashes, hangs, slowed I/O and page
bit-flips, and a :class:`FaultInjector` deterministically injects them at
three seams — the serving worker pool (:mod:`repro.service.workers`),
the real multiprocessing join (:mod:`repro.join.mp`) and the simulated
disk/buffer stack (:mod:`repro.storage`, :mod:`repro.buffer`).

Every injection is emitted as an ``FLT_*`` event on the
:mod:`repro.trace` bus; the resilience layer's recovery actions are
``SUP_*`` events, and the
:class:`~repro.trace.checkers.ResilienceAccountingChecker` reconciles
the two ledgers: every injected fault must be retried to success,
repaired, or surfaced as an explicit error — never silently lost.
"""

from .injector import (
    CRASH_EXIT_CODE,
    FaultDirective,
    FaultInjector,
    InjectedCrash,
    apply_directive,
)
from .plan import NO_FAULTS, FaultPlan

__all__ = [
    "FaultPlan",
    "NO_FAULTS",
    "FaultInjector",
    "FaultDirective",
    "InjectedCrash",
    "apply_directive",
    "CRASH_EXIT_CODE",
]
