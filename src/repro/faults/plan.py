"""The fault plan: what can break, how often, and under which seed.

A :class:`FaultPlan` is pure configuration — an immutable set of
probabilities and magnitudes for every fault class the framework can
inject:

* **worker crash** — a forked worker process dies hard (``os._exit``)
  while holding a call; the thread fallback raises
  :class:`~repro.faults.injector.InjectedCrash` instead (threads cannot
  be killed);
* **worker hang**  — the worker sleeps through the caller's deadline
  before answering;
* **slow I/O**     — page/service times are stretched by a multiplier
  (the simulated disk array) or an equivalent sleep (serving workers);
* **page corruption** — a bit of a buffered page copy is flipped before
  the copy is handed to the reader, exercising the checksum
  verify-on-read and read-repair path;
* **task kill** — the processor (simulated, or a forked chunk worker)
  starting a task dies right there, probabilistically
  (``task_kill_p``) or targeted (``kill_at_task`` /
  ``kill_processor_at_event``), exercising lease expiry and orphan
  requeue in :mod:`repro.recovery`;
* **torn journal append** — one append to the durable join journal is
  cut short mid-record, exercising the CRC frame check on resume.

All randomness is derived from ``seed`` through stable per-site streams
(:meth:`rng_for`), so one plan replayed over the same call sequence
injects the identical faults — chaos tests are reproducible and the
``BENCH_chaos.json`` methodology can name its exact seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

__all__ = ["FaultPlan", "NO_FAULTS"]


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and magnitudes of every injectable fault.

    All probabilities are per *opportunity*: per worker call for
    crash/hang/slow, per buffered-copy read for corruption, per disk
    access for the I/O multiplier.  A plan with every probability at 0
    is inert (see :data:`NO_FAULTS`).
    """

    seed: int = 0
    #: P(worker process dies hard during a call).
    worker_crash_p: float = 0.0
    #: P(worker sleeps ``hang_s`` before answering).
    worker_hang_p: float = 0.0
    hang_s: float = 1.0
    #: P(one I/O is slowed) and the stretch factor applied when it is.
    slow_io_p: float = 0.0
    slow_io_factor: float = 4.0
    #: Base duration a serving worker sleeps to emulate one slowed I/O
    #: (the simulated disk array stretches real service times instead).
    slow_io_base_s: float = 0.005
    #: P(a buffered page copy has one bit flipped before it is read).
    page_flip_p: float = 0.0
    #: P(the processor starting a task is killed there) — recoverable-join
    #: runs only (the lease/journal machinery must be on, or work is lost
    #: for good).  Each task rolls at most once, so re-executions of a
    #: requeued orphan are never re-killed and the join always progresses.
    task_kill_p: float = 0.0
    #: Deterministic task-targeted kills: whichever processor starts one
    #: of these task ids dies there (fires once per id).
    kill_at_task: tuple = field(default_factory=tuple)
    #: Deterministic processor-targeted kills: ``(proc, n)`` kills
    #: processor *proc* at its *n*-th task start (1-based, fires once).
    kill_processor_at_event: tuple = field(default_factory=tuple)
    #: P(one journal append is torn mid-write) — emulates a crash between
    #: write() and the newline hitting the disk.
    torn_append_p: float = 0.0

    def __post_init__(self):
        for name in (
            "worker_crash_p", "worker_hang_p", "slow_io_p", "page_flip_p",
            "task_kill_p", "torn_append_p",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.hang_s < 0 or self.slow_io_base_s < 0:
            raise ValueError("fault durations must be >= 0")
        if self.slow_io_factor < 1.0:
            raise ValueError("slow_io_factor must be >= 1")
        for task in self.kill_at_task:
            if not isinstance(task, int) or task < 0:
                raise ValueError("kill_at_task entries must be task ids >= 0")
        for entry in self.kill_processor_at_event:
            if (
                not isinstance(entry, tuple)
                or len(entry) != 2
                or entry[1] < 1
            ):
                raise ValueError(
                    "kill_processor_at_event entries must be (proc, n>=1)"
                )

    @property
    def active(self) -> bool:
        """Whether this plan can inject anything at all."""
        return (
            self.worker_crash_p > 0
            or self.worker_hang_p > 0
            or self.slow_io_p > 0
            or self.page_flip_p > 0
            or self.task_kill_p > 0
            or self.torn_append_p > 0
            or bool(self.kill_at_task)
            or bool(self.kill_processor_at_event)
        )

    def rng_for(self, site: str) -> random.Random:
        """A private RNG for one injection site.

        String seeds hash via SHA-512 inside :class:`random.Random`, so
        the stream is stable across processes and interpreter runs —
        unlike ``hash(str)``, which is salted.
        """
        return random.Random(f"faultplan:{self.seed}:{site}")

    def reseeded(self, seed: int) -> "FaultPlan":
        """The same plan under a different seed."""
        return replace(self, seed=seed)

    def __repr__(self) -> str:
        knobs = []
        if self.worker_crash_p:
            knobs.append(f"crash={self.worker_crash_p}")
        if self.worker_hang_p:
            knobs.append(f"hang={self.worker_hang_p}x{self.hang_s}s")
        if self.slow_io_p:
            knobs.append(f"slow={self.slow_io_p}x{self.slow_io_factor}")
        if self.page_flip_p:
            knobs.append(f"flip={self.page_flip_p}")
        if self.task_kill_p or self.kill_at_task or self.kill_processor_at_event:
            knobs.append(
                f"kill={self.task_kill_p}"
                f"+{len(self.kill_at_task)}t"
                f"+{len(self.kill_processor_at_event)}p"
            )
        if self.torn_append_p:
            knobs.append(f"torn={self.torn_append_p}")
        inner = " ".join(knobs) if knobs else "inert"
        return f"<FaultPlan seed={self.seed} {inner}>"


#: The inert plan: nothing ever breaks.
NO_FAULTS = FaultPlan()
