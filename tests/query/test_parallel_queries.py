"""Tests for parallel window and kNN queries on the simulated machine."""

import random

import pytest

from repro.geometry import Rect
from repro.query import (
    ParallelQueryConfig,
    parallel_knn,
    parallel_window_query,
    prepare_tree,
)
from repro.rtree import RStarTree, nearest_neighbors, str_bulk_load


@pytest.fixture(scope="module")
def tree():
    rng = random.Random(11)
    items = []
    for i in range(3000):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        items.append((i, Rect(x, y, x + rng.uniform(0, 2), y + rng.uniform(0, 2))))
    built = str_bulk_load(items, dir_capacity=16, data_capacity=16)
    prepare_tree(built)
    return built, items


@pytest.fixture(scope="module")
def page_store(tree):
    built, _ = tree
    return prepare_tree(built)


class TestParallelWindowQuery:
    @pytest.mark.parametrize("processors", [1, 4, 8])
    def test_matches_sequential(self, tree, page_store, processors):
        built, items = tree
        window = Rect(20, 20, 60, 55)
        result = parallel_window_query(
            built,
            window,
            ParallelQueryConfig(processors=processors, disks=processors,
                                total_buffer_pages=40 * processors),
            page_store=page_store,
        )
        want = {i for i, r in items if r.intersects(window)}
        assert result.oid_set() == want

    def test_no_duplicates(self, tree, page_store):
        built, _ = tree
        result = parallel_window_query(
            built, Rect(0, 0, 100, 100),
            ParallelQueryConfig(processors=6, disks=6, total_buffer_pages=240),
            page_store=page_store,
        )
        oids = [e.oid for e in result.entries]
        assert len(oids) == len(set(oids)) == built.size

    def test_empty_window(self, tree, page_store):
        built, _ = tree
        result = parallel_window_query(
            built, Rect(500, 500, 600, 600),
            ParallelQueryConfig(processors=4, disks=4, total_buffer_pages=80),
            page_store=page_store,
        )
        assert result.entries == []

    def test_empty_tree(self):
        empty = RStarTree(dir_capacity=8, data_capacity=8)
        result = parallel_window_query(
            empty, Rect(0, 0, 1, 1),
            ParallelQueryConfig(processors=2, disks=2, total_buffer_pages=8),
        )
        assert result.entries == []

    def test_parallel_faster_than_single(self, tree, page_store):
        built, _ = tree
        window = Rect(0, 0, 100, 100)

        def run(n):
            return parallel_window_query(
                built, window,
                ParallelQueryConfig(processors=n, disks=n,
                                    total_buffer_pages=40 * n),
                page_store=page_store,
            )

        single = run(1)
        eight = run(8)
        assert eight.response_time < single.response_time
        assert single.response_time / eight.response_time > 3

    def test_disk_accesses_counted(self, tree, page_store):
        built, _ = tree
        result = parallel_window_query(
            built, Rect(0, 0, 100, 100),
            ParallelQueryConfig(processors=4, disks=4, total_buffer_pages=160),
            page_store=page_store,
        )
        assert result.disk_accesses > 0

    def test_invalid_processor_count(self, tree):
        built, _ = tree
        with pytest.raises(ValueError):
            parallel_window_query(
                built, Rect(0, 0, 1, 1), ParallelQueryConfig(processors=0)
            )


class TestParallelKnn:
    @pytest.mark.parametrize("processors", [1, 4])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_sequential_knn(self, tree, page_store, processors, k):
        built, _ = tree
        result = parallel_knn(
            built, 50.0, 50.0, k,
            ParallelQueryConfig(processors=processors, disks=processors,
                                total_buffer_pages=40 * processors),
            page_store=page_store,
        )
        want = nearest_neighbors(built, 50.0, 50.0, k=k)
        got_oids = [e.oid for e in result.entries]
        assert len(got_oids) == k
        # Same distances (oids may differ on exact ties).
        got_distances = sorted(
            ((max(e.xl - 50, 50 - e.xu, 0) ** 2
              + max(e.yl - 50, 50 - e.yu, 0) ** 2) ** 0.5)
            for e in result.entries
        )
        want_distances = [d for d, _ in want]
        assert got_distances == pytest.approx(want_distances)

    def test_k_larger_than_tree(self):
        items = [(i, Rect(i, 0, i + 0.5, 1)) for i in range(5)]
        built = str_bulk_load(items, dir_capacity=8, data_capacity=8)
        result = parallel_knn(
            built, 0, 0, 50,
            ParallelQueryConfig(processors=2, disks=2, total_buffer_pages=8),
        )
        assert len(result.entries) == 5

    def test_k_zero_rejected(self, tree):
        built, _ = tree
        with pytest.raises(ValueError):
            parallel_knn(built, 0, 0, 0, ParallelQueryConfig())

    def test_empty_tree(self):
        empty = RStarTree(dir_capacity=8, data_capacity=8)
        result = parallel_knn(empty, 0, 0, 3, ParallelQueryConfig(processors=2))
        assert result.entries == []

    def test_shared_bound_prunes(self, tree, page_store):
        # With the shared bound, a k=1 query must touch far fewer pages
        # than a full scan of the tree.
        built, _ = tree
        result = parallel_knn(
            built, 50.0, 50.0, 1,
            ParallelQueryConfig(processors=4, disks=4, total_buffer_pages=160),
            page_store=page_store,
        )
        total_pages = sum(1 for _ in built.nodes())
        assert result.disk_accesses < total_pages / 2

    def test_deterministic(self, tree, page_store):
        built, _ = tree
        runs = [
            parallel_knn(
                built, 30.0, 70.0, 10,
                ParallelQueryConfig(processors=4, disks=4, total_buffer_pages=160),
                page_store=page_store,
            )
            for _ in range(2)
        ]
        assert [e.oid for e in runs[0].entries] == [e.oid for e in runs[1].entries]
        assert runs[0].response_time == runs[1].response_time
