"""Property test: the parallel kNN shared pruning bound never loses a
neighbour — results match a brute-force oracle on randomized trees/k,
including k larger than the dataset (satellite of the serving PR)."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.query import ParallelQueryConfig, parallel_knn
from repro.rtree import str_bulk_load

coords = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rect_items(draw, max_items=120):
    count = draw(st.integers(min_value=1, max_value=max_items))
    items = []
    for oid in range(count):
        x = draw(coords)
        y = draw(coords)
        w = draw(st.floats(min_value=0.0, max_value=5.0))
        h = draw(st.floats(min_value=0.0, max_value=5.0))
        items.append((oid, Rect(x, y, x + w, y + h)))
    return items


def min_distance(rect, x, y):
    dx = max(rect.xl - x, x - rect.xu, 0.0)
    dy = max(rect.yl - y, y - rect.yu, 0.0)
    return (dx * dx + dy * dy) ** 0.5


class TestParallelKnnAgainstBruteForce:
    @given(
        items=rect_items(),
        k=st.integers(min_value=1, max_value=200),
        x=coords,
        y=coords,
        processors=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_oracle(self, items, k, x, y, processors):
        tree = str_bulk_load(items, dir_capacity=4, data_capacity=4)
        result = parallel_knn(
            tree, x, y, k,
            ParallelQueryConfig(
                processors=processors, disks=processors,
                total_buffer_pages=8 * processors,
            ),
        )
        got = sorted(min_distance(e, x, y) for e in result.entries)
        want = heapq.nsmallest(
            k, (min_distance(r, x, y) for _, r in items)
        )
        # k larger than the dataset returns everything, exactly once.
        assert len(result.entries) == min(k, len(items))
        oids = [e.oid for e in result.entries]
        assert len(oids) == len(set(oids))
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert abs(g - w) < 1e-9

    @given(items=rect_items(max_items=20), processors=st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_k_equals_size_returns_all(self, items, processors):
        tree = str_bulk_load(items, dir_capacity=4, data_capacity=4)
        result = parallel_knn(
            tree, 50.0, 50.0, len(items),
            ParallelQueryConfig(
                processors=processors, disks=processors,
                total_buffer_pages=8 * processors,
            ),
        )
        assert {e.oid for e in result.entries} == {oid for oid, _ in items}
