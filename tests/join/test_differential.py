"""Differential suite: every parallel join variant against the sequential
BKS93 join, with the trace invariant checkers watching each run.

The grid covers all three hardware/software variants (LSR with local
buffers, GSRR and GD with the SVM global buffer) crossed with every
reassignment level and victim-selection rule.  Each cell must (a) produce
exactly the sequential result set and (b) satisfy all five invariant
checkers.

A second part deliberately injects a double-execution bug (a steal that
leaves the stolen pairs behind at the victim) and asserts that the
task-conservation checker catches it — the suite tests the testers.
"""

import pytest

from repro.datagen import build_tree, paper_maps
from repro.join import (
    GD,
    GSRR,
    LSR,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    VictimChoice,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)
from repro.join.reassign import Workload
from repro.trace import EventKind, InvariantViolation, TraceConfig

SCALE = 0.02


@pytest.fixture(scope="module")
def workload():
    m1, m2 = paper_maps(scale=SCALE)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    page_store = prepare_trees(tree_r, tree_s)
    expected = sequential_join(tree_r, tree_s).pair_set()
    return tree_r, tree_s, page_store, expected


def run_traced(workload, **kwargs):
    tree_r, tree_s, page_store, _ = workload
    kwargs.setdefault("trace", TraceConfig())
    config = ParallelJoinConfig(**kwargs)
    return parallel_spatial_join(tree_r, tree_s, config, page_store=page_store)


GRID = [
    pytest.param(
        variant,
        level,
        victim,
        id=f"{variant.short_name}-{level.value}-{victim.value.replace(' ', '-')}",
    )
    for variant in (LSR, GSRR, GD)
    for level in ReassignLevel
    for victim in VictimChoice
]


@pytest.mark.slow
class TestFullVariantGrid:
    @pytest.mark.parametrize("variant,level,victim", GRID)
    def test_matches_sequential_with_invariants(
        self, workload, variant, level, victim
    ):
        result = run_traced(
            workload,
            processors=4,
            disks=4,
            total_buffer_pages=160,
            variant=variant,
            reassignment=ReassignmentPolicy(level=level, victim=victim),
        )
        assert result.pair_set() == workload[3]
        trace = result.trace
        assert trace is not None
        trace.verify()  # raises InvariantViolation on any checker failure
        assert trace.ok
        assert len(trace.verdicts) == 13
        # The trace agrees with the result's own accounting.
        counts = trace.counts()
        assert counts[EventKind.EXEC_START] == counts[EventKind.EXEC_END]
        assert counts[EventKind.DISK_COMPLETE] == result.disk_accesses
        assert counts[EventKind.TASK_CREATED] == result.tasks_created


class TestTraceHandleContents:
    def test_steal_events_recorded_when_reassigning(self, workload):
        result = run_traced(
            workload,
            processors=8,
            disks=8,
            total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL),
        )
        assert result.reassignments > 0
        counts = result.trace.counts()
        assert counts[EventKind.STEAL_GRANTED] == result.reassignments
        assert counts[EventKind.STEAL_TAKE] >= result.reassignments
        timeline = result.trace.steal_timeline(limit=10)
        assert "steal_granted" in timeline or "steal_take" in timeline

    def test_trace_absent_without_config(self, workload):
        tree_r, tree_s, page_store, _ = workload
        result = parallel_spatial_join(
            tree_r,
            tree_s,
            ParallelJoinConfig(processors=4, disks=4, total_buffer_pages=160),
            page_store=page_store,
        )
        assert result.trace is None

    def test_jsonl_round_trip_of_a_real_run(self, workload, tmp_path):
        from repro.trace import read_jsonl

        path = tmp_path / "run.jsonl"
        result = run_traced(
            workload,
            processors=4,
            disks=4,
            total_buffer_pages=160,
            trace=TraceConfig(jsonl_path=str(path)),
        )
        replayed = read_jsonl(path)
        assert replayed == result.trace.events
        assert len(replayed) == result.trace.events_emitted


class TestCheckersCatchInjectedBugs:
    def test_double_execution_is_caught(self, workload, monkeypatch):
        # Inject the bug: a steal that hands out the pairs *and* leaves
        # them behind at the victim, so both processors execute them.
        original = Workload.steal_from

        def leaky_steal(self, level, thief=-1):
            stolen = original(self, level, thief=thief)
            for node_r, node_s in stolen:
                self.push_pair(level, node_r, node_s)
            return stolen

        monkeypatch.setattr(Workload, "steal_from", leaky_steal)
        result = run_traced(
            workload,
            processors=8,
            disks=8,
            total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL),
        )
        assert result.reassignments > 0, "bug never triggered: no steals"
        trace = result.trace
        assert not trace.verdict("task-conservation").ok
        assert not trace.ok
        with pytest.raises(InvariantViolation, match="task-conservation"):
            trace.verify()

    def test_lost_work_is_caught(self, workload, monkeypatch):
        # Inject the complementary bug: stolen pairs evaporate in transit.
        original = Workload.steal_from
        dropped = []

        def lossy_steal(self, level, thief=-1):
            stolen = original(self, level, thief=thief)
            dropped.append(stolen[-1])  # one pair falls on the floor
            return stolen[:-1]

        monkeypatch.setattr(Workload, "steal_from", lossy_steal)
        result = run_traced(
            workload,
            processors=8,
            disks=8,
            total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL),
        )
        assert dropped, "bug never triggered: no steals"
        trace = result.trace
        assert not trace.ok
        failed = {verdict.checker for verdict in trace.failed}
        # The dropped pair never finishes (conservation) and never
        # arrives at the thief (steal soundness).
        assert "task-conservation" in failed or "steal-soundness" in failed
