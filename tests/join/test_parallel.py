"""Tests for the simulated parallel spatial join (paper sections 3-4)."""

import pytest

from repro.datagen import build_tree, paper_maps
from repro.join import (
    GD,
    GSRR,
    LSR,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    VictimChoice,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)

SCALE = 0.02


@pytest.fixture(scope="module")
def workload():
    m1, m2 = paper_maps(scale=SCALE)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    page_store = prepare_trees(tree_r, tree_s)
    expected = sequential_join(tree_r, tree_s).pair_set()
    return tree_r, tree_s, page_store, expected


def run(workload, **kwargs):
    tree_r, tree_s, page_store, _ = workload
    config = ParallelJoinConfig(**kwargs)
    return parallel_spatial_join(tree_r, tree_s, config, page_store=page_store)


ALL_VARIANTS = [LSR, GSRR, GD]
ALL_POLICIES = [
    ReassignmentPolicy(level=ReassignLevel.NONE),
    ReassignmentPolicy(level=ReassignLevel.ROOT),
    ReassignmentPolicy(level=ReassignLevel.ALL),
    ReassignmentPolicy(level=ReassignLevel.ALL, victim=VictimChoice.ARBITRARY),
]


class TestResultCorrectness:
    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.short_name)
    @pytest.mark.parametrize(
        "policy",
        ALL_POLICIES,
        ids=["none", "root", "all", "all-arbitrary"],
    )
    def test_every_variant_matches_sequential(self, workload, variant, policy):
        result = run(
            workload,
            processors=4,
            disks=4,
            total_buffer_pages=160,
            variant=variant,
            reassignment=policy,
        )
        assert result.pair_set() == workload[3]

    def test_single_processor(self, workload):
        result = run(workload, processors=1, disks=1, total_buffer_pages=100)
        assert result.pair_set() == workload[3]
        assert result.metrics["remote_hits"] == 0

    def test_many_processors(self, workload):
        result = run(workload, processors=24, disks=24, total_buffer_pages=960)
        assert result.pair_set() == workload[3]

    def test_no_candidate_counted_twice(self, workload):
        result = run(workload, processors=6, disks=6, total_buffer_pages=240)
        total = sum(len(p) for p in result.pairs_by_processor)
        assert total == len(result.pair_set())

    def test_tiny_buffer(self, workload):
        result = run(workload, processors=4, disks=4, total_buffer_pages=4)
        assert result.pair_set() == workload[3]


class TestDeterminism:
    def test_identical_runs_identical_results(self, workload):
        a = run(workload, processors=6, disks=6, total_buffer_pages=240)
        b = run(workload, processors=6, disks=6, total_buffer_pages=240)
        assert a.disk_accesses == b.disk_accesses
        assert a.response_time == b.response_time
        assert a.times.finish == b.times.finish
        assert a.pairs_by_processor == b.pairs_by_processor

    def test_arbitrary_victim_seeded(self, workload):
        policy = ReassignmentPolicy(
            level=ReassignLevel.ALL, victim=VictimChoice.ARBITRARY, seed=3
        )
        a = run(workload, processors=6, disks=6, total_buffer_pages=240, reassignment=policy)
        b = run(workload, processors=6, disks=6, total_buffer_pages=240, reassignment=policy)
        assert a.response_time == b.response_time
        assert a.reassignments == b.reassignments


class TestTimingSanity:
    def test_parallel_faster_than_single(self, workload):
        single = run(workload, processors=1, disks=1, total_buffer_pages=100)
        eight = run(workload, processors=8, disks=8, total_buffer_pages=800)
        assert eight.response_time < single.response_time
        speedup = eight.speedup_against(single)
        assert 2.0 < speedup <= 8.5

    def test_response_time_is_last_finisher(self, workload):
        result = run(workload, processors=4, disks=4, total_buffer_pages=160)
        assert result.response_time == max(result.times.finish)
        assert result.times.first_finish <= result.times.average_finish
        assert result.times.average_finish <= result.response_time

    def test_busy_time_bounded_by_finish_time(self, workload):
        result = run(workload, processors=4, disks=4, total_buffer_pages=160)
        for busy, finish in zip(result.times.busy, result.times.finish):
            assert busy <= finish + 1e-9

    def test_one_disk_bottleneck(self, workload):
        # Figure 9: with one disk, adding processors stops helping.
        one = run(workload, processors=4, disks=1, total_buffer_pages=400)
        more = run(workload, processors=16, disks=1, total_buffer_pages=400)
        assert more.response_time > one.response_time * 0.7  # no big win

    def test_refinement_disabled_is_faster(self, workload):
        with_r = run(workload, processors=4, disks=4, total_buffer_pages=160)
        without = run(
            workload, processors=4, disks=4, total_buffer_pages=160, refinement=None
        )
        assert without.response_time < with_r.response_time
        assert without.pair_set() == workload[3]


class TestBufferBehaviour:
    def test_global_buffer_has_remote_hits(self, workload):
        result = run(
            workload, processors=6, disks=6, total_buffer_pages=240, variant=GSRR
        )
        assert result.metrics["remote_hits"] > 0

    def test_local_buffers_have_none(self, workload):
        result = run(
            workload, processors=6, disks=6, total_buffer_pages=240, variant=LSR
        )
        assert result.metrics["remote_hits"] == 0

    def test_bigger_buffer_fewer_disk_accesses(self, workload):
        small = run(workload, processors=4, disks=4, total_buffer_pages=32)
        large = run(workload, processors=4, disks=4, total_buffer_pages=2000)
        assert large.disk_accesses < small.disk_accesses

    def test_disk_accesses_at_least_pages_touched(self, workload):
        # Cold buffers: every distinct page used must be read at least once.
        result = run(workload, processors=4, disks=4, total_buffer_pages=4000)
        tree_r, tree_s, page_store, _ = workload
        assert result.disk_accesses >= 2  # roots at minimum
        # With a huge buffer, disk accesses approach distinct-page count:
        # every page at most once per processor partition (global buffer:
        # globally once).
        gd_result = run(
            workload,
            processors=4,
            disks=4,
            total_buffer_pages=4000,
            variant=GD,
        )
        assert gd_result.disk_accesses <= page_store.page_count

    def test_metrics_consistency(self, workload):
        result = run(workload, processors=4, disks=4, total_buffer_pages=160)
        m = result.metrics
        accesses = (
            m["path_hits"] + m["lru_hits"] + m["remote_hits"] + m["disk_reads"]
        )
        # Every node-pair processing accesses exactly two pages.
        assert accesses % 2 == 0
        assert m["candidates"] == len(result.pair_set())


class TestReassignment:
    def test_reassignment_reduces_finish_spread_for_lsr(self, workload):
        base = run(
            workload,
            processors=8,
            disks=8,
            total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.NONE),
        )
        balanced = run(
            workload,
            processors=8,
            disks=8,
            total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL),
        )
        spread_base = base.response_time - base.times.first_finish
        spread_balanced = balanced.response_time - balanced.times.first_finish
        assert spread_balanced < spread_base
        assert balanced.response_time <= base.response_time

    def test_reassignments_happen(self, workload):
        result = run(
            workload,
            processors=8,
            disks=8,
            total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL),
        )
        assert result.reassignments > 0
        assert result.metrics["pairs_reassigned"] > 0

    def test_none_policy_never_reassigns(self, workload):
        result = run(
            workload,
            processors=8,
            disks=8,
            total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.NONE),
        )
        assert result.reassignments == 0

    def test_gd_root_equals_none(self, workload):
        # Section 4.4: with dynamic assignment, root-level reassignment is
        # a no-op — the queue already hands out root pairs one by one.
        none = run(
            workload,
            processors=6,
            disks=6,
            total_buffer_pages=240,
            variant=GD,
            reassignment=ReassignmentPolicy(level=ReassignLevel.NONE),
        )
        root = run(
            workload,
            processors=6,
            disks=6,
            total_buffer_pages=240,
            variant=GD,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ROOT),
        )
        assert root.reassignments == 0
        assert none.response_time == root.response_time
        assert none.disk_accesses == root.disk_accesses


class TestTaskAccounting:
    def test_tasks_created_reported(self, workload):
        result = run(workload, processors=4, disks=4, total_buffer_pages=160)
        assert result.tasks_created > 0

    def test_static_assignment_balances_task_counts(self, workload):
        result = run(
            workload, processors=4, disks=4, total_buffer_pages=160, variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.NONE),
        )
        sizes = result.tasks_by_processor
        assert sum(sizes) == result.tasks_created
        assert max(sizes) - min(sizes) <= 1

    def test_dynamic_all_tasks_fetched(self, workload):
        result = run(
            workload, processors=4, disks=4, total_buffer_pages=160, variant=GD,
        )
        assert sum(result.tasks_by_processor) == result.tasks_created

    def test_invalid_processor_count(self, workload):
        with pytest.raises(ValueError):
            run(workload, processors=0)


class TestSelfJoin:
    def test_parallel_self_join_matches_sequential(self, workload):
        tree_r, _, _, _ = workload
        from repro.join import prepare_trees as prep

        expected = sequential_join(tree_r, tree_r).pair_set()
        store = prep(tree_r, tree_r)
        result = parallel_spatial_join(
            tree_r,
            tree_r,
            ParallelJoinConfig(processors=4, disks=4, total_buffer_pages=160),
            page_store=store,
        )
        assert result.pair_set() == expected

    def test_self_join_pages_counted_once(self, workload):
        tree_r, _, _, _ = workload
        from repro.join import prepare_trees as prep

        store = prep(tree_r, tree_r)
        # One pagination: page ids are dense over a single tree.
        assert store.page_count == sum(1 for _ in tree_r.nodes())


class TestMinimumSplitSize:
    def test_large_threshold_disables_stealing(self, workload):
        huge = ReassignmentPolicy(level=ReassignLevel.ALL, min_pairs=10**6)
        result = run(
            workload,
            processors=8,
            disks=8,
            total_buffer_pages=320,
            variant=LSR,
            reassignment=huge,
        )
        assert result.reassignments == 0
        assert result.pair_set() == workload[3]

    def test_threshold_reduces_reassignments(self, workload):
        eager = run(
            workload, processors=8, disks=8, total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL, min_pairs=1),
        )
        choosy = run(
            workload, processors=8, disks=8, total_buffer_pages=320,
            variant=LSR,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL, min_pairs=8),
        )
        assert choosy.reassignments <= eager.reassignments
        assert choosy.pair_set() == workload[3]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ReassignmentPolicy(min_pairs=0)
