"""Tests for the per-processor workload and stealing rules (section 3.4)."""

from repro.join import ReassignLevel, ReassignmentPolicy, VictimChoice, Workload
from repro.rtree import Node


def node(level):
    return Node(level)


class TestWorkloadOrdering:
    def test_pop_deepest_first(self):
        wl = Workload(task_level=2)
        a = (node(2), node(2))
        wl.push_task(*a)
        b = (node(1), node(1))
        wl.push_pair(1, *b)
        level, nr, ns = wl.pop_deepest()
        assert level == 1
        assert (nr, ns) == b

    def test_fifo_within_level(self):
        wl = Workload(task_level=1)
        pairs = [(node(1), node(1)) for _ in range(3)]
        for p in pairs:
            wl.push_task(*p)
        popped = [wl.pop_deepest()[1:] for _ in range(3)]
        assert popped == pairs

    def test_dfs_interleaving(self):
        # Children pushed after popping a parent are consumed before the
        # next parent — depth-first order.
        wl = Workload(task_level=1)
        parent_a = (node(1), node(1))
        parent_b = (node(1), node(1))
        wl.push_task(*parent_a)
        wl.push_task(*parent_b)
        level, *got_a = wl.pop_deepest()
        child = (node(0), node(0))
        wl.push_pair(0, *child)
        level, nr, ns = wl.pop_deepest()
        assert level == 0  # child before parent_b
        assert (nr, ns) == child

    def test_empty_pop_returns_none(self):
        wl = Workload(task_level=1)
        assert wl.pop_deepest() is None
        assert wl.empty
        assert len(wl) == 0

    def test_len_tracks_pushes_and_pops(self):
        wl = Workload(task_level=1)
        wl.push_task(node(1), node(1))
        wl.push_pair(0, node(0), node(0))
        assert len(wl) == 2
        wl.pop_deepest()
        assert len(wl) == 1


class TestReporting:
    def test_highest_pending(self):
        wl = Workload(task_level=2)
        wl.push_pair(0, node(0), node(0))
        wl.push_pair(0, node(0), node(0))
        wl.push_pair(2, node(2), node(2))
        assert wl.highest_pending() == (2, 1)

    def test_highest_pending_empty(self):
        assert Workload(task_level=2).highest_pending() is None


class TestStealingRules:
    def test_steal_takes_half_from_back(self):
        wl = Workload(task_level=1)
        pairs = [(node(1), node(1)) for _ in range(6)]
        for p in pairs:
            wl.push_task(*p)
        stolen = wl.steal_from(1)
        assert stolen == pairs[3:]  # back half, original order
        assert len(wl) == 3
        remaining = [wl.pop_deepest()[1:] for _ in range(3)]
        assert remaining == [tuple(p) for p in pairs[:3]]

    def test_steal_single_pair(self):
        wl = Workload(task_level=1)
        only = (node(1), node(1))
        wl.push_task(*only)
        assert wl.steal_from(1) == [only]
        assert wl.empty

    def test_steal_from_empty_level(self):
        wl = Workload(task_level=1)
        assert wl.steal_from(1) == []

    def test_stealable_level_none_policy(self):
        wl = Workload(task_level=2)
        wl.push_task(node(2), node(2))
        assert wl.stealable_level(ReassignLevel.NONE) is None

    def test_stealable_level_root_policy(self):
        wl = Workload(task_level=2)
        wl.push_pair(1, node(1), node(1))
        # Only deeper pairs pending: root policy finds nothing.
        assert wl.stealable_level(ReassignLevel.ROOT) is None
        wl.push_task(node(2), node(2))
        assert wl.stealable_level(ReassignLevel.ROOT) == 2

    def test_stealable_level_all_policy(self):
        wl = Workload(task_level=2)
        wl.push_pair(0, node(0), node(0))
        wl.push_pair(1, node(1), node(1))
        assert wl.stealable_level(ReassignLevel.ALL) == 1

    def test_no_pairs_lost_or_duplicated_by_stealing(self):
        wl = Workload(task_level=1)
        pairs = [(node(1), node(1)) for _ in range(9)]
        for p in pairs:
            wl.push_task(*p)
        thief = Workload(task_level=1)
        stolen = wl.steal_from(1)
        for s in stolen:
            thief.push_pair(1, *s)
        drained = []
        for source in (wl, thief):
            while True:
                item = source.pop_deepest()
                if item is None:
                    break
                drained.append(item[1:])
        assert sorted(map(id, (p for pair in drained for p in pair))) == sorted(
            map(id, (n for pair in pairs for n in pair))
        )


class TestPolicy:
    def test_enabled(self):
        assert not ReassignmentPolicy(level=ReassignLevel.NONE).enabled
        assert ReassignmentPolicy(level=ReassignLevel.ROOT).enabled
        assert ReassignmentPolicy(level=ReassignLevel.ALL).enabled

    def test_rng_seeded(self):
        p = ReassignmentPolicy(victim=VictimChoice.ARBITRARY, seed=5)
        assert p.make_rng().random() == p.make_rng().random()
