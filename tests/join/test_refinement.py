"""Tests for the refinement cost model and exact refinement."""

import pytest

from repro.geometry import Rect
from repro.join import ExactRefinement, RefinementModel, overlap_degree


class TestOverlapDegree:
    def test_disjoint_zero(self):
        assert overlap_degree(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)) == 0.0

    def test_identical_one(self):
        r = Rect(0, 0, 2, 3)
        assert overlap_degree(r, r) == pytest.approx(1.0)

    def test_partial_in_unit_interval(self):
        d = overlap_degree(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3))
        assert 0.0 < d < 1.0

    def test_symmetric(self):
        a, b = Rect(0, 0, 2, 2), Rect(1, 0.5, 5, 4)
        assert overlap_degree(a, b) == pytest.approx(overlap_degree(b, a))

    def test_containment_not_saturated(self):
        # A tiny rectangle inside a huge one: high coverage of the small
        # one, but the extent dissimilarity keeps the degree below 1.
        d = overlap_degree(Rect(0, 0, 100, 100), Rect(50, 50, 50.1, 50.1))
        assert 0.0 < d < 0.2

    def test_degenerate_segment_crossing_box(self):
        d = overlap_degree(Rect(0, 1, 4, 1), Rect(1, 0, 2, 2))
        assert 0.0 < d <= 1.0

    def test_coincident_points(self):
        assert overlap_degree(Rect(1, 1, 1, 1), Rect(1, 1, 1, 1)) == 1.0


class TestRefinementModel:
    def test_paper_range(self):
        model = RefinementModel()
        lo = model.cost(Rect(0, 0, 1, 1), Rect(1, 1, 2, 2))  # corner touch
        hi = model.cost(Rect(0, 0, 1, 1), Rect(0, 0, 1, 1))  # identical
        assert lo == pytest.approx(2e-3)
        assert hi == pytest.approx(18e-3)

    def test_monotone_in_overlap(self):
        model = RefinementModel()
        barely = model.cost(Rect(0, 0, 2, 2), Rect(1.9, 1.9, 4, 4))
        half = model.cost(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3))
        full = model.cost(Rect(0, 0, 2, 2), Rect(0, 0, 2, 2))
        assert barely < half < full

    def test_mean_cost_near_paper_average(self):
        # Calibration check on the standard workload: ~10 ms average
        # (section 4.2), measured over the candidate pairs of a real join.
        from repro.datagen import build_tree, paper_maps
        from repro.join import sequential_join

        m1, m2 = paper_maps(scale=0.05)
        t1, t2 = build_tree(m1), build_tree(m2)
        rects1 = {o.oid: o.mbr for o in m1.objects}
        rects2 = {o.oid: o.mbr for o in m2.objects}
        model = RefinementModel()
        result = sequential_join(t1, t2)
        assert result.candidates > 100
        mean = sum(
            model.cost(rects1[r], rects2[s]) for r, s in result.pairs
        ) / result.candidates
        assert 7e-3 <= mean <= 13e-3

    def test_custom_parameters(self):
        model = RefinementModel(t_min=1e-3, t_max=3e-3, exponent=1.0)
        r = Rect(0, 0, 1, 1)
        assert model.cost(r, r) == pytest.approx(3e-3)


class TestExactRefinement:
    def test_filters_false_hits(self):
        # Two L-shaped polylines whose MBRs intersect but geometry doesn't.
        geo_r = {0: ((0.0, 0.0), (1.0, 0.0), (1.0, 0.2))}
        geo_s = {0: ((0.0, 1.0), (0.0, 0.3), (0.3, 1.0))}
        refinement = ExactRefinement(geo_r, geo_s)
        assert not refinement.is_answer(0, 0)
        assert refinement.tests == 1
        assert refinement.answers == 0

    def test_accepts_answers(self):
        geo_r = {0: ((0.0, 0.0), (2.0, 2.0))}
        geo_s = {0: ((0.0, 2.0), (2.0, 0.0))}
        refinement = ExactRefinement(geo_r, geo_s)
        assert refinement.is_answer(0, 0)
        assert refinement.answers == 1

    def test_filter_answers(self):
        geo_r = {0: ((0.0, 0.0), (2.0, 2.0)), 1: ((5.0, 5.0), (6.0, 6.0))}
        geo_s = {0: ((0.0, 2.0), (2.0, 0.0)), 1: ((5.0, 6.0), (6.0, 6.5))}
        refinement = ExactRefinement(geo_r, geo_s)
        answers = refinement.filter_answers([(0, 0), (1, 1)])
        assert answers == [(0, 0)]
        assert refinement.tests == 2
