"""Tests for the real multiprocessing filter-step backend."""

import time
import warnings

import pytest

from repro.datagen import build_tree, paper_maps
from repro.join import multiprocessing_join, sequential_join
from repro.join import mp as mp_module
from repro.join.mp import join_subtrees
from repro.join.parallel import prepare_trees
from repro.rtree import RStarTree


@pytest.fixture(scope="module")
def trees():
    m1, m2 = paper_maps(scale=0.01)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    prepare_trees(tree_r, tree_s)
    return tree_r, tree_s


class TestJoinSubtrees:
    def test_whole_tree_pair_equals_sequential(self, trees):
        tree_r, tree_s = trees
        pairs = join_subtrees(tree_r.root, tree_s.root)
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()


class TestMultiprocessingJoin:
    def test_single_process_fallback(self, trees):
        tree_r, tree_s = trees
        pairs = multiprocessing_join(tree_r, tree_s, processes=1)
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()

    def test_two_processes_match_sequential(self, trees):
        tree_r, tree_s = trees
        pairs = multiprocessing_join(tree_r, tree_s, processes=2)
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()

    def test_four_processes_match_sequential(self, trees):
        tree_r, tree_s = trees
        pairs = multiprocessing_join(tree_r, tree_s, processes=4)
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()

    def test_no_duplicates(self, trees):
        tree_r, tree_s = trees
        pairs = multiprocessing_join(tree_r, tree_s, processes=3)
        assert len(pairs) == len(set(pairs))

    def test_empty_trees(self):
        empty = RStarTree()
        assert multiprocessing_join(empty, empty, processes=2) == []

    def test_default_process_count(self, trees):
        tree_r, tree_s = trees
        pairs = multiprocessing_join(tree_r, tree_s)
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()


class TestForkGuard:
    def test_work_global_reset_after_pool_run(self, trees):
        """The parent must not keep pinning both trees via _WORK after
        the pool has finished (regression: fork-inherited state leak)."""
        tree_r, tree_s = trees
        multiprocessing_join(tree_r, tree_s, processes=2)
        assert mp_module._WORK is None

    def test_spawn_only_platform_warns_and_falls_back(self, trees, monkeypatch):
        """Without fork (spawn-only platforms) the join must warn and run
        the serial path — same answers, no pool, _WORK untouched."""
        tree_r, tree_s = trees
        monkeypatch.setattr(
            mp_module.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        with pytest.warns(RuntimeWarning, match="fork"):
            pairs = multiprocessing_join(tree_r, tree_s, processes=4)
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()
        assert mp_module._WORK is None

    def test_single_process_does_not_warn(self, trees):
        tree_r, tree_s = trees
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pairs = multiprocessing_join(tree_r, tree_s, processes=1)
        assert len(pairs) > 0


def _hang_forever(bounds):
    # Stands in for _run_task_range; must be module-level so the pool can
    # pickle a reference to it.
    time.sleep(600)


class TestDeadline:
    def test_hung_workers_fall_back_to_serial(self, trees, monkeypatch):
        """Workers that never deliver must not block the caller forever:
        the deadline terminates the pool, warns, and recomputes serially
        (regression: pool.map had no timeout)."""
        tree_r, tree_s = trees
        # The serial fallback path uses join_subtrees directly and is
        # unaffected by the patch.
        monkeypatch.setattr(mp_module, "_run_task_range", _hang_forever)
        started = time.perf_counter()
        with pytest.warns(RuntimeWarning, match="serial fallback"):
            pairs = multiprocessing_join(
                tree_r, tree_s, processes=2, timeout_s=0.5
            )
        assert time.perf_counter() - started < 30
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()
        assert mp_module._WORK is None

    def test_generous_deadline_runs_parallel_without_warning(self, trees):
        tree_r, tree_s = trees
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pairs = multiprocessing_join(
                tree_r, tree_s, processes=2, timeout_s=120.0
            )
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()

    def test_timeout_must_be_positive(self, trees):
        tree_r, tree_s = trees
        with pytest.raises(ValueError):
            multiprocessing_join(tree_r, tree_s, processes=2, timeout_s=0.0)


class TestMultiprocessingRefinement:
    def test_geometry_both_or_neither(self, trees):
        tree_r, tree_s = trees
        with pytest.raises(ValueError):
            multiprocessing_join(tree_r, tree_s, processes=1, geometry_r={})

    def test_refined_answers_match_sequential_refinement(self):
        from repro.datagen import paper_maps
        from repro.join import ExactRefinement

        m1, m2 = paper_maps(scale=0.01, include_geometry=True)
        tree_r, tree_s = build_tree(m1), build_tree(m2)
        prepare_trees(tree_r, tree_s)
        geo1 = {o.oid: o.points for o in m1.objects}
        geo2 = {o.oid: o.points for o in m2.objects}
        candidates = sequential_join(tree_r, tree_s)
        expected = set(
            ExactRefinement(geo1, geo2).filter_answers(candidates.pairs)
        )
        for processes in (1, 2):
            answers = multiprocessing_join(
                tree_r, tree_s, processes=processes,
                geometry_r=geo1, geometry_s=geo2,
            )
            assert set(answers) == expected
            assert len(answers) == len(set(answers))


class TestWorkerDeathRegression:
    """A worker dying mid-range must not lose its whole static share.

    The legacy path handed each process one contiguous task range; the
    recoverable path leases chunk-sized pieces instead, so a death costs
    one chunk-redispatch, not a quarter of the join.
    """

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="requires the fork start method",
    )
    def test_killed_worker_loses_one_chunk_not_its_range(self, trees):
        from repro.faults import FaultPlan
        from repro.join.mp import fault_tolerant_join
        from repro.recovery import RecoveryConfig

        tree_r, tree_s = trees
        expected = sequential_join(tree_r, tree_s).pair_set()
        recovery = RecoveryConfig(
            lease_s=5.0, heartbeat_s=0.5, sweep_s=0.05, chunk_tasks=2
        )
        # Kill whichever worker starts task 4 — mid-chunk, mid-range.
        pairs, stats = fault_tolerant_join(
            tree_r,
            tree_s,
            2,
            recovery=recovery,
            faults=FaultPlan(seed=0, kill_at_task=(4,)),
        )
        assert set(pairs) == expected
        assert len(pairs) == len(set(pairs))
        # The dead worker's chunk was re-dispatched to the pool — no
        # serial fallback, and only the killed chunk was re-run.
        assert stats["inline_runs"] == 0
        assert stats["redispatches"] == 1
        assert stats["fault_counts"]["task_kills"] == 1
        assert stats["tasks_committed"] == stats["chunks"]
