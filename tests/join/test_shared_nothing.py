"""Tests for the shared-nothing join (paper's future-work architecture)."""

import pytest

from repro.datagen import build_tree, paper_maps
from repro.join import prepare_trees, sequential_join
from repro.join.assignment import AssignmentMode
from repro.join.shared_nothing import (
    NetworkParams,
    Placement,
    SharedNothingConfig,
    shared_nothing_join,
)


@pytest.fixture(scope="module")
def workload():
    m1, m2 = paper_maps(scale=0.02)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    page_store = prepare_trees(tree_r, tree_s)
    expected = sequential_join(tree_r, tree_s).pair_set()
    return tree_r, tree_s, page_store, expected


def run(workload, **kwargs):
    tree_r, tree_s, page_store, _ = workload
    return shared_nothing_join(
        tree_r, tree_s, SharedNothingConfig(**kwargs), page_store=page_store
    )


class TestNetworkParams:
    def test_derived_times(self):
        net = NetworkParams(latency=1e-3, bandwidth_mb_per_s=4.0, page_size=4096)
        assert net.page_transfer_time == pytest.approx(4096 / (4 * 1024 * 1024))
        assert net.request_round_trip == pytest.approx(2e-3 + net.page_transfer_time)
        assert net.control_round_trip == pytest.approx(2e-3)


class TestCorrectness:
    @pytest.mark.parametrize("placement", list(Placement), ids=lambda p: p.value)
    @pytest.mark.parametrize(
        "assignment",
        [AssignmentMode.STATIC_RANGE, AssignmentMode.STATIC_ROUND_ROBIN,
         AssignmentMode.DYNAMIC],
        ids=["range", "rr", "dynamic"],
    )
    def test_every_combination_matches_sequential(
        self, workload, placement, assignment
    ):
        result = run(
            workload,
            processors=4,
            buffer_pages_per_processor=40,
            placement=placement,
            assignment=assignment,
        )
        assert result.pair_set() == workload[3]

    def test_single_node(self, workload):
        result = run(workload, processors=1, buffer_pages_per_processor=100)
        assert result.pair_set() == workload[3]
        assert result.metrics["remote_fetches"] == 0

    def test_no_duplicate_candidates(self, workload):
        result = run(workload, processors=6, buffer_pages_per_processor=40)
        total = sum(len(p) for p in result.pairs_by_processor)
        assert total == len(result.pair_set())

    def test_deterministic(self, workload):
        a = run(workload, processors=4, buffer_pages_per_processor=40)
        b = run(workload, processors=4, buffer_pages_per_processor=40)
        assert a.response_time == b.response_time
        assert a.disk_accesses == b.disk_accesses


class TestArchitectureBehaviour:
    def test_remote_fetches_happen_with_multiple_nodes(self, workload):
        result = run(workload, processors=4, buffer_pages_per_processor=40)
        assert result.metrics["remote_fetches"] > 0

    def test_spatial_placement_with_range_assignment_is_more_local(self, workload):
        spatial = run(
            workload,
            processors=8,
            buffer_pages_per_processor=40,
            placement=Placement.SPATIAL,
            assignment=AssignmentMode.STATIC_RANGE,
        )
        blind = run(
            workload,
            processors=8,
            buffer_pages_per_processor=40,
            placement=Placement.ROUND_ROBIN,
            assignment=AssignmentMode.STATIC_RANGE,
        )
        # Spatial declustering aligned with spatially contiguous workloads
        # keeps most page accesses on the owning node.
        assert spatial.metrics["remote_fetches"] < blind.metrics["remote_fetches"]

    def test_replication_allowed(self, workload):
        # Unlike the SVM global buffer, remote pages are cached locally, so
        # the same page may be buffered on several nodes; with tiny remote
        # traffic that manifests as owner hits AND repeated disk reads
        # being *possible* — here we just assert the counters exist and the
        # run completes with consistent accounting.
        result = run(workload, processors=4, buffer_pages_per_processor=40)
        m = result.metrics
        accesses = (
            m["path_hits"] + m["lru_hits"] + m["remote_fetches"]
            + m["disk_reads"] - m["owner_buffer_hits"]
        )
        assert accesses >= 0  # counters are wired up

    def test_parallel_faster_than_single(self, workload):
        single = run(workload, processors=1, buffer_pages_per_processor=100)
        eight = run(workload, processors=8, buffer_pages_per_processor=40)
        assert eight.response_time < single.response_time

    def test_invalid_processor_count(self, workload):
        with pytest.raises(ValueError):
            run(workload, processors=0)
