"""Tests for task creation (section 3.1) and task assignment (3.1/3.3)."""

import random

import pytest

from repro.geometry import Rect
from repro.join import (
    GD,
    GSRR,
    LSR,
    AssignmentMode,
    BufferMode,
    Task,
    count_root_tasks,
    create_tasks,
    static_range_assignment,
    static_round_robin_assignment,
)
from repro.join.parallel import prepare_trees
from repro.rtree import str_bulk_load


def make_trees(n_r=400, n_s=400, seed=0, caps=10):
    rng = random.Random(seed)

    def items(n, offset):
        out = []
        for i in range(n):
            x, y = rng.uniform(0, 50), rng.uniform(0, 50)
            out.append((i + offset, Rect(x, y, x + rng.uniform(0, 3), y + rng.uniform(0, 3))))
        return out

    tree_r = str_bulk_load(items(n_r, 0), dir_capacity=caps, data_capacity=caps)
    tree_s = str_bulk_load(items(n_s, 0), dir_capacity=caps, data_capacity=caps)
    prepare_trees(tree_r, tree_s)
    return tree_r, tree_s


class TestCreateTasks:
    def test_tasks_are_intersecting_pairs(self):
        tree_r, tree_s = make_trees()
        tasks = create_tasks(tree_r, tree_s)
        assert tasks
        for task in tasks:
            a = Rect(*task.node_r.mbr_tuple())
            b = Rect(*task.node_s.mbr_tuple())
            assert a.intersects(b)

    def test_task_count_matches_m(self):
        tree_r, tree_s = make_trees()
        tasks = create_tasks(tree_r, tree_s)
        assert len(tasks) == count_root_tasks(tree_r, tree_s)

    def test_plane_sweep_order(self):
        tree_r, tree_s = make_trees()
        tasks = create_tasks(tree_r, tree_s)
        positions = [t.sweep_position for t in tasks]
        assert positions == sorted(positions)

    def test_descends_when_too_few(self):
        tree_r, tree_s = make_trees()
        m = count_root_tasks(tree_r, tree_s)
        tasks = create_tasks(tree_r, tree_s, min_tasks=m + 1)
        assert len(tasks) > m
        # One level deeper than the root-entry level.
        root_task_level = tree_r.root.level - 1
        assert all(t.level == root_task_level - 1 for t in tasks)
        positions = [t.sweep_position for t in tasks]
        assert positions == sorted(positions)

    def test_descends_at_most_to_leaves(self):
        tree_r, tree_s = make_trees(n_r=150, n_s=150)
        tasks = create_tasks(tree_r, tree_s, min_tasks=10**9)
        assert all(t.level == 0 for t in tasks)

    def test_empty_tree_no_tasks(self):
        from repro.rtree import RStarTree

        tree_r, tree_s = make_trees()
        empty = RStarTree(dir_capacity=10, data_capacity=10)
        assert create_tasks(empty, tree_s) == []
        assert create_tasks(tree_r, empty) == []

    def test_disjoint_trees_no_tasks(self):
        rng = random.Random(1)
        items_a = [(i, Rect(i, 0, i + 0.5, 1)) for i in range(100)]
        items_b = [(i, Rect(i + 1000, 0, i + 1000.5, 1)) for i in range(100)]
        a = str_bulk_load(items_a, dir_capacity=8, data_capacity=8)
        b = str_bulk_load(items_b, dir_capacity=8, data_capacity=8)
        assert create_tasks(a, b) == []
        assert count_root_tasks(a, b) == 0

    def test_single_leaf_trees(self):
        a = str_bulk_load([(0, Rect(0, 0, 1, 1))], dir_capacity=8, data_capacity=8)
        b = str_bulk_load([(0, Rect(0.5, 0.5, 2, 2))], dir_capacity=8, data_capacity=8)
        tasks = create_tasks(a, b)
        assert len(tasks) == 1
        assert tasks[0].node_r is a.root

    def test_unequal_heights_rejected(self):
        big = str_bulk_load(
            [(i, Rect(i, 0, i + 0.5, 1)) for i in range(200)],
            dir_capacity=8,
            data_capacity=8,
        )
        small = str_bulk_load([(0, Rect(0, 0, 1, 1))], dir_capacity=8, data_capacity=8)
        with pytest.raises(ValueError):
            create_tasks(big, small)


class TestStaticAssignments:
    def make_tasks(self, count):
        tree_r, tree_s = make_trees()
        tasks = create_tasks(tree_r, tree_s, min_tasks=count)
        assert len(tasks) >= count
        return tasks

    def test_range_sizes_follow_paper_rule(self):
        tasks = self.make_tasks(10)
        m, n = len(tasks), 4
        workloads = static_range_assignment(tasks, n)
        sizes = [len(w) for w in workloads]
        base, extra = divmod(m, n)
        assert sizes == [base + 1] * extra + [base] * (n - extra)

    def test_range_is_contiguous(self):
        tasks = self.make_tasks(10)
        workloads = static_range_assignment(tasks, 3)
        flattened = [t for w in workloads for t in w]
        assert flattened == tasks

    def test_round_robin_deals_in_order(self):
        tasks = self.make_tasks(10)
        n = 3
        workloads = static_round_robin_assignment(tasks, n)
        for p, workload in enumerate(workloads):
            assert workload == tasks[p::n]

    def test_round_robin_sizes_balanced(self):
        tasks = self.make_tasks(10)
        workloads = static_round_robin_assignment(tasks, 4)
        sizes = [len(w) for w in workloads]
        assert max(sizes) - min(sizes) <= 1

    def test_every_task_assigned_exactly_once(self):
        tasks = self.make_tasks(10)
        for assign in (static_range_assignment, static_round_robin_assignment):
            workloads = assign(tasks, 5)
            seen = [t for w in workloads for t in w]
            assert len(seen) == len(tasks)
            assert {id(t) for t in seen} == {id(t) for t in tasks}

    def test_more_processors_than_tasks(self):
        tasks = self.make_tasks(3)[:3]
        workloads = static_range_assignment(tasks, 8)
        assert sum(len(w) for w in workloads) == 3
        assert all(len(w) <= 1 for w in workloads)

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            static_range_assignment([], 0)
        with pytest.raises(ValueError):
            static_round_robin_assignment([], 0)


class TestVariants:
    def test_paper_names(self):
        assert LSR.short_name == "lsr"
        assert GSRR.short_name == "gsrr"
        assert GD.short_name == "gd"

    def test_variant_fields(self):
        assert LSR.buffer is BufferMode.LOCAL
        assert LSR.assignment is AssignmentMode.STATIC_RANGE
        assert GSRR.buffer is BufferMode.GLOBAL
        assert GSRR.assignment is AssignmentMode.STATIC_ROUND_ROBIN
        assert GD.buffer is BufferMode.GLOBAL
        assert GD.assignment is AssignmentMode.DYNAMIC
