"""Unit tests for join result containers."""

from repro.join import ParallelJoinResult, SequentialJoinResult
from repro.sim import Metrics, ProcessorTimes


class TestSequentialJoinResult:
    def test_counts(self):
        r = SequentialJoinResult(pairs=[(1, 2), (3, 4)])
        assert r.candidates == 2
        assert r.pair_set() == {(1, 2), (3, 4)}

    def test_repr(self):
        r = SequentialJoinResult(pairs=[], node_pairs_visited=3, intersection_tests=7)
        text = repr(r)
        assert "0 candidates" in text and "3 node pairs" in text


class TestParallelJoinResult:
    def make(self, finishes, pairs):
        times = ProcessorTimes(len(finishes))
        times.finish = list(finishes)
        return ParallelJoinResult(
            pairs_by_processor=pairs,
            metrics=Metrics(),
            times=times,
        )

    def test_candidates_and_pair_set(self):
        r = self.make([1.0, 2.0], [[(1, 2)], [(3, 4), (5, 6)]])
        assert r.candidates == 3
        assert r.pair_set() == {(1, 2), (3, 4), (5, 6)}

    def test_response_time(self):
        r = self.make([1.0, 4.0, 2.0], [[], [], []])
        assert r.response_time == 4.0

    def test_speedup(self):
        single = self.make([10.0], [[]])
        four = self.make([2.0, 2.5, 2.0, 2.2], [[], [], [], []])
        assert four.speedup_against(single) == 4.0

    def test_speedup_zero_response(self):
        single = self.make([10.0], [[]])
        instant = self.make([0.0], [[]])
        assert instant.speedup_against(single) == float("inf")

    def test_disk_accesses_delegates_to_metrics(self):
        r = self.make([1.0], [[]])
        r.metrics.record_disk_read(0)
        assert r.disk_accesses == 1

    def test_repr(self):
        r = self.make([1.5], [[(1, 2)]])
        assert "candidates=1" in repr(r)
