"""Differential parity: joins over the flat packed backend.

The vectorized frontier join, the backend dispatch inside
``sequential_join`` / ``multiprocessing_join``, and the simulated
LSR/GSRR/GD variants (running the packed index through its node-tree
adapter) must all return exactly the brute-force pair set of
:mod:`tests.flat_oracle` — for flat-vs-flat, mixed-backend and self-join
inputs alike.
"""

import warnings

import pytest

from repro.join import (
    GD,
    GSRR,
    LSR,
    ParallelJoinConfig,
    multiprocessing_join,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)
from repro.join.flat import flat_join, flat_join_pairs, flat_multiprocessing_join
from repro.join.refinement import ExactRefinement

from tests.flat_oracle import (
    assert_join_parity,
    brute_join,
    build_both,
    dataset,
)


@pytest.fixture(scope="module")
def workload():
    items_r = dataset("uniform", n=500, seed=21)
    # 480 keeps both packed trees (node_size 8) at the same height, so
    # the equal-height task-creation paths of the simulator apply.
    items_s = dataset("clustered", n=480, seed=22)
    node_r, flat_r = build_both(items_r)
    node_s, flat_s = build_both(items_s)
    expected = brute_join(items_r, items_s)
    return items_r, items_s, node_r, node_s, flat_r, flat_s, expected


class TestSequentialParity:
    def test_flat_join_kernel(self, workload):
        items_r, items_s, _, _, flat_r, flat_s, _ = workload
        result = flat_join(flat_r, flat_s)
        assert_join_parity(items_r, items_s, result.pairs)
        assert result.intersection_tests > 0
        assert result.node_pairs_visited > 0

    def test_dispatch_from_sequential_join(self, workload):
        _, _, node_r, node_s, flat_r, flat_s, expected = workload
        assert set(sequential_join(flat_r, flat_s).pairs) == expected
        assert set(sequential_join(node_r, node_s).pairs) == expected

    def test_mixed_backends(self, workload):
        _, _, node_r, node_s, flat_r, flat_s, expected = workload
        assert set(sequential_join(flat_r, node_s).pairs) == expected
        assert set(sequential_join(node_r, flat_s).pairs) == expected

    def test_self_join(self, workload):
        items_r, _, _, _, flat_r, _, _ = workload
        assert_join_parity(items_r, items_r, flat_join_pairs(flat_r, flat_r))

    def test_unequal_heights(self):
        big = dataset("uniform", n=900, seed=31)
        small = dataset("uniform", n=12, seed=32)
        _, flat_big = build_both(big)
        _, flat_small = build_both(small)
        assert flat_big.num_levels != flat_small.num_levels
        assert_join_parity(big, small, flat_join_pairs(flat_big, flat_small))
        assert_join_parity(small, big, flat_join_pairs(flat_small, flat_big))

    def test_empty_inputs(self):
        items = dataset("uniform", n=40, seed=33)
        _, flat = build_both(items)
        _, empty = build_both([])
        assert flat_join_pairs(flat, empty) == []
        assert flat_join_pairs(empty, flat) == []
        assert flat_join_pairs(empty, empty) == []

    def test_refinement_filters_candidates(self, workload):
        items_r, items_s, _, _, flat_r, flat_s, _ = workload
        # Exact geometry = the MBR corners, so refinement keeps everything;
        # the point is that the refinement seam runs on the flat path.
        def corners(items):
            return {
                oid: ((r.xl, r.yl), (r.xu, r.yl), (r.xu, r.yu), (r.xl, r.yu))
                for oid, r in items
            }

        refinement = ExactRefinement(corners(items_r), corners(items_s))
        refined = flat_join(flat_r, flat_s, refinement=refinement).pairs
        unrefined = flat_join_pairs(flat_r, flat_s)
        assert set(refined) <= set(unrefined)


class TestMultiprocessingParity:
    def test_flat_fork_path(self, workload):
        items_r, items_s, _, _, flat_r, flat_s, _ = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            pairs = flat_multiprocessing_join(flat_r, flat_s, 4)
        assert_join_parity(items_r, items_s, pairs)

    def test_dispatch_from_multiprocessing_join(self, workload):
        _, _, _, _, flat_r, flat_s, expected = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert set(multiprocessing_join(flat_r, flat_s, 4)) == expected

    def test_serial_fallback(self, workload):
        _, _, _, _, flat_r, flat_s, expected = workload
        assert set(multiprocessing_join(flat_r, flat_s, 1)) == expected

    def test_recovery_routes_through_node_path(self, workload, tmp_path):
        _, _, _, _, flat_r, flat_s, expected = workload
        pairs = multiprocessing_join(
            flat_r,
            flat_s,
            1,
            journal_path=str(tmp_path / "join.jnl"),
        )
        assert set(pairs) == expected


STRATEGIES = [
    pytest.param(variant, id=variant.short_name)
    for variant in (LSR, GSRR, GD)
]


class TestSimulatedStrategies:
    @pytest.mark.parametrize("variant", STRATEGIES)
    def test_simulated_join_over_packed_index(self, workload, variant):
        _, _, _, _, flat_r, flat_s, expected = workload
        page_store = prepare_trees(flat_r, flat_s)
        result = parallel_spatial_join(
            flat_r,
            flat_s,
            ParallelJoinConfig(
                processors=4, disks=4, total_buffer_pages=160, variant=variant
            ),
            page_store=page_store,
        )
        assert result.pair_set() == expected
        assert result.disk_accesses > 0
