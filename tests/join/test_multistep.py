"""Tests for the multi-step pipeline with the hull second filter."""

import pytest

from repro.datagen import build_tree, paper_maps
from repro.join import ExactRefinement, sequential_join
from repro.join.multistep import MultiStepResult, SecondFilter, multi_step_join


@pytest.fixture(scope="module")
def workload():
    m1, m2 = paper_maps(scale=0.01, include_geometry=True)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    geo1 = {o.oid: o.points for o in m1.objects}
    geo2 = {o.oid: o.points for o in m2.objects}
    return tree_r, tree_s, geo1, geo2


class TestSecondFilter:
    def test_soundness_eliminated_pairs_are_false_hits(self, workload):
        tree_r, tree_s, geo1, geo2 = workload
        candidates = sequential_join(tree_r, tree_s).pairs
        second = SecondFilter(geo1, geo2)
        survivors = set(second.filter(candidates))
        refinement = ExactRefinement(geo1, geo2)
        answers = set(refinement.filter_answers(candidates))
        # No answer may be eliminated by a conservative approximation.
        assert answers <= survivors

    def test_eliminates_some_false_hits(self, workload):
        tree_r, tree_s, geo1, geo2 = workload
        candidates = sequential_join(tree_r, tree_s).pairs
        second = SecondFilter(geo1, geo2)
        second.filter(candidates)
        assert second.tests == len(candidates)
        assert second.eliminated > 0

    def test_hull_cache_reused(self, workload):
        tree_r, tree_s, geo1, geo2 = workload
        candidates = sequential_join(tree_r, tree_s).pairs[:50]
        second = SecondFilter(geo1, geo2)
        second.filter(candidates)
        # Hulls are cached per object, not per pair.
        assert len(second._hulls_r) <= len(geo1)
        assert len(second._hulls_s) <= len(geo2)

    def test_obvious_cases(self):
        # A cross (hulls intersect, geometry intersects) and two hooks
        # (MBRs intersect, hulls do not).
        geo_r = {
            "cross": ((0.0, 0.0), (2.0, 2.0)),
            "hook": ((0.0, 0.0), (1.0, 0.0)),
        }
        geo_s = {
            "cross": ((0.0, 2.0), (2.0, 0.0)),
            "hook": ((0.0, 0.5), (1.0, 1.5)),
        }
        second = SecondFilter(geo_r, geo_s)
        assert second.passes("cross", "cross")
        assert not second.passes("hook", "hook")


class TestMultiStepJoin:
    def test_same_answers_with_and_without_second_filter(self, workload):
        tree_r, tree_s, geo1, geo2 = workload
        with_filter = multi_step_join(tree_r, tree_s, geo1, geo2)
        without = multi_step_join(
            tree_r, tree_s, geo1, geo2, use_second_filter=False
        )
        assert set(with_filter.answers) == set(without.answers)

    def test_second_filter_saves_exact_tests(self, workload):
        tree_r, tree_s, geo1, geo2 = workload
        with_filter = multi_step_join(tree_r, tree_s, geo1, geo2)
        without = multi_step_join(
            tree_r, tree_s, geo1, geo2, use_second_filter=False
        )
        assert with_filter.exact_tests < without.exact_tests
        assert with_filter.hull_eliminated > 0
        assert without.hull_survivors == without.mbr_candidates

    def test_step_accounting(self, workload):
        tree_r, tree_s, geo1, geo2 = workload
        result = multi_step_join(tree_r, tree_s, geo1, geo2)
        assert result.mbr_candidates >= result.hull_survivors
        assert result.hull_survivors >= len(result.answers)
        assert result.exact_tests == result.hull_survivors
        assert result.false_hits_after_hull == result.hull_survivors - len(
            result.answers
        )

    def test_repr(self):
        r = MultiStepResult(answers=[(1, 2)], mbr_candidates=10, hull_survivors=5, exact_tests=5)
        assert "mbr=10" in repr(r)
