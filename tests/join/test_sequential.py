"""Tests for the sequential BKS93 join."""

import random

import pytest

from repro.geometry import Rect, brute_join_pairs
from repro.join import ExactRefinement, sequential_join
from repro.rtree import RStarTree, str_bulk_load


def random_items(n, seed, extent=50.0, max_size=3.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        out.append((i, Rect(x, y, x + rng.uniform(0, max_size), y + rng.uniform(0, max_size))))
    return out


def brute_pairs(items_r, items_s):
    return {
        (i, j)
        for i, r in items_r
        for j, s in items_s
        if r.intersects(s)
    }


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force(self, seed):
        items_r = random_items(300, seed)
        items_s = random_items(250, seed + 50)
        tree_r = str_bulk_load(items_r, dir_capacity=8, data_capacity=8)
        tree_s = str_bulk_load(items_s, dir_capacity=8, data_capacity=8)
        result = sequential_join(tree_r, tree_s)
        assert result.pair_set() == brute_pairs(items_r, items_s)

    def test_empty_trees(self):
        empty = RStarTree(dir_capacity=8, data_capacity=8)
        other = str_bulk_load(random_items(10, 1), dir_capacity=8, data_capacity=8)
        assert sequential_join(empty, other).pairs == []
        assert sequential_join(other, empty).pairs == []
        assert sequential_join(empty, empty).pairs == []

    def test_disjoint_maps(self):
        items_r = random_items(50, 2, extent=10)
        items_s = [(i, Rect(r.xl + 100, r.yl, r.xu + 100, r.yu)) for i, r in random_items(50, 3, extent=10)]
        tree_r = str_bulk_load(items_r, dir_capacity=8, data_capacity=8)
        tree_s = str_bulk_load(items_s, dir_capacity=8, data_capacity=8)
        assert sequential_join(tree_r, tree_s).pairs == []

    def test_unequal_heights(self):
        items_r = random_items(500, 4)
        items_s = random_items(12, 5)  # single-leaf tree
        tree_r = str_bulk_load(items_r, dir_capacity=8, data_capacity=8)
        tree_s = str_bulk_load(items_s, dir_capacity=16, data_capacity=16)
        assert tree_r.height > tree_s.height
        result = sequential_join(tree_r, tree_s)
        assert result.pair_set() == brute_pairs(items_r, items_s)

    def test_unequal_heights_other_side(self):
        items_r = random_items(12, 6)
        items_s = random_items(500, 7)
        tree_r = str_bulk_load(items_r, dir_capacity=16, data_capacity=16)
        tree_s = str_bulk_load(items_s, dir_capacity=8, data_capacity=8)
        result = sequential_join(tree_r, tree_s)
        assert result.pair_set() == brute_pairs(items_r, items_s)

    def test_self_join(self):
        items = random_items(200, 8)
        tree = str_bulk_load(items, dir_capacity=8, data_capacity=8)
        result = sequential_join(tree, tree)
        want = brute_pairs(items, items)
        assert result.pair_set() == want
        # Every object intersects itself.
        assert all((i, i) in want for i, _ in items)


class TestTuningTechniques:
    def setup_method(self):
        self.items_r = random_items(400, 20)
        self.items_s = random_items(400, 21)
        self.tree_r = str_bulk_load(self.items_r, dir_capacity=10, data_capacity=10)
        self.tree_s = str_bulk_load(self.items_s, dir_capacity=10, data_capacity=10)
        self.expected = brute_pairs(self.items_r, self.items_s)

    @pytest.mark.parametrize("restriction", [True, False])
    @pytest.mark.parametrize("sweep", [True, False])
    def test_all_variants_agree(self, restriction, sweep):
        result = sequential_join(
            self.tree_r,
            self.tree_s,
            use_restriction=restriction,
            use_sweep=sweep,
        )
        assert result.pair_set() == self.expected

    def test_sweep_reduces_tests(self):
        with_sweep = sequential_join(self.tree_r, self.tree_s, use_sweep=True, use_restriction=False)
        without = sequential_join(self.tree_r, self.tree_s, use_sweep=False, use_restriction=False)
        assert with_sweep.intersection_tests < without.intersection_tests

    def test_restriction_reduces_sweep_tests(self):
        # On clustered data, restriction prunes entries before the sweep.
        with_restriction = sequential_join(self.tree_r, self.tree_s)
        assert with_restriction.pair_set() == self.expected

    def test_plane_sweep_order_of_candidates(self):
        # With the sweep, candidates come out in nondecreasing sweep-stop
        # order *within each leaf pair*; globally the DFS groups them.
        result = sequential_join(self.tree_r, self.tree_s)
        assert result.candidates == len(self.expected)

    def test_node_pairs_visited_counted(self):
        result = sequential_join(self.tree_r, self.tree_s)
        assert result.node_pairs_visited >= 1


class TestRefinementIntegration:
    def test_exact_refinement_drops_false_hits(self):
        # Crossing diagonals intersect; parallel diagonals don't, although
        # their MBRs do.
        geo_r = {0: ((0.0, 0.0), (1.0, 1.0))}
        geo_s = {
            0: ((0.0, 1.0), (1.0, 0.0)),   # crosses r0
            1: ((0.05, 0.0), (1.0, 0.95)),  # parallel-ish: MBR hit only
        }
        items_r = [(0, Rect(0, 0, 1, 1))]
        items_s = [(0, Rect(0, 0, 1, 1)), (1, Rect(0.05, 0, 1, 0.95))]
        tree_r = str_bulk_load(items_r, dir_capacity=4, data_capacity=4)
        tree_s = str_bulk_load(items_s, dir_capacity=4, data_capacity=4)

        unfiltered = sequential_join(tree_r, tree_s)
        assert unfiltered.pair_set() == {(0, 0), (0, 1)}

        refinement = ExactRefinement(geo_r, geo_s)
        filtered = sequential_join(tree_r, tree_s, refinement=refinement)
        assert filtered.pair_set() == {(0, 0)}
        assert refinement.tests == 2
