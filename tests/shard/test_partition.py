"""Partitioner mechanics: grids, Morton cuts, ownership, replication."""

import random

import pytest

from repro.geometry.rect import Rect
from repro.shard.partition import (
    PartitionMap,
    Partitioner,
    build_sharded,
    partition_items,
)


def make_items(n, seed, side=100.0, max_extent=4.0):
    rng = random.Random(seed)
    items = []
    for oid in range(n):
        x = rng.uniform(0.0, side)
        y = rng.uniform(0.0, side)
        items.append(
            (oid, Rect(x, y, x + rng.uniform(0.1, max_extent),
                       y + rng.uniform(0.1, max_extent)))
        )
    return items


class TestGridMode:
    def test_one_cell_per_shard_near_square(self):
        pmap = Partitioner(6, mode="grid").fit(make_items(50, 0))
        assert pmap.gx * pmap.gy == 6
        assert {pmap.gx, pmap.gy} == {2, 3}
        assert sorted(set(pmap.owner)) == list(range(6))

    def test_grid_orients_to_region_aspect(self):
        wide = [(0, Rect(0, 0, 100, 10)), (1, Rect(90, 5, 100, 10))]
        pmap = Partitioner(6, mode="grid").fit(wide)
        assert pmap.gx > pmap.gy  # more columns along the long axis

    def test_single_shard_is_one_cell(self):
        pmap = Partitioner(1, mode="grid").fit(make_items(10, 1))
        assert (pmap.gx, pmap.gy) == (1, 1)
        assert set(pmap.shards_of_rect(Rect(-5, -5, 200, 200))) == {0}


class TestOwnership:
    @pytest.mark.parametrize("mode", ["grid", "zrange"])
    def test_every_object_owned_exactly_once(self, mode):
        items = make_items(300, 2)
        pmap = Partitioner(5, mode=mode).fit(items)
        owned, _ = partition_items(items, pmap)
        seen = [oid for per_shard in owned for oid, _ in per_shard]
        assert sorted(seen) == sorted(oid for oid, _ in items)

    @pytest.mark.parametrize("mode", ["grid", "zrange"])
    def test_every_point_owned_by_a_valid_shard(self, mode):
        pmap = Partitioner(7, mode=mode).fit(make_items(200, 3))
        rng = random.Random(4)
        for _ in range(500):
            x = rng.uniform(-20, 120)  # clamping covers out-of-range too
            y = rng.uniform(-20, 120)
            assert 0 <= pmap.owner_of_point(x, y) < 7

    @pytest.mark.parametrize("mode", ["grid", "zrange"])
    def test_cells_tile_the_bounds(self, mode):
        pmap = Partitioner(4, mode=mode).fit(make_items(100, 5))
        bounds = pmap.bounds()
        area = sum(
            pmap.cell_rect(cell).area()
            for cell in range(pmap.gx * pmap.gy)
        )
        assert area == pytest.approx(bounds.area(), rel=1e-9)
        # cell_of_point agrees with the cell rect containing the point
        rng = random.Random(6)
        for _ in range(200):
            x = rng.uniform(bounds.xl, bounds.xu)
            y = rng.uniform(bounds.yl, bounds.yu)
            cell = pmap.cell_rect(pmap.cell_of_point(x, y))
            assert cell.xl <= x <= cell.xu and cell.yl <= y <= cell.yu


class TestReplication:
    @pytest.mark.parametrize("mode", ["grid", "zrange"])
    def test_replicated_to_every_overlapping_shard(self, mode):
        items = make_items(150, 7)
        pmap = Partitioner(4, mode=mode).fit(items)
        _, replicated = partition_items(items, pmap)
        stored = {
            shard: {oid for oid, _ in per_shard}
            for shard, per_shard in enumerate(replicated)
        }
        for oid, rect in items:
            overlapping = set(pmap.shards_of_rect(rect))
            for shard in overlapping:
                assert oid in stored[shard], (oid, shard)
        # and nowhere else
        for shard, oids in stored.items():
            region = pmap.shard_region(shard)
            for oid in oids:
                rect = dict(items)[oid]
                assert any(
                    rect.intersects(pmap.cell_rect(cell))
                    for cell in pmap.shard_cells(shard)
                ), (oid, shard, region)


class TestZrangeBalance:
    def test_every_shard_gets_cells_and_counts_balance(self):
        items = make_items(800, 8, max_extent=1.0)
        pmap = Partitioner(6, mode="zrange").fit(items)
        per_shard_cells = [len(pmap.shard_cells(s)) for s in range(6)]
        assert all(c >= 1 for c in per_shard_cells)
        owned, _ = partition_items(items, pmap)
        counts = [len(per) for per in owned]
        assert sum(counts) == len(items)
        # uniform data: greedy equal-count cuts keep shards within 2x
        assert max(counts) <= 2 * max(1, min(counts))

    def test_skewed_data_still_covers_every_shard(self):
        rng = random.Random(9)
        # 90% of objects in one corner cell's worth of space
        items = []
        for oid in range(300):
            if oid % 10:
                x, y = rng.uniform(0, 5), rng.uniform(0, 5)
            else:
                x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            items.append((oid, Rect(x, y, x + 0.5, y + 0.5)))
        pmap = Partitioner(5, mode="zrange").fit(items)
        owned, _ = partition_items(items, pmap)
        assert sum(len(per) for per in owned) == 300
        assert all(len(pmap.shard_cells(s)) >= 1 for s in range(5))


class TestDegenerate:
    @pytest.mark.parametrize("mode", ["grid", "zrange"])
    def test_single_point_dataset(self, mode):
        items = [(0, Rect(5.0, 5.0, 5.0, 5.0))]
        pmap = Partitioner(3, mode=mode).fit(items)
        owned, replicated = partition_items(items, pmap)
        assert sum(len(per) for per in owned) == 1
        assert sum(len(per) for per in replicated) >= 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Partitioner(0)
        with pytest.raises(ValueError):
            Partitioner(2, mode="hash")
        with pytest.raises(ValueError):
            Partitioner(2, mode="grid").fit([])


class TestBuildSharded:
    @pytest.mark.parametrize("backend", ["node", "flat"])
    def test_trees_match_replicated_counts(self, backend):
        datasets = {"a": make_items(120, 10), "b": make_items(80, 11)}
        sharded = build_sharded(datasets, 4, backend=backend)
        assert sharded.shards == 4
        for shard in range(4):
            for name in ("a", "b"):
                tree = sharded.trees[shard][name]
                count = sharded.counts[shard][name]
                assert tree.size == count
                mbr = sharded.content_mbrs[shard][name]
                assert (mbr is None) == (count == 0)

    def test_one_map_fits_all_datasets(self):
        left = [(i, Rect(i, 0, i + 1, 1)) for i in range(10)]
        right = [(i, Rect(i + 50, 50, i + 51, 51)) for i in range(10)]
        sharded = build_sharded({"l": left, "r": right}, 4)
        # the map covers both datasets' extents
        bounds = sharded.pmap.bounds()
        assert bounds.xl <= 0 and bounds.xu >= 60
        assert bounds.yl <= 0 and bounds.yu >= 51
