"""Cross-shard kNN pruning: skips are provably safe, ties are never pruned.

Two hand-built geometries pin the pruning contract:

* a two-cluster layout where the far shard's mindist exceeds the k-th
  best distance, so it must be *skipped* (``SHD_SHARD_SKIPPED``, no
  sub-request sent) without changing the answer;
* a mirror-symmetric layout where both shards sit at *exactly* the k-th
  distance — an equal bound must still be queried (strict-inequality
  prune) so boundary ties resolve by ``oid_order_key`` identically to a
  single tree.
"""

import asyncio

import pytest

from repro.geometry.rect import Rect
from repro.rtree.bulk import str_bulk_load
from repro.rtree.query import nearest_neighbors
from repro.service.model import KNNRequest, Status
from repro.shard import ShardConfig, ShardRouter, mindist, sharded_knn
from repro.shard.partition import build_sharded
from repro.trace import EventKind, ListSink, run_checkers, service_checkers


def point(oid, x, y):
    return (oid, Rect(x, y, x, y))


# Wide region → grid K=2 splits on x, boundary at the midline.
CLUSTERED = {
    "pts": [
        # left cluster around (10, 50)
        point(0, 8, 50), point(1, 10, 52), point(2, 12, 48), point(3, 9, 51),
        # right cluster around (90, 50)
        point(10, 88, 50), point(11, 90, 52), point(12, 92, 48),
        # padding pins the fitted bounds to x ∈ [0, 100]
        point(20, 0, 45), point(21, 100, 55),
    ]
}

MIRROR = {
    "pts": [
        # equidistant from (50, 50), one on each side of the x=50 cut;
        # the lower oid is on the LEFT so a left-first scan that pruned
        # the right shard on an equal bound would return the wrong oid
        # only if oid_order_key prefers 3 — which it does.
        point(5, 40, 50),
        point(3, 60, 50),
        point(20, 0, 45), point(21, 100, 55),
        point(22, 0, 55), point(23, 100, 45),
    ]
}


class TestOpsLevelPruning:
    def test_far_shard_is_skipped_with_strict_bound(self):
        sharded = build_sharded(CLUSTERED, 2, mode="grid")
        skipped = []
        got = sharded_knn(sharded, "pts", 5.0, 50.0, 3, skipped=skipped)
        oracle = str_bulk_load(CLUSTERED["pts"])
        want = tuple(
            (float(d), e.oid)
            for d, e in nearest_neighbors(oracle, 5.0, 50.0, k=3)
        )
        assert got == want
        assert skipped, "the right-hand cluster shard must be pruned"
        for shard, bound, kth in skipped:
            assert bound > kth
            # the skip is safe: mindist to that shard's content really
            # is beyond everything we returned
            mbr = sharded.content_mbrs[shard]["pts"]
            assert mindist(mbr, 5.0, 50.0) > got[-1][0]

    def test_equal_bound_is_never_pruned(self):
        sharded = build_sharded(MIRROR, 2, mode="grid")
        skipped = []
        got = sharded_knn(sharded, "pts", 50.0, 50.0, 1, skipped=skipped)
        oracle = str_bulk_load(MIRROR["pts"])
        want = tuple(
            (float(d), e.oid)
            for d, e in nearest_neighbors(oracle, 50.0, 50.0, k=1)
        )
        assert got == want
        assert got[0] == (10.0, 3), "tie must resolve by oid order"
        # both shards sit at bound == kth == 10: neither may be skipped
        assert skipped == []


class TestRouterLevelPruning:
    def run_knn(self, datasets, x, y, k):
        sink = ListSink()

        async def main():
            cfg = ShardConfig(shards=2, replicas=1, workers=0,
                              supervise=False, cache_capacity=0)
            async with ShardRouter(datasets, cfg, sinks=[sink]) as router:
                response = await router.submit(KNNRequest("pts", x, y, k))
                assert response.status is Status.OK
                return response.value

        value = asyncio.run(main())
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts), [
            (v.checker, v.violations) for v in verdicts if not v.ok
        ]
        return value, sink.events

    def test_skip_event_and_no_subrequest_to_pruned_shard(self):
        value, events = self.run_knn(CLUSTERED, 5.0, 50.0, 3)
        skips = [e for e in events if e.kind == EventKind.SHD_SHARD_SKIPPED]
        assert len(skips) == 1
        skip = skips[0]
        assert skip.data["mindist"] > skip.data["kth"]
        sent_shards = {
            e.data["shard"] for e in events
            if e.kind == EventKind.SHD_SUBREQUEST_SENT
        }
        assert skip.data["shard"] not in sent_shards
        # the skipped shard was still a routing candidate
        routed = [e for e in events
                  if e.kind == EventKind.SHD_REQUEST_ROUTED]
        assert str(skip.data["shard"]) in routed[0].data["shards"].split(",")

    def test_boundary_tie_queries_both_shards(self):
        value, events = self.run_knn(MIRROR, 50.0, 50.0, 1)
        assert value == ((10.0, 3),)
        skips = [e for e in events if e.kind == EventKind.SHD_SHARD_SKIPPED]
        assert skips == []
        sent_shards = {
            e.data["shard"] for e in events
            if e.kind == EventKind.SHD_SUBREQUEST_SENT
        }
        assert sent_shards == {0, 1}
