"""ShardRouter behaviour: routing, merging, failover, admission, traces."""

import asyncio
import itertools
import random

import pytest

from repro.faults import FaultPlan
from repro.geometry.rect import Rect
from repro.rtree.bulk import str_bulk_load
from repro.rtree.query import nearest_neighbors, window_query
from repro.join.sequential import sequential_join
from repro.service.model import (
    JoinRequest,
    KNNRequest,
    RequestClass,
    Status,
    WindowRequest,
    canonical_rect,
)
from repro.service.resilience import WorkerError
from repro.service.workers import WorkerPool
from repro.shard import ShardConfig, ShardRouter
from repro.trace import (
    EventKind,
    ListSink,
    run_checkers,
    service_checkers,
)


def make_items(n, seed, side=100.0):
    rng = random.Random(seed)
    items = []
    for oid in range(n):
        x, y = rng.uniform(0, side), rng.uniform(0, side)
        items.append(
            (oid, Rect(x, y, x + rng.uniform(0.2, 3.0),
                       y + rng.uniform(0.2, 3.0)))
        )
    return items


DATASETS = {"a": make_items(250, 1), "b": make_items(180, 2)}
ORACLE = {name: str_bulk_load(items) for name, items in DATASETS.items()}


def config(**kw):
    base = dict(shards=4, replicas=1, workers=0, supervise=False,
                cache_capacity=0)
    base.update(kw)
    return ShardConfig(**base)


def assert_checkers_clean(sink):
    verdicts = run_checkers(sink.events, service_checkers())
    bad = [(v.checker, v.violations) for v in verdicts if not v.ok]
    assert not bad, bad


class TestRoutingParity:
    def test_window_knn_join_match_single_tree(self):
        sink = ListSink()

        async def main():
            results = {}
            async with ShardRouter(DATASETS, config(replicas=2),
                                   sinks=[sink]) as router:
                rng = random.Random(5)
                for i in range(10):
                    x, y = rng.uniform(0, 90), rng.uniform(0, 90)
                    w = (x, y, x + 12, y + 12)
                    r = await router.submit(WindowRequest("a", w))
                    assert r.status is Status.OK
                    canon = Rect(*canonical_rect(w))
                    want = tuple(sorted(
                        e.oid for e in window_query(ORACLE["a"], canon)
                    ))
                    assert r.value == want
                    r = await router.submit(KNNRequest("a", x, y, 5))
                    found = nearest_neighbors(ORACLE["a"], x, y, k=5)
                    assert r.value == tuple((float(d), e.oid) for d, e in found)
                r = await router.submit(JoinRequest("a", "b"))
                want = tuple(sorted(sequential_join(ORACLE["a"], ORACLE["b"]).pairs))
                assert r.value == want
                results["snapshot"] = router.snapshot()
            return results

        results = asyncio.run(main())
        assert_checkers_clean(sink)
        snap = results["snapshot"]
        assert set(snap["shards"]) == {"0", "1", "2", "3"}
        assert snap["partition"]["shards"] == 4
        assert sum(s["subrequests"] for s in snap["shards"].values()) > 0

    def test_fanout_only_overlapping_shards(self):
        sink = ListSink()

        async def main():
            async with ShardRouter(DATASETS, config(), sinks=[sink]) as router:
                # a tiny window deep inside one shard's interior
                r = await router.submit(WindowRequest("a", (10, 10, 11, 11)))
                assert r.status is Status.OK

        asyncio.run(main())
        routed = [e for e in sink.events
                  if e.kind == EventKind.SHD_REQUEST_ROUTED]
        assert len(routed) == 1
        fanned = routed[0].data["shards"].split(",")
        assert 1 <= len([s for s in fanned if s]) < 4
        assert_checkers_clean(sink)


class TestCacheAndAdmission:
    def test_cache_hit_on_repeat(self):
        async def main():
            async with ShardRouter(
                DATASETS, config(cache_capacity=64)
            ) as router:
                first = await router.submit(WindowRequest("a", (5, 5, 30, 30)))
                second = await router.submit(WindowRequest("a", (5, 5, 30, 30)))
                return first, second

        first, second = asyncio.run(main())
        assert first.status is Status.OK and not first.cached
        assert second.status is Status.OK and second.cached
        assert second.value == first.value

    def test_rejects_after_stop(self):
        async def main():
            router = ShardRouter(DATASETS, config())
            await router.start()
            await router.stop()
            return await router.submit(WindowRequest("a", (0, 0, 1, 1)))

        response = asyncio.run(main())
        assert response.status is Status.REJECTED

    def test_unknown_tree_is_an_error(self):
        async def main():
            async with ShardRouter(DATASETS, config()) as router:
                return await router.submit(
                    WindowRequest("missing", (0, 0, 1, 1))
                )

        response = asyncio.run(main())
        assert response.status is Status.ERROR
        assert "missing" in response.detail


class TestFailover:
    def test_crashes_fail_over_to_replicas_zero_lost(self):
        sink = ListSink()
        plan = FaultPlan(seed=11, worker_crash_p=0.3)

        async def main():
            statuses = []
            async with ShardRouter(
                DATASETS,
                config(replicas=2, workers=2, supervise=True, faults=plan,
                       max_attempts=4, attempt_timeout_s=2.0),
                sinks=[sink],
            ) as router:
                rng = random.Random(3)
                for _ in range(30):
                    x, y = rng.uniform(0, 90), rng.uniform(0, 90)
                    r = await router.submit(
                        WindowRequest("a", (x, y, x + 10, y + 10))
                    )
                    statuses.append(r.status)
                snap = router.snapshot()
            return statuses, snap

        statuses, snap = asyncio.run(main())
        assert all(s is Status.OK for s in statuses)
        failovers = [e for e in sink.events if e.kind == EventKind.SHD_FAILOVER]
        assert failovers, "crash_p=0.3 over 30 requests must fail over"
        # every failover re-dispatched to the other replica
        for event in failovers:
            assert event.data["next_replica"] != event.data["replica"]
        assert snap["leases"]["active"] == 0
        assert snap["leases"]["expired"] == len(failovers)
        assert_checkers_clean(sink)

    def test_single_replica_retries_same_pool(self):
        sink = ListSink()
        plan = FaultPlan(seed=7, worker_crash_p=0.25)

        async def main():
            async with ShardRouter(
                DATASETS,
                config(replicas=1, workers=0, faults=plan, max_attempts=3),
                sinks=[sink],
            ) as router:
                rng = random.Random(1)
                responses = []
                for _ in range(25):
                    x, y = rng.uniform(0, 90), rng.uniform(0, 90)
                    responses.append(await router.submit(
                        WindowRequest("a", (x, y, x + 8, y + 8))
                    ))
            return responses

        responses = asyncio.run(main())
        assert all(r.status is Status.OK for r in responses)
        assert_checkers_clean(sink)


class FakeClock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def shd_events(sink, kind):
    return [e for e in sink.events if e.kind is kind]


class TestSettlementDiscipline:
    """Every SHD_SUBREQUEST_SENT settles exactly once — the regression
    suite for the three settlement defects the protocol conformance
    monitors flagged (FAILED with no SENT, FAILED after a FAILOVER's
    unhonoured resend promise, and cancellation's unconditional FAILED).
    """

    def test_budget_expired_before_first_attempt_emits_no_settlement(self):
        # Deadline already dead when the sub-request starts: it must
        # raise without ANY settlement event — there is no SENT for a
        # FAILED to settle, and an unmatched FAILED unbalances the
        # fan-out ledger.
        sink = ListSink()
        clock = FakeClock()

        async def main():
            async with ShardRouter(
                DATASETS, config(), sinks=[sink], clock=clock
            ) as router:
                clock.t = 100.0  # router time is now far past...
                with pytest.raises(WorkerError) as info:
                    await router._sub(
                        1, 0, RequestClass.WINDOW, "windows",
                        ("a", [(0.0, 0.0, 1.0, 1.0)]), deadline=50.0,
                    )  # ...this request budget
                assert info.value.cause_type == "deadline"

        asyncio.run(main())
        assert shd_events(sink, EventKind.SHD_SUBREQUEST_SENT) == []
        assert shd_events(sink, EventKind.SHD_SUBREQUEST_FAILED) == []
        assert shd_events(sink, EventKind.SHD_FAILOVER) == []
        assert_checkers_clean(sink)

    def test_budget_death_between_attempts_fails_instead_of_failover(
        self, monkeypatch
    ):
        # The attempt burns the whole request budget and fails.  The old
        # code announced a FAILOVER (promising a resend) and then gave
        # up at the top of the loop — one SENT settled twice.  Now the
        # give-up decision precedes the FAILOVER emit.
        sink = ListSink()
        clock = FakeClock()
        call_ids = itertools.count(10_000)

        async def dying_run(pool, kind, *args, timeout_s=None):
            clock.t += 1000.0  # the attempt consumed the entire budget
            call = next(call_ids)
            if pool.tracer.enabled:
                pool.tracer.emit(
                    EventKind.SUP_CALL_FAILED,
                    call=call, op=kind, error="crash",
                )
            raise WorkerError(
                "worker crashed", cause_type="crash",
                call_id=call, kind=kind,
            )

        monkeypatch.setattr(WorkerPool, "run", dying_run)

        async def main():
            async with ShardRouter(
                DATASETS,
                config(replicas=2, max_attempts=4),
                sinks=[sink],
                clock=clock,
            ) as router:
                return await router.submit(
                    WindowRequest("a", (0, 0, 90, 90)), timeout=500.0
                )

        response = asyncio.run(main())
        assert response.status is Status.ERROR
        sent = shd_events(sink, EventKind.SHD_SUBREQUEST_SENT)
        failed = shd_events(sink, EventKind.SHD_SUBREQUEST_FAILED)
        assert len(sent) >= 1
        assert len(failed) == len(sent)
        assert shd_events(sink, EventKind.SHD_FAILOVER) == []
        assert_checkers_clean(sink)

    def test_cancelled_inflight_attempt_settles_as_abandoned(
        self, monkeypatch
    ):
        # A request timeout cancels the fan-out while attempts are in
        # flight: each unsettled SENT settles FAILED(error=abandoned),
        # its lease expires and its task requeues with no taker.
        sink = ListSink()

        async def hanging_run(pool, kind, *args, timeout_s=None):
            await asyncio.sleep(30.0)

        monkeypatch.setattr(WorkerPool, "run", hanging_run)

        async def main():
            async with ShardRouter(
                DATASETS, config(), sinks=[sink]
            ) as router:
                return await router.submit(
                    WindowRequest("a", (0, 0, 90, 90)), timeout=0.2
                )

        response = asyncio.run(main())
        assert response.status is Status.TIMEOUT
        sent = shd_events(sink, EventKind.SHD_SUBREQUEST_SENT)
        failed = shd_events(sink, EventKind.SHD_SUBREQUEST_FAILED)
        assert len(sent) >= 1
        assert len(failed) == len(sent)
        assert all(e.data["error"] == "abandoned" for e in failed)
        assert_checkers_clean(sink)

    def test_exhausted_attempts_keep_the_failover_chain(self, monkeypatch):
        # Unchanged behaviour with no deadline pressure: N attempts are
        # N SENTs, N-1 FAILOVERs and one final FAILED.
        sink = ListSink()
        call_ids = itertools.count(20_000)

        async def failing_run(pool, kind, *args, timeout_s=None):
            call = next(call_ids)
            if pool.tracer.enabled:
                pool.tracer.emit(
                    EventKind.SUP_CALL_FAILED,
                    call=call, op=kind, error="crash",
                )
            raise WorkerError(
                "worker crashed", cause_type="crash",
                call_id=call, kind=kind,
            )

        monkeypatch.setattr(WorkerPool, "run", failing_run)

        async def main():
            async with ShardRouter(
                DATASETS,
                config(replicas=1, max_attempts=3),
                sinks=[sink],
            ) as router:
                # A window deep inside one grid cell: a single-shard
                # fan-out, so the one give-up matches the one surfaced
                # request error.
                return await router.submit(
                    WindowRequest("a", (20, 20, 21, 21)), timeout=None
                )

        response = asyncio.run(main())
        assert response.status is Status.ERROR
        sent = shd_events(sink, EventKind.SHD_SUBREQUEST_SENT)
        failovers = shd_events(sink, EventKind.SHD_FAILOVER)
        failed = shd_events(sink, EventKind.SHD_SUBREQUEST_FAILED)
        # Every fanned-out shard runs its full chain: 3 SENTs settle as
        # 2 FAILOVERs + 1 FAILED each.
        shards = len(failed)
        assert shards >= 1
        assert len(sent) == 3 * shards
        assert len(failovers) == 2 * shards
        assert all(e.data["attempts"] == 3 for e in failed)
        assert_checkers_clean(sink)


class TestSnapshot:
    def test_engine_shape_plus_shards(self):
        async def main():
            async with ShardRouter(DATASETS, config()) as router:
                await router.submit(WindowRequest("a", (0, 0, 50, 50)))
                return router.snapshot()

        snap = asyncio.run(main())
        for key in ("metrics", "cache", "inflight", "running", "breakers",
                    "pool", "partition", "leases", "ledger", "shards"):
            assert key in snap, key
        assert snap["partition"]["mode"] == "grid"
        for stats in snap["shards"].values():
            for key in ("objects", "subrequests", "rows", "failovers",
                        "knn_skips", "inflight", "queue_depth", "replicas",
                        "pool_restarts"):
                assert key in stats, key
