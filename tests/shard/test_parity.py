"""Differential parity: the sharded kernels vs the single-tree oracles.

The acceptance bar of the sharded tier: for K ∈ {1, 4, 8}, both
partitioning modes and both backends, every routed-and-merged answer is
*exactly* the unsharded answer — window oid sets, kNN results including
tie order, and join pair sets with zero duplicates.
"""

import random

import pytest

from repro.geometry.rect import Rect
from repro.join.sequential import sequential_join
from repro.rtree.bulk import str_bulk_load
from repro.rtree.query import nearest_neighbors, oid_order_key, window_query
from repro.shard.ops import (
    shard_join_pairs,
    sharded_join,
    sharded_knn,
    sharded_window,
)
from repro.shard.partition import build_sharded


def make_items(n, seed, side=100.0):
    rng = random.Random(seed)
    items = []
    for oid in range(n):
        x, y = rng.uniform(0, side), rng.uniform(0, side)
        items.append(
            (oid, Rect(x, y, x + rng.uniform(0.2, 4.0),
                       y + rng.uniform(0.2, 4.0)))
        )
    return items


DATASETS = {"r": make_items(350, 1), "s": make_items(250, 2)}
ORACLE_R = str_bulk_load(DATASETS["r"])
ORACLE_S = str_bulk_load(DATASETS["s"])

RNG = random.Random(42)
WINDOWS = []
for _ in range(25):
    x, y = RNG.uniform(-5, 95), RNG.uniform(-5, 95)
    WINDOWS.append(Rect(x, y, x + RNG.uniform(0.5, 25), y + RNG.uniform(0.5, 25)))
POINTS = [
    (RNG.uniform(-10, 110), RNG.uniform(-10, 110), RNG.choice([1, 3, 7, 20]))
    for _ in range(25)
]

GRID = [
    (k, mode, backend)
    for k in (1, 4, 8)
    for mode in ("grid", "zrange")
    for backend in ("node", "flat")
]


@pytest.fixture(scope="module", params=GRID, ids=lambda p: f"K{p[0]}-{p[1]}-{p[2]}")
def sharded(request):
    k, mode, backend = request.param
    return build_sharded(DATASETS, k, mode=mode, backend=backend)


class TestWindowParity:
    def test_exact_oid_sets(self, sharded):
        for window in WINDOWS:
            want = tuple(sorted(e.oid for e in window_query(ORACLE_R, window)))
            got = sharded_window(sharded, "r", window)
            assert got == want, window


class TestKNNParity:
    def test_exact_results_including_tie_order(self, sharded):
        for x, y, k in POINTS:
            found = nearest_neighbors(ORACLE_R, x, y, k=k)
            want = tuple((float(d), e.oid) for d, e in found)
            got = sharded_knn(sharded, "r", x, y, k)
            assert got == want, (x, y, k)

    def test_pruned_shards_never_needed(self, sharded):
        # re-running WITHOUT pruning (query every shard) must not change
        # any answer: pruning only skips shards that cannot contribute
        for x, y, k in POINTS:
            skipped = []
            got = sharded_knn(sharded, "r", x, y, k, skipped=skipped)
            for shard, bound, kth in skipped:
                assert bound > kth  # strict: ties are never pruned
            assert got == sharded_knn(sharded, "r", x, y, k)


class TestJoinParity:
    def test_full_join_exact_with_zero_duplicates(self, sharded):
        want = tuple(sorted(sequential_join(ORACLE_R, ORACLE_S).pairs))
        per_shard = [
            shard_join_pairs(
                sharded.trees[shard]["r"], sharded.trees[shard]["s"],
                sharded.pmap, shard,
            )
            for shard in range(sharded.shards)
        ]
        flat = [p for pairs in per_shard for p in pairs]
        assert len(flat) == len(set(flat)), "duplicate pairs across shards"
        assert tuple(sorted(flat)) == want
        assert sharded_join(sharded, "r", "s") == want

    def test_windowed_join_exact(self, sharded):
        window = Rect(20, 20, 70, 70)
        keep_r = {e.oid for e in window_query(ORACLE_R, window)}
        keep_s = {e.oid for e in window_query(ORACLE_S, window)}
        want = tuple(sorted(
            (r, s)
            for r, s in sequential_join(ORACLE_R, ORACLE_S).pairs
            if r in keep_r and s in keep_s
        ))
        assert sharded_join(sharded, "r", "s", window=window) == want
