"""Unit tests for metrics counters and processor-time records."""

import pytest

from repro.sim import Metrics, ProcessorTimes


class TestMetrics:
    def test_add_and_read(self):
        m = Metrics()
        m.add("candidates")
        m.add("candidates", 4)
        assert m["candidates"] == 5
        assert m["unknown"] == 0

    def test_disk_read_recording(self):
        m = Metrics()
        m.record_disk_read(0)
        m.record_disk_read(0)
        m.record_disk_read(3)
        assert m.disk_accesses == 3
        assert m.per_disk_reads[0] == 2
        assert m.per_disk_reads[3] == 1

    def test_buffer_hits_property(self):
        m = Metrics()
        m.add("lru_hits", 2)
        m.add("path_hits", 3)
        assert m.buffer_hits == 5

    def test_remote_hits_property(self):
        m = Metrics()
        m.add("remote_hits", 7)
        assert m.remote_hits == 7

    def test_merge(self):
        a = Metrics()
        a.add("x", 1)
        a.record_disk_read(0)
        b = Metrics()
        b.add("x", 2)
        b.add("y", 5)
        b.record_disk_read(1)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 5
        assert a.disk_accesses == 2
        assert a.per_disk_reads[1] == 1

    def test_as_dict(self):
        m = Metrics()
        m.add("x", 2)
        assert m.as_dict() == {"x": 2}

    def test_repr(self):
        m = Metrics()
        m.add("x")
        assert "x=1" in repr(m)


class TestProcessorTimes:
    def test_derived_quantities(self):
        t = ProcessorTimes(3)
        t.finish = [5.0, 2.0, 8.0]
        t.busy = [4.0, 2.0, 7.5]
        assert t.response_time == 8.0
        assert t.first_finish == 2.0
        assert t.average_finish == pytest.approx(5.0)
        assert t.total_run_time == pytest.approx(13.5)
        assert t.n == 3

    def test_empty(self):
        t = ProcessorTimes(0)
        assert t.response_time == 0.0
        assert t.first_finish == 0.0
        assert t.average_finish == 0.0

    def test_repr(self):
        t = ProcessorTimes(2)
        assert "n=2" in repr(t)
