"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Environment, SimulationError


class TestTimeout:
    def test_clock_advances(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 7.5]

    def test_timeout_value_passed_through(self):
        env = Environment()
        got = []

        def proc():
            value = yield env.timeout(1, value="hello")
            got.append(value)

        env.process(proc())
        env.run()
        assert got == ["hello"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay_allowed(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(0)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [0.0]


class TestOrdering:
    def test_events_fire_in_time_order(self):
        env = Environment()
        order = []

        def proc(name, delay):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc("late", 10))
        env.process(proc("early", 1))
        env.process(proc("mid", 5))
        env.run()
        assert order == ["early", "mid", "late"]

    def test_simultaneous_events_fifo(self):
        # Equal timestamps resolve in scheduling order — determinism.
        env = Environment()
        order = []

        def proc(name):
            yield env.timeout(3)
            order.append(name)

        for name in "abcde":
            env.process(proc(name))
        env.run()
        assert order == list("abcde")

    def test_deterministic_repetition(self):
        def run_once():
            env = Environment()
            order = []

            def proc(name, delays):
                for d in delays:
                    yield env.timeout(d)
                order.append((name, env.now))

            env.process(proc("a", [1, 2, 1]))
            env.process(proc("b", [2, 2]))
            env.process(proc("c", [4]))
            env.run()
            return order

        assert run_once() == run_once()


class TestProcess:
    def test_return_value_becomes_event_value(self):
        env = Environment()
        results = []

        def child():
            yield env.timeout(2)
            return 42

        def parent():
            value = yield env.process(child())
            results.append((env.now, value))

        env.process(parent())
        env.run()
        assert results == [(2.0, 42)]

    def test_wait_on_already_finished_process(self):
        env = Environment()
        results = []

        def child():
            yield env.timeout(1)
            return "done"

        def parent(proc):
            yield env.timeout(5)  # child finished long ago
            value = yield proc
            results.append((env.now, value))

        child_proc = env.process(child())
        env.process(parent(child_proc))
        env.run()
        assert results == [(5.0, "done")]

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield "not an event"

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_immediate_return_process(self):
        env = Environment()
        results = []

        def empty():
            return 7
            yield  # pragma: no cover - makes it a generator

        def parent():
            value = yield env.process(empty())
            results.append(value)

        env.process(parent())
        env.run()
        assert results == [7]


class TestBareEvents:
    def test_manual_succeed_wakes_waiter(self):
        env = Environment()
        signal = env.event()
        log = []

        def waiter():
            value = yield signal
            log.append((env.now, value))

        def firer():
            yield env.timeout(4)
            signal.succeed("go")

        env.process(waiter())
        env.process(firer())
        env.run()
        assert log == [(4.0, "go")]

    def test_double_succeed_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_fire_rejected(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_value_after_fire(self):
        env = Environment()
        ev = env.event()
        ev.succeed(9)
        env.run()
        assert ev.value == 9


class TestAllOf:
    def test_waits_for_all(self):
        env = Environment()
        log = []

        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            procs = [env.process(child(d, d * 10)) for d in (3, 1, 2)]
            values = yield env.all_of(procs)
            log.append((env.now, values))

        env.process(parent())
        env.run()
        assert log == [(3.0, [30, 10, 20])]

    def test_empty_list_fires_immediately(self):
        env = Environment()
        log = []

        def parent():
            values = yield env.all_of([])
            log.append((env.now, values))

        env.process(parent())
        env.run()
        assert log == [(0.0, [])]


class TestRunUntil:
    def test_stops_at_horizon(self):
        env = Environment()
        log = []

        def proc():
            while True:
                yield env.timeout(10)
                log.append(env.now)

        env.process(proc())
        final = env.run(until=35)
        assert final == 35.0
        assert log == [10.0, 20.0, 30.0]
        assert env.now == 35.0

    def test_resume_after_horizon(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(10)
            log.append(env.now)

        env.process(proc())
        env.run(until=5)
        assert log == []
        env.run()
        assert log == [10.0]

    def test_until_beyond_last_event(self):
        env = Environment()

        def quick():
            yield env.timeout(1)

        env.process(quick())
        assert env.run(until=100) == 100.0

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")

        def proc():
            yield env.timeout(7)

        env.process(proc())
        # The bootstrap event is at t=0.
        assert env.peek() == 0.0
