"""Unit tests for the KSR1 machine model (Table 2)."""

import pytest

from repro.sim import Environment, KSR1_CONFIG, Machine, MachineConfig, MemoryLevel


class TestMemoryLevel:
    def test_page_copy_time_units(self):
        level = MemoryLevel("x", 1024, 128, 32.0, 9.0)
        # 8 units of 128 B; per unit 9 us latency + 128/(32 MiB/s).
        per_unit = 9e-6 + 128 / (32 * 1024 * 1024)
        assert level.page_copy_time(1024) == pytest.approx(8 * per_unit)

    def test_partial_unit_rounds_up(self):
        level = MemoryLevel("x", 1024, 128, 32.0, 9.0)
        assert level.page_copy_time(129) == level.page_copy_time(256)


class TestKSR1Config:
    def test_table2_rows(self):
        cfg = KSR1_CONFIG
        assert cfg.cache.size_bytes == 256 * 1024
        assert cfg.cache.transfer_unit_bytes == 64
        assert cfg.cache.bandwidth_mb_per_s == 64.0
        assert cfg.main_memory.size_bytes == 32 * 1024 * 1024
        assert cfg.main_memory.transfer_unit_bytes == 128
        assert cfg.main_memory.bandwidth_mb_per_s == 40.0
        assert cfg.remote_memory.size_bytes == 768 * 1024 * 1024
        assert cfg.remote_memory.bandwidth_mb_per_s == 32.0

    def test_processors_default(self):
        assert KSR1_CONFIG.processors == 24

    def test_remote_access_slower_than_local(self):
        cfg = KSR1_CONFIG
        assert cfg.remote_page_access_time > cfg.local_page_access_time
        # The paper quotes "a factor of about 10" per access; our page-level
        # ratio reflects the latency-dominated gap (at least 2x).
        assert cfg.remote_page_access_time / cfg.local_page_access_time > 2

    def test_both_far_faster_than_disk(self):
        # A disk read is 16 ms; any memory access must be well under 1 ms.
        assert KSR1_CONFIG.remote_page_access_time < 1e-3

    def test_bus_transfer_shorter_than_full_remote_access(self):
        cfg = KSR1_CONFIG
        assert cfg.bus_transfer_time < cfg.remote_page_access_time

    def test_sort_time_monotone(self):
        cfg = KSR1_CONFIG
        assert cfg.sort_time(0) == 0.0
        assert cfg.sort_time(1) == 0.0
        assert cfg.sort_time(100) > cfg.sort_time(10) > 0.0


class TestMachine:
    def test_remote_copy_charges_time_and_counts(self):
        env = Environment()
        machine = Machine(env)

        def proc():
            yield env.process(machine.remote_copy())

        env.process(proc())
        total = env.run()
        assert total == pytest.approx(machine.config.remote_page_access_time)
        assert machine.metrics["bus_transfers"] == 1

    def test_concurrent_remote_copies_contend_on_bus(self):
        env = Environment()
        machine = Machine(env)

        def proc():
            yield env.process(machine.remote_copy())

        for _ in range(8):
            env.process(proc())
        total = env.run()
        cfg = machine.config
        # The bus serialises the raw transfers; the latency residues overlap.
        lower_bound = 8 * cfg.bus_transfer_time
        assert total >= lower_bound
        assert total < 8 * cfg.remote_page_access_time

    def test_custom_config(self):
        env = Environment()
        cfg = MachineConfig(processors=4)
        machine = Machine(env, cfg)
        assert machine.config.processors == 4
