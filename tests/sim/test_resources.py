"""Unit tests for FCFS resources and FIFO stores."""

import pytest

from repro.sim import Environment, Lock, Resource, SimulationError, Store


class TestResource:
    def test_capacity_one_serialises(self):
        env = Environment()
        disk = Resource(env, capacity=1, name="disk")
        log = []

        def user(name):
            yield disk.acquire()
            try:
                log.append((name, "start", env.now))
                yield env.timeout(10)
            finally:
                disk.release()
            log.append((name, "end", env.now))

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [
            ("a", "start", 0.0),
            ("a", "end", 10.0),
            ("b", "start", 10.0),
            ("b", "end", 20.0),
        ]

    def test_fcfs_order(self):
        env = Environment()
        disk = Resource(env, capacity=1)
        order = []

        def user(name, arrival):
            yield env.timeout(arrival)
            yield disk.acquire()
            try:
                order.append(name)
                yield env.timeout(5)
            finally:
                disk.release()

        env.process(user("third", 2))
        env.process(user("first", 0))
        env.process(user("second", 1))
        env.run()
        assert order == ["first", "second", "third"]

    def test_capacity_two_parallel(self):
        env = Environment()
        pool = Resource(env, capacity=2)
        ends = []

        def user():
            yield pool.acquire()
            try:
                yield env.timeout(10)
            finally:
                pool.release()
            ends.append(env.now)

        for _ in range(4):
            env.process(user())
        env.run()
        assert ends == [10.0, 10.0, 20.0, 20.0]

    def test_release_idle_raises(self):
        env = Environment()
        r = Resource(env)
        with pytest.raises(SimulationError):
            r.release()

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_wait_time_accounting(self):
        env = Environment()
        disk = Resource(env, capacity=1)

        def user():
            yield disk.acquire()
            try:
                yield env.timeout(8)
            finally:
                disk.release()

        env.process(user())
        env.process(user())
        env.run()
        assert disk.total_acquisitions == 2
        assert disk.total_wait_time == 8.0  # second user waited 8

    def test_held_helper(self):
        env = Environment()
        disk = Resource(env, capacity=1)

        def user():
            yield env.process(disk.held(6))

        env.process(user())
        env.process(user())
        assert env.run() == 12.0
        assert disk.in_use == 0

    def test_queue_length_visible(self):
        env = Environment()
        disk = Resource(env, capacity=1)
        seen = []

        def holder():
            yield disk.acquire()
            yield env.timeout(10)
            seen.append(disk.queue_length)
            disk.release()

        def waiter():
            yield env.timeout(1)
            yield disk.acquire()
            disk.release()

        env.process(holder())
        env.process(waiter())
        env.run()
        assert seen == [1]

    def test_lock_is_capacity_one(self):
        env = Environment()
        assert Lock(env).capacity == 1


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        store.put("x")
        env.process(getter())
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append((env.now, item))

        def putter():
            yield env.timeout(5)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [(5.0, "late")]

    def test_fifo_items_and_getters(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(name):
            item = yield store.get()
            got.append((name, item))

        env.process(getter("g1"))
        env.process(getter("g2"))

        def putter():
            yield env.timeout(1)
            store.put("a")
            store.put("b")

        env.process(putter())
        env.run()
        assert got == [("g1", "a"), ("g2", "b")]

    def test_close_releases_waiters_with_default(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        env.process(getter())

        def closer():
            yield env.timeout(3)
            store.close(default=None)

        env.process(closer())
        env.run()
        assert got == [None]

    def test_get_after_close_returns_default(self):
        env = Environment()
        store = Store(env)
        store.close(default="empty")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        env.process(getter())
        env.run()
        assert got == ["empty"]

    def test_items_drained_before_close_default(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.close()
        got = []

        def getter():
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(getter())
        env.run()
        assert got == [1, None]

    def test_put_after_close_raises(self):
        env = Environment()
        store = Store(env)
        store.close()
        with pytest.raises(SimulationError):
            store.put("x")

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestStoreEdgeCases:
    def test_close_idempotent(self):
        env = Environment()
        store = Store(env)
        store.close(default="done")
        store.close(default="done")
        got = []

        def getter():
            got.append((yield store.get()))

        env.process(getter())
        env.run()
        assert got == ["done"]

    def test_closed_property(self):
        env = Environment()
        store = Store(env)
        assert not store.closed
        store.close()
        assert store.closed

    def test_repr(self):
        env = Environment()
        store = Store(env, name="tasks")
        store.put(1)
        assert "tasks" in repr(store)
        resource = Resource(env, name="disk")
        assert "disk" in repr(resource)
