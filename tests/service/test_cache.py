"""Unit tests for the LRU + TTL result cache and the canonical keys."""

import pytest

from repro.geometry import Rect
from repro.service import (
    MISS,
    JoinRequest,
    KNNRequest,
    ResultCache,
    WindowRequest,
    canonical_rect,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCanonicalRect:
    def test_orders_corners(self):
        assert canonical_rect((3.0, 4.0, 1.0, 2.0)) == (1.0, 2.0, 3.0, 4.0)

    def test_accepts_rect_objects(self):
        assert canonical_rect(Rect(1, 2, 3, 4)) == (1.0, 2.0, 3.0, 4.0)

    def test_rounds_float_noise(self):
        a = canonical_rect((0.1 + 0.2, 0.0, 1.0, 1.0))
        b = canonical_rect((0.3, 0.0, 1.0, 1.0))
        assert a == b

    def test_negative_zero_normalised(self):
        assert canonical_rect((-0.0, -0.0, 1.0, 1.0)) == (0.0, 0.0, 1.0, 1.0)

    def test_request_keys_distinguish_classes(self):
        window = WindowRequest("t", Rect(0, 0, 1, 1)).cache_key()
        knn = KNNRequest("t", 0, 0, 1).cache_key()
        join = JoinRequest("t", "t").cache_key()
        assert len({window, knn, join}) == 3

    def test_window_key_ignores_noise(self):
        a = WindowRequest("t", Rect(0.1 + 0.2, 0, 1, 1)).cache_key()
        b = WindowRequest("t", Rect(0.3, 0, 1, 1)).cache_key()
        assert a == b


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is MISS
        cache.put("a", (1, 2))
        assert cache.get("a") == (1, 2)
        assert cache.hits == 1 and cache.misses == 1 and cache.inserts == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_ttl_expiry_counts_as_miss(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)  # past the original expiry (hits don't refresh TTL)
        assert cache.get("a") is MISS
        assert cache.expirations == 1
        assert cache.misses == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert len(cache) == 0 and cache.inserts == 0

    def test_counters_reconcile(self):
        cache = ResultCache(capacity=3)
        for i in range(10):
            key = i % 5
            if cache.get(key) is MISS:
                cache.put(key, key)
        assert cache.lookups == cache.hits + cache.misses == 10
        assert cache.inserts <= cache.misses
        assert cache.evictions <= cache.inserts
        assert len(cache) <= 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)
        with pytest.raises(ValueError):
            ResultCache(ttl_s=0.0)

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 99)  # refresh moves a to MRU; no eviction yet
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 99
